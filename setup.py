"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so offline environments without the ``wheel`` package can still do an
editable install via the legacy path::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()

"""The scaled-down paper matrix, recorded into the benchmark JSON.

Runs the `quick` experiment spec — WordCount and Normal Sort (common),
K-means and Naive Bayes (common + iteration) × {datampi, hadoop-model,
spark-model} × {tiny, small} on the inline transport — end to end
through the MatrixRunner and asserts the paper's cross-engine shape:

* every engine produces identical outputs on every comparable cell
  (the matrix compares performance, not answers);
* the analytical models put DataMPI ahead of the Hadoop model on every
  modeled cell (Figures 3/6);
* on the iterative cells, DataMPI's Iteration mode moves strictly fewer
  bytes than the hadoop-model engine's one-job-per-iteration pattern on
  every warm iteration — the Section 4.5/4.6 redundant-I/O gap, measured
  rather than modeled.

The per-cell numbers land in ``extra_info`` so the trajectory JSON
records cross-engine figures from this PR onward.
"""

from repro.experiments import quick_spec, render_table, verify_cross_engine
from repro.experiments.matrix import MatrixRunner


def _run_quick_matrix(tmp_dir: str):
    return MatrixRunner(quick_spec(), tmp_dir).run(resume=False)


def test_quick_matrix_cross_engine(benchmark, once, tmp_path):
    result = once(_run_quick_matrix, str(tmp_path))
    assert not result.failed_cells()

    # Outputs agree wherever two engines ran the same (workload, scale).
    agreement = verify_cross_engine(result)
    assert agreement and all(agreement.values())

    by_id = result.by_cell_id()
    print("\nQuick matrix: measured bytes and modeled seconds per cell")
    rows = [
        [r.spec.cell_id,
         f"{r.elapsed_sec:.3f}s",
         "-" if r.modeled_sec is None else f"{r.modeled_sec:.1f}s",
         "-" if r.bytes_moved is None else f"{r.bytes_moved:,}"]
        for r in result.results
    ]
    print(render_table(["cell", "measured", "modeled", "bytes"], rows))

    # Modeled cluster seconds: DataMPI < hadoop-model on every cell pair.
    for cell_result in result.results:
        cell = cell_result.spec
        if cell.engine != "datampi":
            continue
        partner_id = cell.cell_id.replace(
            ".datampi", ".hadoop-model").replace(".inline", "")
        partner = by_id[partner_id]
        assert cell_result.modeled_sec < partner.modeled_sec

    # Iterative cells: warm iterations move strictly fewer bytes on the
    # real DataMPI engine than on the one-job-per-iteration pattern.
    iterative_pairs = []
    for cell in result.spec.iterative_cells():
        if cell.engine != "datampi":
            continue
        datampi = by_id[cell.cell_id]
        hadoop = by_id[cell.cell_id.replace(
            ".datampi", ".hadoop-model").replace(".inline", "")]
        assert datampi.per_iteration_bytes[0] == hadoop.per_iteration_bytes[0]
        assert all(
            d < h for d, h in zip(datampi.per_iteration_bytes[1:],
                                  hadoop.per_iteration_bytes[1:])
        )
        assert datampi.bytes_moved < hadoop.bytes_moved
        iterative_pairs.append(
            (f"{cell.workload}.{cell.scale}", datampi, hadoop))

    assert iterative_pairs, "the quick spec must contain iterative cells"
    assert {pair[0].split(".")[0] for pair in iterative_pairs} == \
        {"kmeans", "naive_bayes"}

    # The expanded matrix instruments Spark's shuffles, so the bytes
    # comparison against the spark-model engine is populated wherever
    # Spark has an implementation (everywhere but Naive Bayes).
    spark_bytes = [r.bytes_moved for r in result.results
                   if r.spec.engine == "spark-model"]
    assert spark_bytes and all(b is not None and b > 0 for b in spark_bytes)

    benchmark.extra_info["experiment"] = "quick-matrix"
    benchmark.extra_info["cells"] = len(result.results)
    benchmark.extra_info["cross_engine_agreement"] = all(agreement.values())
    benchmark.extra_info["cell_results"] = [
        {
            "cell": r.spec.cell_id,
            "measured_sec": round(r.elapsed_sec, 6),
            "modeled_sec": None if r.modeled_sec is None
            else round(r.modeled_sec, 3),
            "bytes_moved": r.bytes_moved,
            "per_iteration_bytes": r.per_iteration_bytes,
        }
        for r in result.results
    ]
    benchmark.extra_info["iterative_bytes_saved"] = {
        pair_key: hadoop.bytes_moved - datampi.bytes_moved
        for pair_key, datampi, hadoop in iterative_pairs
    }

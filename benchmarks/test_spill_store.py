"""SpillStore access patterns: full-scan vs random-read vs metadata-only.

The beyond-RAM data plane holds payloads past its memory budget in
mmap-backed segment files; what that costs depends on *how* the store is
read.  Three patterns bracket the space:

* ``full-scan`` — every payload read once in key order, the shape of the
  A-side k-way merge (every spilled chunk rehydrates exactly once).
* ``random-read`` — uniformly random keys with repeats, the adversarial
  shape for an LRU layout (spilled entries stay spilled, so every touch
  of a cold key is a segment read).
* ``metadata-only`` — ``size_of`` over every key, which the index answers
  without touching memory or disk (``spill_reads`` must stay zero).

Each scenario records ``bytes_spilled``/``spill_reads``/``bytes_per_sec``
into the benchmark JSON via ``extra_info`` (schema in
docs/experiments.md); the structural CI gate requires the spill traffic
to be positive — a spill benchmark that never spilled measured nothing.
"""

import random
import time

import pytest

from repro.storage import SpillStore

#: Payloads sized so the working set is ~8x the budget: most entries are
#: on disk by the time any read pattern runs.
PAYLOADS = 64
PAYLOAD_BYTES = 16 * 1024
BUDGET_BYTES = (PAYLOADS * PAYLOAD_BYTES) // 8
RANDOM_READS = 256


def _filled_store(spill_dir: str) -> SpillStore:
    store = SpillStore(budget_bytes=BUDGET_BYTES, spill_dir=spill_dir)
    for index in range(PAYLOADS):
        store.put(index, bytes([index % 251]) * PAYLOAD_BYTES)
    assert store.bytes_spilled > 0, "working set failed to exceed budget"
    return store


def _record(benchmark, scenario: str, store: SpillStore,
            bytes_read: int, elapsed: float) -> None:
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["payloads"] = PAYLOADS
    benchmark.extra_info["budget_bytes"] = BUDGET_BYTES
    benchmark.extra_info["bytes_spilled"] = store.bytes_spilled
    benchmark.extra_info["spill_reads"] = store.spill_reads
    benchmark.extra_info["bytes_read"] = bytes_read
    benchmark.extra_info["bytes_per_sec"] = round(bytes_read / elapsed, 2) \
        if elapsed > 0 else 0.0


def test_full_scan(benchmark, once, tmp_path):
    """Sequential rehydration of the whole store, the merge's shape."""

    def scan():
        store = _filled_store(str(tmp_path))
        started = time.perf_counter()
        total = 0
        for key in sorted(store.keys()):
            view = store.get(key)
            total += view.nbytes
            assert view[0] == key % 251
        elapsed = time.perf_counter() - started
        return store, total, elapsed

    store, total, elapsed = once(scan)
    assert total == PAYLOADS * PAYLOAD_BYTES
    assert store.spill_reads > 0
    _record(benchmark, "full-scan", store, total, elapsed)
    store.cleanup()


def test_random_read(benchmark, once, tmp_path):
    """Uniform random touches with repeats — worst case for LRU spill."""

    def scatter():
        store = _filled_store(str(tmp_path))
        rng = random.Random(7)
        keys = [rng.randrange(PAYLOADS) for _ in range(RANDOM_READS)]
        started = time.perf_counter()
        total = 0
        for key in keys:
            view = store.get(key)
            total += view.nbytes
            assert view[0] == key % 251
        elapsed = time.perf_counter() - started
        return store, total, elapsed

    store, total, elapsed = once(scatter)
    assert total == RANDOM_READS * PAYLOAD_BYTES
    assert store.spill_reads > 0
    _record(benchmark, "random-read", store, total, elapsed)
    store.cleanup()


def test_metadata_only(benchmark, once, tmp_path):
    """Index-only traffic: sizes come from the in-memory index, so a
    fully spilled store answers without a single segment read."""

    def sizes():
        store = _filled_store(str(tmp_path))
        reads_before = store.spill_reads
        started = time.perf_counter()
        total = 0
        for key in store.keys():
            total += store.size_of(key)
        elapsed = time.perf_counter() - started
        assert store.spill_reads == reads_before
        return store, total, elapsed

    store, total, elapsed = once(sizes)
    assert total == PAYLOADS * PAYLOAD_BYTES
    _record(benchmark, "metadata-only", store, total, elapsed)
    # Metadata traffic spills on the way *in* but never reads back.
    benchmark.extra_info["spill_reads"] = store.spill_reads
    store.cleanup()

"""Figure 6(b): Naive Bayes training pipeline, 8-64 GB.

Paper: "DataMPI has 33% improvement than Hadoop averagely"; Spark is not
compared because BigDataBench lacks a Spark Naive Bayes implementation.
"""

import pytest

from repro import paperdata
from repro.common.errors import WorkloadError
from repro.experiments import mean_improvement, micro_benchmark, sweep_table
from repro.perfmodels import simulate_once


def test_fig6b_naive_bayes(once):
    series = once(micro_benchmark, "naive_bayes", 3)
    print("\nFigure 6(b). Naive Bayes training time")
    print(sweep_table(series))

    # Only Hadoop and DataMPI, matching the paper.
    assert set(series) == {"hadoop", "datampi"}
    with pytest.raises(WorkloadError):
        simulate_once("spark", "naive_bayes", 8 * 2**30)

    # "33% improvement than Hadoop averagely".
    mean = mean_improvement(series, "hadoop")
    assert mean == pytest.approx(0.33, abs=0.06)

    # DataMPI wins at every size; both scale roughly linearly.
    sizes = sorted(series["hadoop"])
    for size in sizes:
        assert series["datampi"][size].elapsed_sec < series["hadoop"][size].elapsed_sec
    for framework in series:
        times = [series[framework][size].elapsed_sec for size in sizes]
        assert times == sorted(times)

"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper, prints the
rows/series it reports, and asserts the paper's qualitative claims (who
wins, by roughly what factor, where the crossovers and failures are).
Absolute numbers are compared against the values the paper *states*;
chart-derived values use loose tolerances (see EXPERIMENTS.md).
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated timing rounds
    would only re-measure the same work, so one round is enough.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)
    return runner

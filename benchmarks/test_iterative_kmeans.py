"""Iterative K-means: the paper's deferred Spark-vs-DataMPI comparison.

Section 4.6 measures only the first iteration and defers the iterative
comparison to future work; this benchmark supplies it.  Expected shape:
DataMPI wins iteration 1 (as in Figure 6a), but Spark's cached RDDs win
cumulatively within a few iterations, while Hadoop (one job per
iteration) falls further behind every round.
"""

from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import iterative_kmeans


def test_iterative_kmeans_crossover(once):
    result = once(iterative_kmeans, 32 * GB, 10)
    print("\nIterative K-means, cumulative time over iterations (32GB)")
    rows = []
    for iteration in range(0, result.iterations, 2):
        rows.append([
            str(iteration + 1),
            *(f"{result.cumulative[fw][iteration]:.0f}s"
              for fw in ("hadoop", "spark", "datampi")),
        ])
    print(render_table(["iteration", "hadoop", "spark", "datampi"], rows))

    # Iteration 1 matches Figure 6(a): DataMPI < Spark < Hadoop.
    first = {fw: result.cumulative[fw][0] for fw in result.cumulative}
    assert first["datampi"] < first["spark"] < first["hadoop"]

    # Spark overtakes DataMPI cumulatively within a handful of iterations.
    crossover = result.crossover_iteration("datampi", "spark")
    assert crossover is not None and 2 <= crossover <= 6
    print(f"\nSpark overtakes DataMPI cumulatively at iteration {crossover}")

    # Hadoop never catches either of them.
    assert result.crossover_iteration("spark", "hadoop") is None
    assert result.crossover_iteration("datampi", "hadoop") is None

    # Per-iteration marginal cost ordering after warmup: Spark cheapest.
    marginal = {
        fw: result.cumulative[fw][-1] - result.cumulative[fw][-2]
        for fw in result.cumulative
    }
    assert marginal["spark"] < marginal["datampi"] < marginal["hadoop"]

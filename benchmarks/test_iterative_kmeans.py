"""Iterative K-means: the paper's deferred Spark-vs-DataMPI comparison.

Section 4.6 measures only the first iteration and defers the iterative
comparison to future work; this benchmark supplies it.  Expected shape:
DataMPI wins iteration 1 (as in Figure 6a), but Spark's cached RDDs win
cumulatively within a few iterations, while Hadoop (one job per
iteration) falls further behind every round.

The functional half benchmarks DataMPI's *Iteration mode* against the
one-job-per-iteration Common baseline on the real O/A stack: identical
centroids bit for bit, strictly fewer bytes moved per iteration after
the first (the input lives in the cross-iteration KV cache), with
per-iteration timings and cache-hit bytes recorded into the benchmark
JSON ``extra_info``.
"""

import pickle

from repro.bigdatabench.vectors import SparseVector
from repro.common.rng import substream
from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import iterative_kmeans
from repro.workloads import kmeans_iterative_job, run_kmeans


def test_iterative_kmeans_crossover(once):
    result = once(iterative_kmeans, 32 * GB, 10)
    print("\nIterative K-means, cumulative time over iterations (32GB)")
    rows = []
    for iteration in range(0, result.iterations, 2):
        rows.append([
            str(iteration + 1),
            *(f"{result.cumulative[fw][iteration]:.0f}s"
              for fw in ("hadoop", "spark", "datampi")),
        ])
    print(render_table(["iteration", "hadoop", "spark", "datampi"], rows))

    # Iteration 1 matches Figure 6(a): DataMPI < Spark < Hadoop.
    first = {fw: result.cumulative[fw][0] for fw in result.cumulative}
    assert first["datampi"] < first["spark"] < first["hadoop"]

    # Spark overtakes DataMPI cumulatively within a handful of iterations.
    crossover = result.crossover_iteration("datampi", "spark")
    assert crossover is not None and 2 <= crossover <= 6
    print(f"\nSpark overtakes DataMPI cumulatively at iteration {crossover}")

    # Hadoop never catches either of them.
    assert result.crossover_iteration("spark", "hadoop") is None
    assert result.crossover_iteration("datampi", "hadoop") is None

    # Per-iteration marginal cost ordering after warmup: Spark cheapest.
    marginal = {
        fw: result.cumulative[fw][-1] - result.cumulative[fw][-2]
        for fw in result.cumulative
    }
    assert marginal["spark"] < marginal["datampi"] < marginal["hadoop"]


# -- functional Iteration mode vs the run-once loop ----------------------------

VECTORS = [
    SparseVector({dim: rng.random() for dim in rng.sample(range(16), 5)})
    for rng in [substream(23, "bench-iterative-kmeans")]
    for _ in range(90)
]
K = 5
MAX_ITERATIONS = 4
PARALLELISM = 3


def _run_both_modes():
    iter_result, iter_stats = kmeans_iterative_job(
        VECTORS, K, max_iterations=MAX_ITERATIONS, parallelism=PARALLELISM,
        mode="iteration",
    )
    common_result, common_stats = kmeans_iterative_job(
        VECTORS, K, max_iterations=MAX_ITERATIONS, parallelism=PARALLELISM,
        mode="common",
    )
    return iter_result, iter_stats, common_result, common_stats


def test_iteration_mode_cache_cuts_bytes_moved(benchmark, once):
    iter_result, iter_stats, common_result, common_stats = once(_run_both_modes)

    # Byte-identical centroids vs the run-once loop (legacy driver) AND the
    # common-mode replay of the superstep protocol.
    legacy = run_kmeans("datampi", VECTORS, K, max_iterations=MAX_ITERATIONS,
                        parallelism=PARALLELISM)
    freeze = lambda result: pickle.dumps(  # noqa: E731
        [sorted(c.weights.items()) for c in result.centroids]
    )
    assert freeze(iter_result) == freeze(legacy)
    assert freeze(iter_result) == freeze(common_result)
    assert iter_result.iterations == legacy.iterations

    iter_bytes = [r["mode.bytes_moved"] for r in iter_stats.per_iteration]
    common_bytes = [r["mode.bytes_moved"] for r in common_stats.per_iteration]
    print("\nIteration mode vs one-job-per-iteration, bytes moved per iteration")
    rows = [
        [str(index + 1), f"{common_bytes[index]:,}", f"{iter_bytes[index]:,}",
         f"{record['cache.hit_bytes']:,}"]
        for index, record in enumerate(iter_stats.per_iteration)
    ]
    print(render_table(
        ["iteration", "common", "iteration-mode", "cache-hit bytes"], rows
    ))

    # Iteration 1 pays the same scatter; every later iteration moves
    # strictly fewer bytes because the input is served from the KV cache.
    assert iter_bytes[0] == common_bytes[0]
    assert all(i < c for i, c in zip(iter_bytes[1:], common_bytes[1:]))
    assert all(r["cache.hit_bytes"] > 0 for r in iter_stats.per_iteration[1:])

    benchmark.extra_info["workload"] = "kmeans-iteration-mode"
    benchmark.extra_info["iterations"] = iter_result.iterations
    benchmark.extra_info["per_iteration_bytes_iteration_mode"] = iter_bytes
    benchmark.extra_info["per_iteration_bytes_common_mode"] = common_bytes
    benchmark.extra_info["per_iteration_seconds_iteration_mode"] = [
        round(seconds, 6) for seconds in iter_stats.timings
    ]
    benchmark.extra_info["per_iteration_seconds_common_mode"] = [
        round(seconds, 6) for seconds in common_stats.timings
    ]
    benchmark.extra_info["cache_hit_bytes_total"] = \
        iter_stats.counters["cache.hit_bytes"]
    benchmark.extra_info["bytes_saved_total"] = \
        common_stats.counters["mode.bytes_moved"] - \
        iter_stats.counters["mode.bytes_moved"]

"""Table 2: the testbed hardware configuration."""

from repro.cluster import ClusterSpec
from repro.experiments import render_table, table2


def test_table2_hardware(once):
    rows = once(table2)
    print("\nTable 2. Details of Hardware Configuration")
    print(render_table(["Item", "Value"], rows))
    values = dict(rows)
    assert values["CPU type"] == "Intel Xeon E5620"
    assert values["# sockets"] == "2"
    assert values["Memory"] == "16 GB"
    assert values["Disk"] == "150GB free SATA disk"
    spec = ClusterSpec.paper_testbed()
    assert spec.nodes == 8
    assert spec.node.hardware_threads == 16

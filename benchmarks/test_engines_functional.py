"""Functional-engine micro-benchmarks: the three real engines on real data.

Not a paper figure — this benchmarks the *functional* implementations
(in-process Hadoop/Spark/DataMPI engines on generated BigDataBench text),
demonstrating that all three engines process identical workloads and
letting pytest-benchmark compare their in-process constant factors.
"""

import pytest

from repro.bigdatabench import TextGenerator
from repro.workloads import (
    run_text_sort,
    run_wordcount,
    wordcount_reference,
)


@pytest.fixture(scope="module")
def lines():
    return TextGenerator(seed=99).lines(2000)


@pytest.mark.parametrize("engine", ["hadoop", "spark", "datampi"])
def test_functional_wordcount(benchmark, engine, lines):
    result = benchmark.pedantic(
        run_wordcount, args=(engine, lines), rounds=3, iterations=1
    )
    assert result == wordcount_reference(lines)


@pytest.mark.parametrize("engine", ["hadoop", "spark", "datampi"])
def test_functional_text_sort(benchmark, engine, lines):
    result = benchmark.pedantic(
        run_text_sort, args=(engine, lines), rounds=3, iterations=1
    )
    assert result == sorted(lines)

"""Figure 5: small jobs (128 MB input, one task/worker per node).

Paper: "DataMPI has similar performance with Spark, and is averagely 54%
more efficient than Hadoop" — framework startup overhead dominates tiny
jobs, and Hadoop's JobTracker/JVM machinery pays the most.
"""

import pytest

from repro import paperdata
from repro.experiments import fig5, render_table


def test_fig5_small_jobs(once):
    data = once(fig5, 3)
    print("\nFigure 5. Small job execution time (128MB input)")
    rows = [
        [workload] + [f"{data[workload][fw]:.1f}s" for fw in ("hadoop", "spark", "datampi")]
        for workload in ("text_sort", "wordcount", "grep")
    ]
    print(render_table(["workload", "hadoop", "spark", "datampi"], rows))

    for workload, by_framework in data.items():
        # Hadoop pays by far the most overhead.
        assert by_framework["hadoop"] > 1.6 * by_framework["datampi"], workload
        # DataMPI ~ Spark ("similar performance").
        ratio = by_framework["datampi"] / by_framework["spark"]
        assert 0.5 < ratio < 1.3, f"{workload}: D/S ratio {ratio:.2f}"

    improvements = [
        1.0 - data[w]["datampi"] / data[w]["hadoop"] for w in data
    ]
    mean_improvement = sum(improvements) / len(improvements)
    assert mean_improvement == pytest.approx(
        paperdata.SMALL_JOB_IMPROVEMENT_VS_HADOOP, abs=0.10
    )

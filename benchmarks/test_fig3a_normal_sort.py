"""Figure 3(a): Normal Sort (compressed sequence input), 4-32 GB.

Paper claims: DataMPI improves on Hadoop by 29-33 %; Spark fails with
OutOfMemoryError at every size.
"""

import pytest

from repro import paperdata
from repro.common.units import GB
from repro.experiments import improvement_range, micro_benchmark, sweep_table


def test_fig3a_normal_sort(once):
    series = once(micro_benchmark, "normal_sort", 3)
    print("\nFigure 3(a). Normal Sort job execution time")
    print(sweep_table(series))

    # Spark OOMs at every size (Section 4.3).
    assert paperdata.SPARK_NORMAL_SORT_ALWAYS_FAILS
    for size, run in series["spark"].items():
        assert run.failed, f"Spark should OOM at {size}"

    # DataMPI beats Hadoop at every size, within the paper's band (+/-).
    low, high = improvement_range(series, "hadoop")
    paper_low, paper_high = paperdata.IMPROVEMENTS[("normal_sort", "hadoop")]
    assert low >= paper_low - 0.06
    assert high <= paper_high + 0.13

    # Scaling shape: 8x the data costs Hadoop close to 4x-8x the time
    # (sub-linear only through fixed-overhead amortization at 4 GB; our
    # simulator underestimates the paper's superlinear growth at 32 GB —
    # see EXPERIMENTS.md).
    hadoop = series["hadoop"]
    assert hadoop[32 * GB].elapsed_sec > 3.5 * hadoop[8 * GB].elapsed_sec
    assert hadoop[32 * GB].elapsed_sec > 4.5 * hadoop[4 * GB].elapsed_sec

    # Note: our simulated absolutes run below the paper's chart values for
    # this workload (see EXPERIMENTS.md); the ratios are the claim tested.
    for size in series["hadoop"]:
        assert series["datampi"][size].elapsed_sec < series["hadoop"][size].elapsed_sec

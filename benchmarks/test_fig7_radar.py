"""Figure 7: the seven-pronged evaluation summary.

Paper (Section 4.7): vs Hadoop, DataMPI averages 40 % (micro), 54 %
(small jobs) and 36 % (applications); vs Spark, 14 % (micro) and 33 %
(applications).  Average CPU utilizations are 35/34/59 % (D/S/H), and
DataMPI's network throughput is 55 %/59 % above Spark/Hadoop.
"""

import pytest

from repro import paperdata
from repro.experiments import AXES, compute_radar, render_table


def test_fig7_seven_pronged_summary(once):
    radar = once(compute_radar, 1)
    print("\nFigure 7. Normalized evaluation results (1.0 = best per axis)")
    rows = [
        [axis] + [f"{radar.scores[axis][fw]:.2f}" for fw in ("hadoop", "spark", "datampi")]
        for axis in AXES
    ]
    print(render_table(["axis", "hadoop", "spark", "datampi"], rows))
    imp = radar.improvements
    print(f"\nmicro vs hadoop: {imp['micro_vs_hadoop']:.0%}  (paper 40%)")
    print(f"micro vs spark:  {imp['micro_vs_spark']:.0%}  (paper 14%)")
    print(f"small vs hadoop: {imp['small_vs_hadoop']:.0%}  (paper 54%)")
    print(f"app vs hadoop:   {imp['app_vs_hadoop']:.0%}  (paper 36%)")
    print(f"net vs hadoop:   {imp['net_vs_hadoop']:+.0%}  (paper +59%)")
    print(f"net vs spark:    {imp['net_vs_spark']:+.0%}  (paper +55%)")
    print(
        "cpu avg: D {cpu_pct_datampi:.0f}% S {cpu_pct_spark:.0f}% "
        "H {cpu_pct_hadoop:.0f}%  (paper 35/34/59)".format(**imp)
    )

    # Headline improvements.
    assert imp["micro_vs_hadoop"] == pytest.approx(
        paperdata.MICRO_AVG_IMPROVEMENT["hadoop"], abs=0.08
    )
    assert imp["micro_vs_spark"] == pytest.approx(
        paperdata.MICRO_AVG_IMPROVEMENT["spark"], abs=0.12
    )
    assert imp["small_vs_hadoop"] == pytest.approx(
        paperdata.SMALL_JOB_IMPROVEMENT_VS_HADOOP, abs=0.10
    )
    assert imp["app_vs_hadoop"] == pytest.approx(
        paperdata.APP_AVG_IMPROVEMENT["hadoop"], abs=0.08
    )
    assert imp["net_vs_hadoop"] == pytest.approx(
        paperdata.FIG7_NET_IMPROVEMENT["hadoop"], abs=0.35
    )

    # CPU efficiency: D ~ S, H much higher for the same work.
    assert imp["cpu_pct_hadoop"] > 1.4 * imp["cpu_pct_datampi"]

    # DataMPI leads or ties on every axis of the radar.
    for axis in ("micro_benchmark", "small_job", "application",
                 "network", "memory_efficiency"):
        assert radar.scores[axis]["datampi"] >= 0.95, axis
    for axis in ("cpu_efficiency", "disk_io"):
        assert radar.scores[axis]["datampi"] >= 0.70, axis

    # Hadoop trails on all three performance axes.
    for axis in ("micro_benchmark", "small_job", "application"):
        assert radar.scores[axis]["hadoop"] < radar.scores[axis]["datampi"]

"""Parallel vs serial matrix execution, recorded into the benchmark JSON.

The cells of an :class:`~repro.experiments.spec.ExperimentSpec` are
independent, so ``MatrixRunner(workers=N)`` fans them out to a process
pool.  This benchmark runs the quick spec both ways and records the
wall-clock pair (and their ratio) in ``extra_info`` — the trajectory
record of the scheduler-level parallelism the ROADMAP called for.

Assertions:

* both runs finish every cell;
* the deterministic per-cell record (bytes moved, output digests,
  iteration counts) is identical between the serial and parallel run —
  the property that makes the byte-identical-reports guarantee possible;
* on machines with >= 4 cores (the CI runners), the 4-worker run is
  faster than the serial run.  On smaller machines the timing pair is
  recorded but not asserted — a 1-core box legitimately gains nothing.
"""

import os
import time

from repro.experiments.matrix import MatrixRunner
from repro.experiments.spec import quick_spec

WORKERS = 4


def _deterministic_record(result):
    return {
        r.spec.cell_id: (r.status, r.bytes_moved, r.output_checksum,
                         r.iterations, tuple(r.per_iteration_bytes or ()))
        for r in result.results
    }


def test_parallel_matrix_speedup(benchmark, once, tmp_path):
    spec = quick_spec()

    start = time.perf_counter()
    serial = MatrixRunner(spec, str(tmp_path / "serial")).run(resume=False)
    serial_sec = time.perf_counter() - start

    start = time.perf_counter()
    parallel = once(
        MatrixRunner(spec, str(tmp_path / "parallel"),
                     workers=WORKERS).run,
        resume=False,
    )
    parallel_sec = time.perf_counter() - start

    assert not serial.failed_cells() and not parallel.failed_cells()
    assert parallel.executed == len(spec.cells)
    assert _deterministic_record(serial) == _deterministic_record(parallel)

    cpu_count = os.cpu_count() or 1
    speedup = serial_sec / parallel_sec
    print(f"\nquick matrix ({len(spec.cells)} cells): "
          f"serial {serial_sec:.2f}s, {WORKERS} workers {parallel_sec:.2f}s "
          f"(speedup {speedup:.2f}x on {cpu_count} cores)")

    benchmark.extra_info["experiment"] = "quick-matrix-parallel"
    benchmark.extra_info["cells"] = len(spec.cells)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpu_count"] = cpu_count
    benchmark.extra_info["serial_sec"] = round(serial_sec, 6)
    benchmark.extra_info["parallel_sec"] = round(parallel_sec, 6)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["deterministic_match"] = True

    if cpu_count >= WORKERS:
        # Measurably faster, with a margin so a noisy-neighbor stall on a
        # shared runner doesn't flake the suite: >= 4 cores should beat
        # serial by far more than 10% on 32 independent cells.
        assert parallel_sec < serial_sec * 0.9, (
            f"{WORKERS}-worker run ({parallel_sec:.2f}s) not measurably "
            f"faster than serial ({serial_sec:.2f}s) on {cpu_count} cores"
        )

"""Figure 2(a): HDFS block size tuning with DFSIO.

Paper: throughput peaks at a 256 MB block size across 5-20 GB inputs,
which fixes the block size for the whole evaluation.
"""

from repro import paperdata
from repro.common.units import GB, MB
from repro.experiments import fig2a, render_table


def test_fig2a_dfsio_block_size(once):
    data = once(fig2a)
    blocks = [64 * MB, 128 * MB, 256 * MB, 512 * MB]
    print("\nFigure 2(a). DFSIO throughput (MB/s) by HDFS block size")
    rows = []
    for total in sorted(data):
        rows.append([f"{total // GB}GB file"]
                    + [f"{data[total][block]:.1f}" for block in blocks])
    print(render_table(["input", "64MB", "128MB", "256MB", "512MB"], rows))

    # Per input size: 256 MB at or near the top, 512 MB regressed —
    # allowing the placement noise visible in the paper's own lines.
    for total in data:
        series = data[total]
        assert series[256 * MB] >= 0.92 * max(series.values())
        assert series[512 * MB] < series[256 * MB] * 1.02
        assert series[64 * MB] < series[256 * MB] * 1.05

    # Averaged over input sizes the ordering is strict: 64 < 128, 256 top,
    # 512 bottom half — the basis for the paper fixing 256 MB.
    means = {
        block: sum(data[total][block] for total in data) / len(data)
        for block in blocks
    }
    assert means[64 * MB] < means[128 * MB]
    assert means[512 * MB] < means[256 * MB]
    assert means[512 * MB] < means[128 * MB]

    means = {
        block: sum(data[total][block] for total in data) / len(data)
        for block in blocks
    }
    assert max(means, key=means.get) == paperdata.FIG2A_BEST_BLOCK
    low, high = paperdata.FIG2A_PEAK_THROUGHPUT_RANGE
    assert low <= means[256 * MB] <= high

"""Figure 4(e-h): resource utilization of the 32 GB WordCount case.

Paper (Section 4.4): CPU averages 47/30/80 % (D/S/H); disk reads are
~44 MB/s for DataMPI/Spark vs ~20 MB/s for Hadoop; DataMPI and Hadoop
move almost nothing over the network while Spark shows ~25 MB/s; memory
averages 5/5/9 GB (D/S/H).
"""

import pytest

from repro import paperdata
from repro.experiments import fig4_wordcount, profile_table


def test_fig4_wordcount_resource_profile(once):
    profiles = once(fig4_wordcount)
    print("\nFigure 4(e-h). Resource utilization of 32GB WordCount")
    print(profile_table(profiles))

    wpro = paperdata.WORDCOUNT_PROFILE

    # Hadoop is CPU-bound (paper: 80 %).
    assert profiles["hadoop"].cpu_pct > 70.0
    for framework in ("hadoop", "spark", "datampi"):
        assert profiles[framework].cpu_pct == pytest.approx(
            wpro["cpu_pct"][framework], rel=0.30
        ), framework

    # Disk read efficiency: D/S read more than twice as fast as Hadoop.
    assert profiles["hadoop"].disk_read_mbps < 0.6 * profiles["datampi"].disk_read_mbps
    assert profiles["hadoop"].disk_read_mbps < 0.6 * profiles["spark"].disk_read_mbps

    # Network: D and H negligible; Spark visible (locality misses).
    assert profiles["datampi"].net_mbps < 6.0
    assert profiles["hadoop"].net_mbps < 6.0
    assert profiles["spark"].net_mbps > 10.0

    # Memory: Hadoop highest (9 GB), D/S around 5 GB.
    assert profiles["hadoop"].mem_gb > profiles["datampi"].mem_gb
    assert profiles["hadoop"].mem_gb > profiles["spark"].mem_gb
    assert profiles["hadoop"].mem_gb == pytest.approx(
        wpro["mem_gb"]["hadoop"], rel=0.30
    )
    for framework in ("spark", "datampi"):
        assert profiles[framework].mem_gb == pytest.approx(5.0, rel=0.30)

"""Figure 6(a): K-means (first training iteration), 8-64 GB.

Paper: DataMPI shows at most 39 % improvement over Hadoop and at most
33 % over Spark (first iteration, including data loading).
"""

from repro import paperdata
from repro.experiments import improvement_range, micro_benchmark, sweep_table


def test_fig6a_kmeans(once):
    series = once(micro_benchmark, "kmeans", 3)
    print("\nFigure 6(a). K-means first-iteration time")
    print(sweep_table(series))

    # All frameworks complete at every size (no OOM for cached RDDs).
    for framework in series:
        for run in series[framework].values():
            assert run.succeeded, framework

    # Ordering: DataMPI < Spark < Hadoop at every size.
    for size in series["hadoop"]:
        assert (series["datampi"][size].elapsed_sec
                < series["spark"][size].elapsed_sec
                < series["hadoop"][size].elapsed_sec)

    # "At most 39% improvement than Hadoop".
    low_h, high_h = improvement_range(series, "hadoop")
    assert high_h <= paperdata.IMPROVEMENTS[("kmeans", "hadoop")][1] + 0.04
    assert low_h >= 0.25  # still a solid win at every size

    # "At most 33% improvement than Spark".
    low_s, high_s = improvement_range(series, "spark")
    assert high_s <= paperdata.IMPROVEMENTS[("kmeans", "spark")][1] + 0.04
    assert low_s >= 0.10

"""Elastic recovery cost: rank killed mid-superstep on the tcp transport.

A deterministic ``kill`` rule fires inside O rank 1 during superstep 2 of
an iterative job (no sleeps or signals — see docs/testing.md).  The world
supervisor respawns the dead rank, survivors re-form the world, and the
respawned rank resumes from the last iteration checkpoint.  The metric is
``recovery_seconds``: wall-clock the injected run pays *on top of* a
clean run of the identical job — death detection, respawn, re-rendezvous,
and the replayed superstep.  The run must also stay byte-identical to the
clean run, otherwise the time measured recovered the wrong thing.
"""

import pickle
import time

from repro.datampi import DataMPIConf, IterativeJob
from repro.mpi.transport import get_transport

KILL_PLAN = "kill@o-phase:rank=1:superstep=2"
SPLITS = [list(range(5)), list(range(5, 10))]


def counting_o(ctx, split, _state):
    for item in split:
        ctx.send(item % 5, 1)


def counting_a(ctx, _state):
    return [(key, sum(values)) for key, values in ctx.grouped()]


def sum_update(state, merged, _iteration):
    new_state = state + sum(count for _key, count in merged)
    return new_state, new_state >= 30


def _run(checkpoint_dir: str, fault_plan: str | None, respawns: int):
    transport = get_transport("tcp", respawns=respawns,
                              fault_plan=fault_plan)
    conf = DataMPIConf(num_o=2, num_a=2, mode="iteration",
                       transport=transport, checkpoint_dir=checkpoint_dir)
    job = IterativeJob(counting_o, counting_a, sum_update, conf,
                       max_iterations=3)
    started = time.perf_counter()
    result = job.run(SPLITS, 0)
    return time.perf_counter() - started, result


def test_tcp_rank_kill_recovery(benchmark, once, tmp_path):
    def measure():
        clean_sec, clean = _run(str(tmp_path / "clean"), None, respawns=0)
        injected_sec, injected = _run(str(tmp_path / "injected"),
                                      KILL_PLAN, respawns=1)
        return clean_sec, clean, injected_sec, injected

    clean_sec, clean, injected_sec, injected = once(measure)

    # Equivalence first: a fast recovery to the wrong answer is no recovery.
    assert injected.state == clean.state == 30
    assert injected.iterations == clean.iterations
    assert injected.converged and clean.converged
    assert pickle.dumps(injected.outputs, protocol=4) == \
        pickle.dumps(clean.outputs, protocol=4)

    recovery_sec = injected_sec - clean_sec
    benchmark.extra_info["scenario"] = "rank-kill-mid-superstep"
    benchmark.extra_info["transport"] = "tcp"
    benchmark.extra_info["fault_plan"] = KILL_PLAN
    benchmark.extra_info["clean_seconds"] = round(clean_sec, 6)
    benchmark.extra_info["injected_seconds"] = round(injected_sec, 6)
    benchmark.extra_info["recovery_seconds"] = round(recovery_sec, 6)
    print(f"\ntcp clean {clean_sec:.3f}s vs injected {injected_sec:.3f}s "
          f"— recovery cost {recovery_sec:.3f}s")
    # The injected run does strictly more work (detect, respawn,
    # re-rendezvous, replay superstep 2): its overhead must be visible.
    assert recovery_sec > 0, (
        f"injected run ({injected_sec:.3f}s) was not slower than the "
        f"clean run ({clean_sec:.3f}s); the kill rule likely never fired"
    )

"""Small-job serving latency: cold per-job worlds vs a warm rank pool.

The paper's Figure 5 story is that DataMPI's advantage concentrates in
small jobs, where per-job overhead (world formation, process launch)
dominates actual data movement.  The serving pool attacks exactly that
overhead: one O/A world is formed once and recycled between jobs, so a
stream of small submissions pays world construction once instead of per
job.

Each scenario measures a stream of identical small wordcount jobs and
records a latency profile into the benchmark JSON via ``extra_info``:
``jobs_per_sec``, ``p50_sec`` and ``p99_sec`` (the schema documented in
docs/experiments.md).  The warm-vs-cold comparison asserts the
acceptance bar — warm p50 at least 2x below cold p50 on the shm
transport, where per-job fork + world formation is the dominant cold
cost.  The thread transport is measured but not asserted: its cold
worlds are cheap threads, so the pool's edge there is real but small.
"""

import threading
import time

import pytest

from repro.bigdatabench import TextGenerator
from repro.serving import WorldPool
from repro.workloads import (
    split_round_robin,
    wordcount_datampi_job,
    wordcount_datampi_result,
    wordcount_reference,
)

LINES = TextGenerator(seed=11).lines(160)
PARALLELISM = 2
JOBS = 12
SUBMITTERS = 4
JOBS_PER_SUBMITTER = 3

EXPECTED = None  # filled lazily; wordcount_reference is pure


def _expected() -> dict:
    global EXPECTED
    if EXPECTED is None:
        EXPECTED = wordcount_reference(LINES)
    return EXPECTED


def _percentile(latencies: list[float], q: int) -> float:
    ordered = sorted(latencies)
    index = max(0, -(-q * len(ordered) // 100) - 1)
    return ordered[min(index, len(ordered) - 1)]


def _splits() -> list[list[str]]:
    return split_round_robin(LINES, PARALLELISM)


def _cold_latencies(transport: str, jobs: int = JOBS) -> list[float]:
    """Each job builds, runs and tears down its own world — the pre-pool
    serving path."""
    latencies = []
    for _ in range(jobs):
        started = time.perf_counter()
        result = wordcount_datampi_result(LINES, PARALLELISM,
                                          transport=transport)
        latencies.append(time.perf_counter() - started)
        assert dict(result.merged_outputs()) == _expected()
    return latencies


def _warm_latencies(transport: str, jobs: int = JOBS) -> list[float]:
    """The same job stream through one warm, recycled world."""
    latencies = []
    with WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                   transport=transport) as pool:
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        pool.start()
        pool.run_job("wordcount", _splits())  # world formation, not serving
        for _ in range(jobs):
            started = time.perf_counter()
            result = pool.run_job("wordcount", _splits())
            latencies.append(time.perf_counter() - started)
            assert dict(result.merged_outputs()) == _expected()
    return latencies


def _record(benchmark, scenario: str, transport: str,
            latencies: list[float]) -> None:
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["jobs"] = len(latencies)
    benchmark.extra_info["jobs_per_sec"] = round(len(latencies) / sum(latencies), 2)
    benchmark.extra_info["p50_sec"] = round(_percentile(latencies, 50), 6)
    benchmark.extra_info["p99_sec"] = round(_percentile(latencies, 99), 6)


@pytest.mark.parametrize("transport", ("thread", "shm"))
def test_cold_world_per_job(benchmark, once, transport):
    latencies = once(_cold_latencies, transport)
    _record(benchmark, "cold", transport, latencies)


@pytest.mark.parametrize("transport", ("thread", "shm"))
def test_warm_pool_per_job(benchmark, once, transport):
    latencies = once(_warm_latencies, transport)
    _record(benchmark, "warm", transport, latencies)


def test_warm_pool_vs_cold_shm(benchmark, once):
    """The acceptance bar: on shm, serving from a warm pool cuts p50
    latency by at least 2x against cold per-job world construction."""

    def compare():
        return _cold_latencies("shm"), _warm_latencies("shm")

    cold, warm = once(compare)
    cold_p50 = _percentile(cold, 50)
    warm_p50 = _percentile(warm, 50)
    _record(benchmark, "warm-vs-cold", "shm", warm)
    benchmark.extra_info["cold_p50_sec"] = round(cold_p50, 6)
    benchmark.extra_info["p50_speedup"] = round(cold_p50 / warm_p50, 2)
    print(f"\nshm cold p50 {cold_p50 * 1000:.1f}ms vs warm p50 "
          f"{warm_p50 * 1000:.1f}ms — {cold_p50 / warm_p50:.1f}x")
    assert cold_p50 >= 2.0 * warm_p50, (
        f"warm pool p50 {warm_p50:.4f}s is not 2x below cold p50 "
        f"{cold_p50:.4f}s on shm"
    )


def test_warm_pool_concurrent_submitters(benchmark, once):
    """Several client threads stream jobs into one pool; the latency
    profile is recorded across all submissions."""

    def serve() -> list[float]:
        latencies: list[float] = []
        lock = threading.Lock()
        with WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                       transport="shm") as pool:
            pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
            pool.start()
            pool.run_job("wordcount", _splits())

            def submitter() -> None:
                for _ in range(JOBS_PER_SUBMITTER):
                    started = time.perf_counter()
                    result = pool.run_job("wordcount", _splits())
                    elapsed = time.perf_counter() - started
                    assert dict(result.merged_outputs()) == _expected()
                    with lock:
                        latencies.append(elapsed)

            threads = [threading.Thread(target=submitter)
                       for _ in range(SUBMITTERS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
        assert len(latencies) == SUBMITTERS * JOBS_PER_SUBMITTER
        return latencies

    latencies = once(serve)
    # Wall-clock throughput: the pool serialises jobs on one world, so
    # jobs/sec over the benchmark's own elapsed time is the honest figure.
    elapsed = benchmark.stats.stats.mean
    _record(benchmark, "concurrent", "shm", latencies)
    benchmark.extra_info["submitters"] = SUBMITTERS
    benchmark.extra_info["jobs_per_sec"] = round(len(latencies) / elapsed, 2)

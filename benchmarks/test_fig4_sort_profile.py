"""Figure 4(a-d): resource utilization of the 8 GB Text Sort case.

Paper (Section 4.4): CPU averages 24/38/37 % (D/S/H) with wait-I/O
6/12/15 %; disk reads during the O/Map/Stage-0 phase are ~50/46/49 MB/s;
DataMPI's network throughput is ~55-59 % above the other two; memory
averages 5/9/5 GB (D/S/H).
"""

import pytest

from repro import paperdata
from repro.experiments import fig4_sort, profile_table


def test_fig4_sort_resource_profile(once):
    profiles = once(fig4_sort)
    print("\nFigure 4(a-d). Resource utilization of 8GB Text Sort")
    print(profile_table(profiles))

    spro = paperdata.SORT_PROFILE

    # CPU utilization averages (paper: D 24, S 38, H 37).
    for framework in ("hadoop", "spark", "datampi"):
        assert profiles[framework].cpu_pct == pytest.approx(
            spro["cpu_pct"][framework], rel=0.40
        ), framework
    # DataMPI uses the least CPU.
    assert profiles["datampi"].cpu_pct < profiles["hadoop"].cpu_pct
    assert profiles["datampi"].cpu_pct < profiles["spark"].cpu_pct

    # Wait-I/O ordering: D < S <= H (paper: 6 < 12 < 15).
    assert (profiles["datampi"].iowait_pct
            < profiles["spark"].iowait_pct
            <= profiles["hadoop"].iowait_pct * 1.15)

    # Disk reads during the load phase are similar across frameworks.
    reads = [profiles[fw].disk_read_phase_mbps for fw in profiles]
    assert max(reads) / min(reads) < 2.0

    # Disk writes are similar across frameworks (paper: 69/66/67).
    writes = [profiles[fw].disk_write_mbps for fw in profiles]
    assert max(writes) / min(writes) < 1.6

    # Network: DataMPI ~59 % over Hadoop, ~55 % over Spark (ratios).
    net = {fw: profiles[fw].net_mbps for fw in profiles}
    assert net["datampi"] / net["hadoop"] == pytest.approx(1.59, abs=0.40)
    assert net["datampi"] / net["spark"] == pytest.approx(1.55, abs=0.40)

    # Memory: Spark highest (9 GB), D/H around 5 GB.
    assert profiles["spark"].mem_gb > profiles["hadoop"].mem_gb
    assert profiles["spark"].mem_gb > profiles["datampi"].mem_gb
    for framework in ("hadoop", "datampi"):
        assert profiles[framework].mem_gb == pytest.approx(5.0, rel=0.35)

    # Time series exist at 1-second granularity for plotting.
    for framework in profiles:
        assert len(profiles[framework].series["net_in_mbps"]) >= 50

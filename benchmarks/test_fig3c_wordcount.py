"""Figure 3(c): WordCount, 8-64 GB.

Paper claims: DataMPI and Spark have similar performance, both 47-55 %
faster than Hadoop; the 32 GB case is 275 s (Hadoop) vs 130 s (D/S).
"""

import pytest

from repro import paperdata
from repro.common.units import GB
from repro.experiments import improvement_range, micro_benchmark, sweep_table


def test_fig3c_wordcount(once):
    series = once(micro_benchmark, "wordcount", 3)
    print("\nFigure 3(c). WordCount job execution time")
    print(sweep_table(series))

    # Stated 32 GB values.
    for framework, paper_sec in paperdata.WORDCOUNT_32GB_SEC.items():
        run = series[framework][32 * GB]
        assert run.elapsed_sec == pytest.approx(paper_sec, rel=0.15), framework

    # DataMPI ~ Spark at every size.
    for size in series["datampi"]:
        ratio = series["datampi"][size].elapsed_sec / series["spark"][size].elapsed_sec
        assert 0.8 < ratio < 1.25, f"D/S ratio {ratio:.2f} at {size}"

    # Improvement band vs Hadoop.
    low, high = improvement_range(series, "hadoop")
    paper_low, paper_high = paperdata.IMPROVEMENTS[("wordcount", "hadoop")]
    assert low >= paper_low - 0.04
    assert high <= paper_high + 0.04

    # Linear scaling (no superlinear blowup for an aggregation workload).
    hadoop = series["hadoop"]
    growth = hadoop[64 * GB].elapsed_sec / hadoop[8 * GB].elapsed_sec
    assert 5.5 < growth < 9.5

"""Figure 2(b): tasks/workers per node tuning with Text Sort.

Paper: all three systems peak at 4 concurrent tasks/workers per node
(1 GB per Hadoop/DataMPI task, 128 MB per Spark worker).
"""

from repro import paperdata
from repro.experiments import fig2b, render_table


def test_fig2b_slots_tuning(once):
    data = once(fig2b, executions=3)
    print("\nFigure 2(b). Text Sort throughput (MB/s) vs tasks/workers per node")
    rows = [
        [framework] + [f"{data[framework][slots]:.1f}" for slots in (2, 4, 6)]
        for framework in ("hadoop", "spark", "datampi")
    ]
    print(render_table(["framework", "2", "4", "6"], rows))

    for framework, by_slots in data.items():
        best = max(by_slots, key=by_slots.get)
        assert best == paperdata.FIG2B_BEST_SLOTS, (
            f"{framework} peaked at {best} tasks/node, paper says 4"
        )
    # DataMPI clears the highest throughput at the chosen configuration.
    assert data["datampi"][4] > data["hadoop"][4]
    assert data["datampi"][4] > data["spark"][4]

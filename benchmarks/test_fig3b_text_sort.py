"""Figure 3(b): Text Sort, 8-64 GB.

Paper claims: DataMPI 34-42 % faster than Hadoop; the 8 GB case runs in
69 s (DataMPI) vs 117 s (Hadoop) vs 114 s (Spark); Spark OOMs above 8 GB.
"""

import pytest

from repro import paperdata
from repro.common.units import GB
from repro.experiments import improvement_range, micro_benchmark, sweep_table


def test_fig3b_text_sort(once):
    series = once(micro_benchmark, "text_sort", 3)
    print("\nFigure 3(b). Text Sort job execution time")
    print(sweep_table(series))

    # Stated absolute times for the 8 GB case (within 15 %).
    for framework, paper_sec in paperdata.TEXT_SORT_8GB_SEC.items():
        run = series[framework][8 * GB]
        assert run.succeeded
        assert run.elapsed_sec == pytest.approx(paper_sec, rel=0.15), framework

    # Spark OOM boundary: 8 GB runs, 16+ fails.
    assert series["spark"][8 * GB].succeeded
    for size in (16 * GB, 32 * GB, 64 * GB):
        assert series["spark"][size].failed

    # Improvement band vs Hadoop.
    low, high = improvement_range(series, "hadoop")
    paper_low, paper_high = paperdata.IMPROVEMENTS[("text_sort", "hadoop")]
    assert low >= paper_low - 0.04
    assert high <= paper_high + 0.04

    # vs Spark at 8 GB: "39% faster than 114 seconds in Spark".
    improvement = paperdata.improvement(
        series["spark"][8 * GB].elapsed_sec, series["datampi"][8 * GB].elapsed_sec
    )
    assert improvement == pytest.approx(0.39, abs=0.10)

"""Ablation: contribution of each DataMPI mechanism (DESIGN.md extension).

Not a paper figure — this quantifies the design argument of Sections
2.3/4.4 by re-running the DataMPI timeline model with one mechanism
disabled at a time.  Measured shape:

* pipelining dominates the shuffle-heavy sorts;
* low startup dominates the short scan (grep);
* in-memory buffering barely shows up in *time* — pipelining hides the
  extra spill I/O under compute — but quadruples the *disk traffic*,
  which is exactly the disk-lifetime/contention argument of Section 2.3
  (the mechanisms interact rather than add).
"""

from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import DataMPIModel, MECHANISMS, ablated_datampi
from repro.perfmodels.ablation import AblatedDataMPIModel


def test_ablation_mechanisms(once):
    def run_all():
        return {
            ("text_sort", 8): ablated_datampi("text_sort", 8 * GB),
            ("normal_sort", 32): ablated_datampi("normal_sort", 32 * GB),
            ("grep", 8): ablated_datampi("grep", 8 * GB),
        }

    results = once(run_all)
    print("\nAblation: slowdown from removing each DataMPI mechanism")
    rows = []
    for (workload, size), result in results.items():
        rows.append(
            [f"{workload} {size}GB", f"{result.full_sec:.0f}s"]
            + [f"+{result.slowdown(m) * 100:.0f}%" for m in MECHANISMS]
        )
    print(render_table(
        ["case", "full design"] + [f"-{m}" for m in MECHANISMS], rows
    ))

    text_sort = results[("text_sort", 8)]
    normal_sort = results[("normal_sort", 32)]
    grep = results[("grep", 8)]

    # Removing any mechanism never helps.
    for result in results.values():
        for mechanism in MECHANISMS:
            assert result.slowdown(mechanism) >= -0.02, (result.workload, mechanism)

    # Pipelining and startup both matter for the shuffle-heavy sort.
    assert text_sort.slowdown("pipelining") > 0.04
    assert text_sort.slowdown("low_startup") > 0.04

    # Pipelining is the top mechanism for the heavyweight sort at scale.
    assert normal_sort.ranked()[0][0] == "pipelining"
    assert normal_sort.slowdown("pipelining") > 0.10

    # For scan-dominated grep, startup is the dominant mechanism.
    assert grep.ranked()[0][0] == "low_startup"
    assert grep.slowdown("low_startup") > 0.15

    # Buffering's cost hides under pipelining in *time*, but shows up as
    # disk traffic: without it the job writes ~4x the bytes (spill + 3
    # output replicas instead of replicas alone).
    full_writes = sum(
        n.disk_write.total_served
        for n in DataMPIModel().run("text_sort", 8 * GB).cluster.nodes
    )
    spill_writes = sum(
        n.disk_write.total_served
        for n in AblatedDataMPIModel("memory_buffering")
        .run("text_sort", 8 * GB).cluster.nodes
    )
    print(f"\ndisk writes: full design {full_writes / GB:.1f}GB, "
          f"without buffering {spill_writes / GB:.1f}GB")
    assert spill_writes > 1.25 * full_writes
    assert abs(text_sort.slowdown("memory_buffering")) < 0.06

"""Table 1: the five representative workloads chosen from BigDataBench."""

from repro.experiments import render_table, table1


def test_table1_workloads(once):
    rows = once(table1)
    print("\nTable 1. Representative Workloads")
    print(render_table(["No.", "Workload", "Type"], rows))
    assert [row[1] for row in rows] == [
        "Sort", "WordCount", "Grep", "Naive Bayes", "K-means",
    ]
    types = {row[1]: row[2] for row in rows}
    assert types["Sort"] == types["WordCount"] == types["Grep"] == "Micro-benchmark"
    assert types["Naive Bayes"] == "Social Network"
    assert types["K-means"] == "E-commerce"

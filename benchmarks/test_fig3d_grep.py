"""Figure 3(d): Grep, 8-64 GB.

Paper claims: DataMPI cuts execution time by 33-42 % vs Hadoop and
19-29 % vs Spark.
"""

from repro import paperdata
from repro.common.units import GB
from repro.experiments import improvement_range, micro_benchmark, sweep_table


def test_fig3d_grep(once):
    series = once(micro_benchmark, "grep", 3)
    print("\nFigure 3(d). Grep job execution time")
    print(sweep_table(series))

    # Ordering at every size: DataMPI < Spark < Hadoop.
    for size in series["hadoop"]:
        d = series["datampi"][size].elapsed_sec
        s = series["spark"][size].elapsed_sec
        h = series["hadoop"][size].elapsed_sec
        assert d < s < h, f"ordering broken at {size}: D={d:.0f} S={s:.0f} H={h:.0f}"

    # Improvement bands.
    low_h, high_h = improvement_range(series, "hadoop")
    paper_low, paper_high = paperdata.IMPROVEMENTS[("grep", "hadoop")]
    assert low_h >= paper_low - 0.05
    assert high_h <= paper_high + 0.05

    low_s, high_s = improvement_range(series, "spark")
    paper_low_s, paper_high_s = paperdata.IMPROVEMENTS[("grep", "spark")]
    assert low_s >= paper_low_s - 0.05
    assert high_s <= paper_high_s + 0.05

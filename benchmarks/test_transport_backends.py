"""Transport micro-benchmark: shared and streaming scenarios per backend.

Mirrors the shm-arena benchmark shape: a *shared* scenario (one writer
publishes a payload that every reader consumes — our ``bcast``) and a
*streaming* scenario (a producer pushes a long chunk stream to a
consumer — the bipartite O->A hot path).  Each scenario runs on all three
backends and records bytes moved and MiB/s into the benchmark JSON
(``--benchmark-json``) via ``extra_info``, so the performance delta
between the GIL-bound thread backend and the multiprocess shm backend is
*measured*, not asserted.

Nothing here asserts who is faster: at micro scale process startup can
dominate, and the honest numbers are the point.
"""

import pytest

from repro.mpi import mpi_run

TRANSPORTS = ("thread", "shm", "inline", "tcp")

SHARED_PAYLOAD_BYTES = 512 * 1024
SHARED_READERS = 3
SHARED_ROUNDS = 10

STREAM_CHUNK_BYTES = 64 * 1024
STREAM_CHUNKS = 200


def _shared_scenario(transport: str) -> int:
    """One writer bcasts a payload to every reader; returns bytes moved."""
    payload = b"\xa5" * SHARED_PAYLOAD_BYTES

    def main(comm):
        received = 0
        for _ in range(SHARED_ROUNDS):
            data = comm.bcast(payload if comm.rank == 0 else None, root=0)
            received += len(data)
        return received

    results = mpi_run(1 + SHARED_READERS, main, transport=transport)
    assert all(r == SHARED_ROUNDS * SHARED_PAYLOAD_BYTES for r in results)
    return SHARED_ROUNDS * SHARED_PAYLOAD_BYTES * SHARED_READERS


def _streaming_scenario(transport: str) -> int:
    """A producer streams chunks to a consumer; returns bytes moved."""
    chunk = b"\x5a" * STREAM_CHUNK_BYTES

    def main(comm):
        if comm.rank == 0:
            for _ in range(STREAM_CHUNKS):
                comm.send(1, chunk, tag=1)
            return 0
        return sum(
            len(comm.recv(source=0, tag=1).payload) for _ in range(STREAM_CHUNKS)
        )

    results = mpi_run(2, main, transport=transport)
    assert results[1] == STREAM_CHUNKS * STREAM_CHUNK_BYTES
    return results[1]


def _record(benchmark, scenario: str, transport: str, bytes_moved: int) -> None:
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["bytes_moved"] = bytes_moved
    benchmark.extra_info["bytes_per_sec"] = round(bytes_moved / mean, 2)
    benchmark.extra_info["throughput_mib_s"] = round(bytes_moved / mean / 2 ** 20, 2)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_shared_scenario(benchmark, once, transport):
    bytes_moved = once(_shared_scenario, transport)
    _record(benchmark, "shared", transport, bytes_moved)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_streaming_scenario(benchmark, once, transport):
    bytes_moved = once(_streaming_scenario, transport)
    _record(benchmark, "streaming", transport, bytes_moved)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_streaming_datampi_job(benchmark, once, transport):
    """The same streaming shape through the full DataMPI O/A stack."""
    from repro.datampi import DataMPIConf, DataMPIJob

    lines = [f"line-{index:06d}" for index in range(4000)]

    def run() -> int:
        def o_task(ctx, split):
            for line in split:
                ctx.send(line, None)

        def a_task(ctx):
            return sum(1 for _ in ctx)

        job = DataMPIJob(
            o_task, a_task,
            DataMPIConf(num_o=2, num_a=2, send_buffer_bytes=8 * 1024,
                        job_name="transport-bench", transport=transport),
        )
        result = job.run([lines[0::2], lines[1::2]])
        assert sum(result.outputs) == len(lines)
        return result.counters["o.bytes_sent"]

    bytes_moved = once(run)
    _record(benchmark, "streaming-datampi", transport, bytes_moved)

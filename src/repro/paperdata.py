"""Every quantitative claim in the paper, in one place.

Two provenance levels:

* ``stated`` — numbers written in the paper's prose (exact targets);
* ``chart`` — values read off the figures by eye (approximate targets;
  the benchmarks compare shapes and ratios against these, not absolutes).

The benchmark harness (one bench per table/figure) compares the simulated
results against these values and EXPERIMENTS.md records the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB, MB

# ---------------------------------------------------------------------------
# Stated job execution times (seconds) — Section 4.3 / 4.4 prose.
# ---------------------------------------------------------------------------

TEXT_SORT_8GB_SEC = {"hadoop": 117.0, "spark": 114.0, "datampi": 69.0}

#: Phase breakdown of the 8 GB Text Sort case (Section 4.4).
TEXT_SORT_8GB_PHASES = {
    "datampi_o_phase": 28.0,
    "hadoop_map_phase": 36.0,
    "spark_stage0": 38.0,
}

WORDCOUNT_32GB_SEC = {"hadoop": 275.0, "spark": 130.0, "datampi": 130.0}

# ---------------------------------------------------------------------------
# Stated improvement ranges (fraction of baseline time saved by DataMPI).
# ---------------------------------------------------------------------------

IMPROVEMENTS = {
    # (workload, baseline): (low, high) fraction
    ("normal_sort", "hadoop"): (0.29, 0.33),
    ("text_sort", "hadoop"): (0.34, 0.42),
    ("wordcount", "hadoop"): (0.47, 0.55),
    ("grep", "hadoop"): (0.33, 0.42),
    ("grep", "spark"): (0.19, 0.29),
    ("kmeans", "hadoop"): (0.0, 0.39),   # "at most 39% improvement"
    ("kmeans", "spark"): (0.0, 0.33),    # "at most 33% improvement"
    ("naive_bayes", "hadoop"): (0.25, 0.42),  # "33% on average"
}

#: Micro-benchmark averages (Section 4.3 closing): 40 % vs Hadoop, 14 % vs Spark.
MICRO_AVG_IMPROVEMENT = {"hadoop": 0.40, "spark": 0.14}

#: Small jobs (Section 4.5): DataMPI ~ Spark, ~54 % faster than Hadoop.
SMALL_JOB_IMPROVEMENT_VS_HADOOP = 0.54

#: Application average (Section 4.7): 36 % vs Hadoop, 33 % vs Spark.
APP_AVG_IMPROVEMENT = {"hadoop": 0.36, "spark": 0.33}

# ---------------------------------------------------------------------------
# Stated resource-utilization averages (Section 4.4).
# ---------------------------------------------------------------------------

#: 8 GB Text Sort, averaged over 0-117 s.
SORT_PROFILE = {
    "cpu_pct": {"datampi": 24.0, "spark": 38.0, "hadoop": 37.0},
    "iowait_pct": {"datampi": 6.0, "spark": 12.0, "hadoop": 15.0},
    # Disk throughput during the O / Map / Stage-0 phase (MB/s per node).
    "disk_read_phase_mbps": {"datampi": 50.0, "hadoop": 49.0, "spark": 46.0},
    "disk_write_mbps": {"datampi": 69.0, "hadoop": 67.0, "spark": 66.0},
    "net_mbps": {"datampi": 62.0, "hadoop": 39.0, "spark": 40.0},
    "mem_gb": {"datampi": 5.0, "spark": 9.0, "hadoop": 5.0},
}

#: 32 GB WordCount, averaged over 0-275 s.
WORDCOUNT_PROFILE = {
    "cpu_pct": {"datampi": 47.0, "spark": 30.0, "hadoop": 80.0},
    "iowait_pct": {"spark": 8.0},
    "disk_read_mbps": {"datampi": 44.0, "spark": 44.0, "hadoop": 20.0},
    "net_mbps": {"spark": 25.0, "datampi": 2.0, "hadoop": 2.0},  # D/H "few"
    "mem_gb": {"datampi": 5.0, "spark": 5.0, "hadoop": 9.0},
}

# ---------------------------------------------------------------------------
# Figure 7 aggregates (Section 4.7).
# ---------------------------------------------------------------------------

FIG7_CPU_UTIL_PCT = {"datampi": 35.0, "spark": 34.0, "hadoop": 59.0}
FIG7_DISK_IMPROVEMENT_VS_HADOOP = 0.49      # DataMPI & Spark vs Hadoop
FIG7_NET_IMPROVEMENT = {"spark": 0.55, "hadoop": 0.59}  # DataMPI vs each

# ---------------------------------------------------------------------------
# Chart-read series (approximate; source: figures).
# Values in seconds, keyed by input size in bytes.
# ---------------------------------------------------------------------------


def _series(sizes_gb, values):
    return {int(size * GB): value for size, value in zip(sizes_gb, values)}


FIG3A_NORMAL_SORT = {
    "hadoop": _series([4, 8, 16, 32], [300, 620, 1300, 2600]),
    "datampi": _series([4, 8, 16, 32], [205, 430, 900, 1780]),
}

FIG3B_TEXT_SORT = {
    "hadoop": _series([8, 16, 32, 64], [117, 240, 520, 1150]),
    "spark": _series([8], [114]),  # OOM above 8 GB
    "datampi": _series([8, 16, 32, 64], [69, 145, 320, 700]),
}

FIG3C_WORDCOUNT = {
    "hadoop": _series([8, 16, 32, 64], [70, 140, 275, 560]),
    "spark": _series([8, 16, 32, 64], [35, 67, 130, 270]),
    "datampi": _series([8, 16, 32, 64], [35, 66, 130, 265]),
}

FIG3D_GREP = {
    "hadoop": _series([8, 16, 32, 64], [32, 60, 115, 225]),
    "spark": _series([8, 16, 32, 64], [25, 47, 88, 175]),
    "datampi": _series([8, 16, 32, 64], [19, 36, 68, 132]),
}

#: Figure 5 small jobs (128 MB input, one task/worker per node), seconds.
FIG5_SMALL_JOBS = {
    "text_sort": {"hadoop": 38.0, "spark": 17.0, "datampi": 16.0},
    "wordcount": {"hadoop": 35.0, "spark": 15.0, "datampi": 14.0},
    "grep": {"hadoop": 33.0, "spark": 15.0, "datampi": 14.0},
}

FIG6A_KMEANS = {
    "hadoop": _series([8, 16, 32, 64], [55, 105, 215, 430]),
    "spark": _series([8, 16, 32, 64], [50, 97, 200, 400]),
    "datampi": _series([8, 16, 32, 64], [36, 70, 140, 280]),
}

FIG6B_NAIVE_BAYES = {
    "hadoop": _series([8, 16, 32, 64], [130, 265, 530, 1060]),
    "datampi": _series([8, 16, 32, 64], [87, 177, 355, 710]),
}

#: Figure 2(a): DFSIO throughput peaks at 256 MB blocks (chart ~20-28 MB/s).
FIG2A_BEST_BLOCK = 256 * MB
FIG2A_PEAK_THROUGHPUT_RANGE = (20.0, 32.0)

#: Figure 2(b): all systems peak at 4 tasks / workers per node.
FIG2B_BEST_SLOTS = 4

#: Spark OOM behaviour (Section 4.3).
SPARK_TEXT_SORT_MAX_OK = 8 * GB      # fails above this
SPARK_NORMAL_SORT_ALWAYS_FAILS = True


@dataclass(frozen=True)
class Claim:
    """A checkable claim for EXPERIMENTS.md reporting."""

    experiment: str
    description: str
    paper_value: float
    measured_value: float
    tolerance: float

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return abs(self.measured_value)
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def within_tolerance(self) -> bool:
        return self.relative_error <= self.tolerance


def improvement(baseline_sec: float, datampi_sec: float) -> float:
    """Fractional time saved by DataMPI relative to a baseline."""
    if baseline_sec <= 0:
        raise ValueError(f"baseline must be positive, got {baseline_sec}")
    return 1.0 - datampi_sec / baseline_sec

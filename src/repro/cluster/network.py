"""Flow-level model of the 1 GigE switch.

The testbed's switch is non-blocking for 8 ports, so the only network
bottlenecks are the per-node NIC directions.  A transfer from node A to
node B is modelled as two coupled flows — one through A's ``nic_out`` and
one through B's ``nic_in`` — and completes when both have drained.  For
the balanced all-to-all patterns of shuffle traffic this matches the
classic flow-level approximation, while still letting a single hot
receiver become the bottleneck.
"""

from __future__ import annotations

from repro.cluster.node import SimNode
from repro.simulate.engine import Engine, Event


class Switch:
    """Non-blocking switch connecting the cluster's nodes."""

    def __init__(self, engine: Engine, nodes: list[SimNode]):
        self.engine = engine
        self.nodes = nodes

    def transfer(self, src: SimNode, dst: SimNode, nbytes: float, label: str = "") -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a completion event.

        A local "transfer" (src is dst) costs nothing on the network — this
        is exactly the data-locality effect the paper highlights for the
        O/Map tasks reading HDFS blocks locally (Section 4.4).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if src is dst or nbytes == 0:
            return self.engine.timeout(0.0)
        out_flow = src.nic_out.transfer(nbytes, label=label or f"{src.node_id}->{dst.node_id}")
        in_flow = dst.nic_in.transfer(nbytes, label=label or f"{src.node_id}->{dst.node_id}")
        return self.engine.all_of([out_flow, in_flow])

    def broadcast(self, src: SimNode, nbytes: float, label: str = "") -> Event:
        """Send ``nbytes`` from ``src`` to every other node."""
        events = [
            self.transfer(src, dst, nbytes, label)
            for dst in self.nodes
            if dst is not src
        ]
        return self.engine.all_of(events)

"""Hardware specification of the paper's testbed (Table 2).

The evaluation cluster is 8 nodes on a 1 Gigabit Ethernet switch; each node
has two Intel Xeon E5620 processors (4 cores @ 2.4 GHz, hyper-threading
enabled, so 16 hardware threads), 16 GB DDR3-1333 RAM, and one SATA disk
with 150 GB free.  The disk and NIC service rates are not in the paper;
they are set to typical values for that hardware generation and are part
of the calibration documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB


@dataclass(frozen=True)
class NodeSpec:
    """One compute node, as listed in Table 2 of the paper."""

    cpu_model: str = "Intel Xeon E5620"
    sockets: int = 2
    cores_per_socket: int = 4
    threads_per_core: int = 2  # hyper-threading enabled
    clock_ghz: float = 2.4
    l1_cache: int = 32 * KB
    l2_cache: int = 256 * KB
    l3_cache: int = 12 * MB
    memory: int = 16 * GB
    disk_capacity: int = 150 * GB
    # Calibrated service rates (not in Table 2; see DESIGN.md):
    disk_read_bw: float = 140.0 * MB   # sequential read, bytes/s
    disk_write_bw: float = 110.0 * MB  # sequential write, bytes/s
    nic_bw: float = 117.0 * MB         # effective 1 GigE payload rate, per direction

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.threads_per_core < 1:
            raise ConfigError("node must have at least one hardware thread")
        if self.memory <= 0 or self.disk_capacity <= 0:
            raise ConfigError("memory and disk capacity must be positive")
        if min(self.disk_read_bw, self.disk_write_bw, self.nic_bw) <= 0:
            raise ConfigError("bandwidths must be positive")

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    def as_table(self) -> list[tuple[str, str]]:
        """Rows of Table 2, for the ``table2`` benchmark target."""
        return [
            ("CPU type", self.cpu_model),
            ("# cores", f"{self.cores_per_socket} cores @{self.clock_ghz}G"),
            ("# threads", f"{self.hardware_threads // self.sockets} threads"),
            ("# sockets", str(self.sockets)),
            ("L1 I/D Cache", "32 KB"),
            ("L2 Cache", "256 KB"),
            ("L3 Cache", "12 MB"),
            ("Memory", "16 GB"),
            ("Disk", "150GB free SATA disk"),
        ]


@dataclass(frozen=True)
class ClusterSpec:
    """The 8-node, single-switch testbed (Section 4.1)."""

    nodes: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)
    switch_name: str = "1 Gigabit Ethernet"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"cluster needs >= 1 node, got {self.nodes}")

    @classmethod
    def paper_testbed(cls) -> "ClusterSpec":
        """The exact configuration of Section 4.1 / Table 2."""
        return cls()

    @property
    def total_memory(self) -> int:
        return self.nodes * self.node.memory

    @property
    def total_hardware_threads(self) -> int:
        return self.nodes * self.node.hardware_threads

    @property
    def aggregate_disk_read_bw(self) -> float:
        return self.nodes * self.node.disk_read_bw

"""A simulated cluster node: CPU, disk, NIC and memory as shared resources.

Each node exposes:

* ``cpu`` — a :class:`FairShareResource` whose capacity is the number of
  hardware threads (a single-threaded task caps at 1.0);
* ``disk_read`` / ``disk_write`` — the SATA disk, modelled as independent
  read and write channels (a simplification of a half-duplex device; the
  calibrated bandwidths keep combined throughput realistic);
* ``nic_in`` / ``nic_out`` — the two directions of the 1 GigE port;
* a memory gauge used for the Figure 4 footprint plots and for the Spark
  OutOfMemory model.

Traced series are namespaced ``node{i}.cpu``, ``node{i}.disk.read`` etc.,
and :class:`repro.cluster.cluster.SimCluster` aggregates them cluster-wide.
"""

from __future__ import annotations

from repro.cluster.hardware import NodeSpec
from repro.common.errors import SimulationError
from repro.simulate.engine import Engine, Event
from repro.simulate.resources import FairShareResource, Flow
from repro.simulate.tracing import Tracer


class SimNode:
    """One node of the simulated testbed."""

    def __init__(self, engine: Engine, tracer: Tracer, node_id: int, spec: NodeSpec):
        self.engine = engine
        self.tracer = tracer
        self.node_id = node_id
        self.spec = spec
        prefix = f"node{node_id}"
        self.cpu = FairShareResource(
            engine, float(spec.hardware_threads), f"{prefix}.cpu", tracer, f"{prefix}.cpu"
        )
        self.disk_read = FairShareResource(
            engine, spec.disk_read_bw, f"{prefix}.disk.read", tracer, f"{prefix}.disk.read"
        )
        self.disk_write = FairShareResource(
            engine, spec.disk_write_bw, f"{prefix}.disk.write", tracer, f"{prefix}.disk.write"
        )
        self.nic_in = FairShareResource(
            engine, spec.nic_bw, f"{prefix}.net.in", tracer, f"{prefix}.net.in"
        )
        self.nic_out = FairShareResource(
            engine, spec.nic_bw, f"{prefix}.net.out", tracer, f"{prefix}.net.out"
        )
        self._memory_series = f"{prefix}.mem"
        self._iowait_series = f"{prefix}.iowait"
        self.memory_used = 0
        tracer.set_gauge(self._memory_series, engine.now, 0.0)
        tracer.set_gauge(self._iowait_series, engine.now, 0.0)

    # -- compute and I/O ------------------------------------------------------

    def compute(self, core_seconds: float, threads: float = 1.0, label: str = "") -> Flow:
        """Consume CPU time; ``threads`` caps the task's parallelism."""
        return self.cpu.transfer(core_seconds, cap=threads, weight=threads, label=label)

    def read(self, nbytes: float, label: str = "", *, track_wait: bool = True) -> Event:
        """Read from the local disk (fair-shared with concurrent readers)."""
        return self._io(self.disk_read, nbytes, label, track_wait)

    def write(self, nbytes: float, label: str = "", *, track_wait: bool = True) -> Event:
        """Write to the local disk."""
        return self._io(self.disk_write, nbytes, label, track_wait)

    def _io(self, channel: FairShareResource, nbytes: float, label: str,
            track_wait: bool) -> Event:
        """Start an I/O flow, tracking the number of I/O-blocked tasks.

        The ``iowait`` gauge counts tasks blocked on the disk; the profile
        reports convert it to the dstat-style "CPU wait I/O" percentage.
        """
        flow = channel.transfer(nbytes, label=label)
        if track_wait and nbytes > 0:
            self.tracer.adjust_gauge(self._iowait_series, self.engine.now, 1.0)
            flow.add_callback(
                lambda _event: self.tracer.adjust_gauge(
                    self._iowait_series, self.engine.now, -1.0
                )
            )
        return flow

    # -- memory ---------------------------------------------------------------

    def allocate(self, nbytes: int, label: str = "") -> None:
        """Account ``nbytes`` of memory use (footprint gauge; no failure here —
        admission control is the framework's job, see ``repro.spark.memory``)."""
        if nbytes < 0:
            raise SimulationError(f"negative allocation {nbytes}")
        self.memory_used += nbytes
        self.tracer.set_gauge(self._memory_series, self.engine.now, float(self.memory_used))

    def free(self, nbytes: int) -> None:
        """Release previously allocated memory."""
        if nbytes < 0:
            raise SimulationError(f"negative free {nbytes}")
        if nbytes > self.memory_used:
            raise SimulationError(
                f"freeing {nbytes} bytes but only {self.memory_used} allocated"
            )
        self.memory_used = max(0, self.memory_used - nbytes)
        self.tracer.set_gauge(self._memory_series, self.engine.now, float(self.memory_used))

    @property
    def memory_available(self) -> int:
        return self.spec.memory - self.memory_used

    # -- series names ---------------------------------------------------------

    @property
    def series_prefix(self) -> str:
        return f"node{self.node_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.node_id})"

"""The simulated testbed: engine + tracer + nodes + switch in one object.

``SimCluster`` also implements the cluster-wide metric aggregation used by
the Figure 4 plots: the paper's dstat-style monitors report *per-node
averages* (CPU %, disk MB/s, network MB/s, memory GB), so the aggregators
here average the per-node series across all nodes.
"""

from __future__ import annotations

from repro.cluster.hardware import ClusterSpec
from repro.cluster.network import Switch
from repro.cluster.node import SimNode
from repro.simulate.engine import Engine
from repro.simulate.tracing import Tracer


class SimCluster:
    """An instantiated simulation of the paper's 8-node testbed."""

    def __init__(self, spec: ClusterSpec | None = None):
        self.spec = spec or ClusterSpec.paper_testbed()
        self.engine = Engine()
        self.tracer = Tracer()
        self.nodes = [
            SimNode(self.engine, self.tracer, node_id, self.spec.node)
            for node_id in range(self.spec.nodes)
        ]
        self.switch = Switch(self.engine, self.nodes)

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id % len(self.nodes)]

    def run(self, until: float | None = None) -> float:
        """Run the simulation; returns the final time."""
        return self.engine.run(until)

    # -- cluster-wide metric aggregation --------------------------------------

    def _node_series(self, suffix: str) -> list[str]:
        return [f"{node.series_prefix}.{suffix}" for node in self.nodes]

    def avg_over_nodes(self, suffix: str, t0: float, t1: float) -> float:
        """Per-node average of a series over a time window.

        ``suffix`` is e.g. ``"disk.read"`` or ``"cpu"``; the result has the
        series' own units (bytes/s, threads, ...).
        """
        names = self._node_series(suffix)
        return sum(self.tracer.average(name, t0, t1) for name in names) / len(names)

    def sample_over_nodes(self, suffix: str, t_end: float, dt: float = 1.0) -> list[tuple[float, float]]:
        """Per-node average time series, sampled every ``dt`` seconds."""
        names = self._node_series(suffix)
        per_series = [self.tracer.sample(name, t_end, dt) for name in names]
        samples = []
        for i in range(len(per_series[0])):
            t = per_series[0][i][0]
            value = sum(series[i][1] for series in per_series) / len(names)
            samples.append((t, value))
        return samples

    def cpu_utilization_pct(self, t0: float, t1: float) -> float:
        """Average CPU utilization over all nodes as a percentage of all threads."""
        threads = float(self.spec.node.hardware_threads)
        return 100.0 * self.avg_over_nodes("cpu", t0, t1) / threads

    def iowait_pct(self, t0: float, t1: float, *, per_blocked_task_pct: float = 4.0) -> float:
        """dstat-style "CPU wait I/O" percentage.

        The gauge counts I/O-blocked tasks per node; each blocked task
        contributes roughly one idle hardware thread waiting on the disk.
        ``per_blocked_task_pct`` converts blocked tasks to a percentage of
        total CPU and is calibrated against the paper's reported 6-15 %.
        """
        return per_blocked_task_pct * self.avg_over_nodes("iowait", t0, t1)

    def disk_read_mbps(self, t0: float, t1: float) -> float:
        return self.avg_over_nodes("disk.read", t0, t1) / (1024 * 1024)

    def disk_write_mbps(self, t0: float, t1: float) -> float:
        return self.avg_over_nodes("disk.write", t0, t1) / (1024 * 1024)

    def network_mbps(self, t0: float, t1: float) -> float:
        """Per-node network throughput in MB/s, receive + send.

        dstat-style monitors report both directions; the paper's single
        "network throughput" series is reproduced as their sum per node.
        """
        total = self.avg_over_nodes("net.in", t0, t1) + self.avg_over_nodes(
            "net.out", t0, t1
        )
        return total / (1024 * 1024)

    def memory_gb(self, t0: float, t1: float) -> float:
        return self.avg_over_nodes("mem", t0, t1) / (1024 ** 3)

"""Simulated testbed: hardware specs (Table 2), nodes, switch, cluster."""

from repro.cluster.cluster import SimCluster
from repro.cluster.hardware import ClusterSpec, NodeSpec
from repro.cluster.network import Switch
from repro.cluster.node import SimNode

__all__ = ["SimCluster", "ClusterSpec", "NodeSpec", "Switch", "SimNode"]

"""``datampi-repro`` — command-line entry point for the reproduction.

Subcommands:

* ``list``                      — list every table/figure experiment
* ``run <experiment>``          — regenerate one table/figure and print it
* ``simulate <fw> <wl> <size>`` — one simulated job (e.g. datampi text_sort 8GB)
* ``workload <engine> <name>``  — run a functional workload on generated data
* ``experiment run|report|list``— drive the workload × engine × scale matrix
  end-to-end and render the paper's figures into ``reports/``
* ``experiment worker --join``  — execute matrix cells for a run serving
  on another process or machine (``experiment run --serve``)

The DataMPI engine's IPC backend is selectable with
``workload --transport {thread,shm,inline,tcp}``: threads in one process
(default), forked processes over shared-memory rings, a deterministic
inline scheduler, or processes joined by TCP socket pairs
(``--hosts``/``--port`` choose the bind addresses).  Its execution mode is selectable with
``workload --mode {common,iteration,streaming}``: run-once jobs
(default), kept-alive ranks with a cross-iteration KV cache (kmeans),
or windowed unbounded input (wordcount, grep).
"""

from __future__ import annotations

import argparse
import sys

from repro.common.units import format_size, parse_size
from repro import experiments
from repro.datampi import EXECUTION_MODES
from repro.experiments import report
from repro.mpi.transport import available_transports
from repro.perfmodels import simulate

EXPERIMENTS = {
    "table1": "Table 1: representative workloads",
    "table2": "Table 2: hardware configuration",
    "fig2a": "Figure 2(a): DFSIO block-size tuning",
    "fig2b": "Figure 2(b): tasks/workers-per-node tuning",
    "fig3a": "Figure 3(a): Normal Sort",
    "fig3b": "Figure 3(b): Text Sort",
    "fig3c": "Figure 3(c): WordCount",
    "fig3d": "Figure 3(d): Grep",
    "fig4-sort": "Figure 4(a-d): 8GB Text Sort resource profile",
    "fig4-wordcount": "Figure 4(e-h): 32GB WordCount resource profile",
    "fig5": "Figure 5: small jobs",
    "fig6a": "Figure 6(a): K-means",
    "fig6b": "Figure 6(b): Naive Bayes",
    "fig7": "Figure 7: seven-pronged summary",
}


def _cmd_list(_args) -> int:
    for name, description in EXPERIMENTS.items():
        print(f"{name:<16} {description}")
    return 0


def _print_sweep(series) -> None:
    print(report.sweep_table(series))


def _cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'datampi-repro list'",
              file=sys.stderr)
        return 2
    print(EXPERIMENTS[name])
    if name == "table1":
        print(report.render_table(["No.", "Workload", "Type"], experiments.table1()))
    elif name == "table2":
        print(report.render_table(["Item", "Value"], experiments.table2()))
    elif name == "fig2a":
        data = experiments.fig2a()
        blocks = sorted(next(iter(data.values())))
        rows = [
            [format_size(total)] + [f"{data[total][b]:.1f}" for b in blocks]
            for total in sorted(data)
        ]
        print(report.render_table(
            ["input"] + [format_size(b) for b in blocks], rows
        ))
    elif name == "fig2b":
        data = experiments.fig2b()
        rows = [
            [fw] + [f"{data[fw][s]:.1f}" for s in (2, 4, 6)]
            for fw in data
        ]
        print(report.render_table(["framework", "2", "4", "6"], rows))
    elif name in ("fig3a", "fig3b", "fig3c", "fig3d", "fig6a", "fig6b"):
        workload = {
            "fig3a": "normal_sort", "fig3b": "text_sort", "fig3c": "wordcount",
            "fig3d": "grep", "fig6a": "kmeans", "fig6b": "naive_bayes",
        }[name]
        _print_sweep(experiments.micro_benchmark(workload, executions=args.executions))
    elif name == "fig4-sort":
        print(report.profile_table(experiments.fig4_sort()))
    elif name == "fig4-wordcount":
        print(report.profile_table(experiments.fig4_wordcount()))
    elif name == "fig5":
        data = experiments.fig5(executions=args.executions)
        rows = [
            [w] + [f"{data[w][fw]:.1f}s" for fw in ("hadoop", "spark", "datampi")]
            for w in data
        ]
        print(report.render_table(["workload", "hadoop", "spark", "datampi"], rows))
    elif name == "fig7":
        radar = experiments.compute_radar(executions=1)
        rows = [
            [axis] + [f"{radar.scores[axis][fw]:.2f}"
                      for fw in ("hadoop", "spark", "datampi")]
            for axis in experiments.AXES
        ]
        print(report.render_table(["axis", "hadoop", "spark", "datampi"], rows))
    return 0


def _cmd_simulate(args) -> int:
    run = simulate(args.framework, args.workload, parse_size(args.size),
                   slots=args.slots, executions=args.executions)
    if run.failed:
        print(f"{args.framework} {args.workload} {args.size}: FAILED ({run.failure})")
        return 1
    print(f"{args.framework} {args.workload} {args.size}: {run.elapsed_sec:.1f}s")
    for phase, duration in run.phases.items():
        print(f"  {phase}: {duration:.1f}s")
    return 0


def _cmd_workload(args) -> int:
    from repro.bigdatabench import TextGenerator, generate_kmeans_vectors
    from repro.workloads import (
        grep_reference,
        grep_streaming,
        kmeans_iterative_job,
        merge_window_counts,
        run_grep,
        run_kmeans,
        run_text_sort,
        run_wordcount,
        wordcount_reference,
        wordcount_streaming,
    )

    if args.mode != "common" and args.engine != "datampi":
        print(f"--mode {args.mode} needs the datampi engine", file=sys.stderr)
        return 2

    storage = _storage_from_args(args)
    if storage is not None and args.engine != "datampi":
        print("--spill-threshold/--spill-dir/--cache-bytes need the datampi "
              "engine", file=sys.stderr)
        return 2

    if args.pool is not None:
        if args.engine != "datampi" or args.mode != "common":
            print("--pool needs the datampi engine in common mode",
                  file=sys.stderr)
            return 2
        if args.name not in ("wordcount", "sort", "grep"):
            print(f"--pool supports wordcount, sort and grep "
                  f"(got {args.name!r})", file=sys.stderr)
            return 2
        if args.pool < 1:
            print("--pool needs at least one submission", file=sys.stderr)
            return 2

    if args.hosts is not None or args.port != 0:
        # Backend options only the tcp transport understands; resolve them
        # into a constructed instance the job drivers pass through.
        if args.transport != "tcp":
            print("--hosts/--port need --transport tcp", file=sys.stderr)
            return 2
        from repro.common.errors import MPIError
        from repro.mpi.transport import get_transport

        try:
            args.transport = get_transport("tcp", hosts=args.hosts,
                                           port=args.port)
        except MPIError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.name == "kmeans":
        if args.mode == "streaming":
            print("kmeans supports modes common and iteration", file=sys.stderr)
            return 2
        vectors, _labels = generate_kmeans_vectors(args.vectors, seed=args.seed)
        if args.mode == "iteration":
            result, stats = kmeans_iterative_job(
                vectors, k=args.k, max_iterations=10, seed=args.seed,
                transport=args.transport, storage=storage,
            )
            baseline = run_kmeans("datampi", vectors, k=args.k, max_iterations=10,
                                  seed=args.seed, transport=args.transport)
            identical = [c.weights for c in result.centroids] == \
                [c.weights for c in baseline.centroids]
            print(f"kmeans k={args.k} iterations={result.iterations} "
                  f"converged={result.converged} verified={identical}")
            print(f"cache served {stats.counters.get('cache.hit_bytes', 0)} bytes "
                  f"locally over {len(stats.per_iteration)} iterations")
        else:
            from repro.workloads import kmeans_reference

            result = run_kmeans(args.engine, vectors, k=args.k, max_iterations=10,
                                seed=args.seed, transport=args.transport)
            reference = kmeans_reference(vectors, k=args.k, max_iterations=10,
                                         seed=args.seed)
            drift = max(
                mine.squared_distance(ref) ** 0.5
                for mine, ref in zip(result.centroids, reference.centroids)
            )
            ok = result.iterations == reference.iterations and drift < 1e-9
            print(f"kmeans k={args.k} iterations={result.iterations} "
                  f"converged={result.converged} verified={ok}")
        return 0

    lines = TextGenerator(seed=args.seed).lines(args.lines)
    if args.pool is not None:
        return _run_pooled_workload(args, lines)
    if args.name in ("wordcount", "grep") and args.mode == "iteration":
        print(f"{args.name} supports modes common and streaming", file=sys.stderr)
        return 2
    if args.name == "wordcount":
        if args.mode == "streaming":
            result = wordcount_streaming(lines, lines_per_split=max(1, args.lines // 8),
                                         transport=args.transport,
                                         storage=storage)
            ok = merge_window_counts(result) == wordcount_reference(lines)
            print(f"{len(result.windows)} windows flushed; verified={ok}")
        else:
            counts = run_wordcount(args.engine, lines, transport=args.transport,
                                   storage=storage)
            ok = counts == wordcount_reference(lines)
            print(f"{len(counts)} distinct words; verified={ok}")
    elif args.name == "sort":
        if args.mode != "common":
            print("sort supports only the common mode", file=sys.stderr)
            return 2
        output = run_text_sort(args.engine, lines, transport=args.transport,
                               storage=storage)
        print(f"sorted {len(output)} lines; verified={output == sorted(lines)}")
    elif args.name == "grep":
        if args.mode == "streaming":
            result = grep_streaming(lines, args.pattern,
                                    lines_per_split=max(1, args.lines // 8),
                                    transport=args.transport,
                                    storage=storage)
            ok = merge_window_counts(result) == grep_reference(lines, args.pattern)
            print(f"{len(result.windows)} windows flushed; verified={ok}")
        else:
            counts = run_grep(args.engine, lines, args.pattern,
                              transport=args.transport, storage=storage)
            print(f"{sum(counts.values())} matches of {len(counts)} distinct strings")
    else:
        print(f"unknown workload {args.name!r}", file=sys.stderr)
        return 2
    return 0


def _run_pooled_workload(args, lines) -> int:
    """Serve one workload N times through a warm WorldPool; print latency."""
    import statistics
    import time

    from repro.serving import WorldPool
    from repro.workloads import (
        grep_datampi_job,
        grep_reference,
        split_round_robin,
        text_sort_datampi_job,
        wordcount_datampi_job,
        wordcount_reference,
    )

    if args.name == "wordcount":
        job = wordcount_datampi_job(transport=None)
        verify = lambda merged: dict(merged) == wordcount_reference(lines)  # noqa: E731
    elif args.name == "sort":
        job = text_sort_datampi_job(lines)
        verify = lambda merged: merged == sorted(lines)  # noqa: E731
    else:  # grep — _cmd_workload already screened the names
        job = grep_datampi_job(args.pattern)
        verify = lambda merged: dict(merged) == grep_reference(lines, args.pattern)  # noqa: E731

    splits = split_round_robin(list(lines), job.conf.num_o)
    latencies: list[float] = []
    with WorldPool(num_o=job.conf.num_o, num_a=job.conf.num_a,
                   transport=args.transport) as pool:
        pool.register(args.name, job)
        pool.start()
        pool.run_job(args.name, splits)  # warm-up: pays the one-time scatter
        started = time.perf_counter()
        for _ in range(args.pool):
            t0 = time.perf_counter()
            result = pool.run_job(args.name, splits)
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - started
    ok = verify(result.merged_outputs())
    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, max(0, -(-99 * len(ordered) // 100) - 1))]
    transport = getattr(args.transport, "name", args.transport) or "thread"
    print(f"pooled {args.name}: {args.pool} jobs in {elapsed:.3f}s on one "
          f"warm {job.conf.num_o}x{job.conf.num_a} {transport} world — "
          f"{args.pool / elapsed:.1f} jobs/s, p50 {p50 * 1e3:.1f}ms, "
          f"p99 {p99 * 1e3:.1f}ms; verified={ok}")
    return 0 if ok else 1


DEFAULT_MATRIX_DIR = "results/matrix"
DEFAULT_REPORTS_DIR = "reports"


def _storage_from_args(args):
    """Build the workload's StorageConfig from the CLI flags, or None."""
    if args.spill_threshold is None and args.spill_dir is None \
            and args.cache_bytes is None:
        return None
    from repro.storage import DEFAULT_SPILL_BYTES, StorageConfig

    return StorageConfig(
        cache_bytes=None if args.cache_bytes is None
        else parse_size(args.cache_bytes),
        spill_dir=args.spill_dir,
        spill_threshold=DEFAULT_SPILL_BYTES if args.spill_threshold is None
        else parse_size(args.spill_threshold),
    )


def _parallel_workers(value: str) -> int:
    """argparse type for --parallel: a clean usage error, not a traceback."""
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU core), got {workers}"
        )
    return workers


def _cmd_experiment_list(args) -> int:
    from repro.experiments.matrix import checkpoint_status
    from repro.experiments.spec import cells_table, get_spec

    spec = get_spec(args.spec, transport=args.transport)
    status = checkpoint_status(spec, args.out)
    print(f"experiment {spec.name!r}: {len(spec.cells)} cells "
          f"(seed={spec.seed}, parallelism={spec.parallelism}, "
          f"max_iterations={spec.max_iterations}); "
          f"checkpoints under {args.out!r}")
    print(report.render_table(
        ["cell", "workload", "mode", "engine", "scale", "transport", "status"],
        cells_table(spec, status),
    ))
    counts: dict[str, int] = {}
    for state in status.values():
        counts[state] = counts.get(state, 0) + 1
    summary = ", ".join(f"{counts[s]} {s}" for s in
                        ("done", "failed", "stale", "pending") if s in counts)
    print(f"checkpoint status: {summary}")
    return 0


def _progress_line(result) -> None:
    state = "cached" if result.resumed else result.status
    bytes_moved = ("-" if result.bytes_moved is None
                   else f"{result.bytes_moved:,}B")
    print(f"  [{state:>6}] {result.spec.cell_id:<40} "
          f"{result.elapsed_sec:7.3f}s  {bytes_moved}")


def _cmd_experiment_run(args) -> int:
    from repro.common.errors import ConfigError, ReproError
    from repro.experiments.matrix import MatrixRunner, verify_cross_engine
    from repro.experiments.spec import get_spec

    name = "quick" if args.quick else args.spec
    spec = get_spec(name, transport=args.transport)
    if args.spill_budget is not None:
        import dataclasses

        spec = dataclasses.replace(
            spec, spill_budget_bytes=parse_size(args.spill_budget)
        )

    try:
        runner = MatrixRunner(spec, args.out, progress=_progress_line,
                              workers=args.parallel, serve=args.serve)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.serve is not None:
        how = f"serving workers on {runner.serve}"
    elif runner.workers <= 1:
        how = "serially"
    else:
        how = f"on {runner.workers} workers"
    print(f"running experiment {spec.name!r} "
          f"({len(spec.cells)} cells, {how}) -> {args.out}")
    try:
        result = runner.run(resume=not args.no_resume)
    except ReproError as exc:  # e.g. a stalled distributed run
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The runner's cleanup (claim release, worker shutdown) has
        # already run on the way out; finished cells are checkpointed,
        # so the run is resumable exactly where it stopped.
        print(f"interrupted: finished cells are checkpointed under "
              f"{args.out!r}; re-run 'experiment run' to resume",
              file=sys.stderr)
        return 130
    failed = result.failed_cells()
    agree = verify_cross_engine(result)
    print(f"done: {result.executed} executed, {result.resumed} resumed, "
          f"{len(failed)} failed; cross-engine outputs agree on "
          f"{sum(agree.values())}/{len(agree)} comparisons")
    for cell in failed:
        print(f"  FAILED {cell.spec.cell_id}: {cell.error}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_experiment_worker(args) -> int:
    from repro.common.errors import ReproError
    from repro.experiments.matrix import run_matrix_worker

    print(f"joining matrix parent at {args.join}")
    try:
        executed = run_matrix_worker(args.join, progress=_progress_line,
                                     connect_timeout=args.connect_timeout)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker done: {executed} cell(s) executed")
    return 0


def _cmd_experiment_report(args) -> int:
    from repro.common.errors import ReproError
    from repro.experiments.matrix import load_matrix
    from repro.experiments.reportbuilder import ReportBuilder

    try:
        matrix = load_matrix(args.out)
    except ReproError as exc:
        print(f"cannot load matrix from {args.out!r}: {exc}", file=sys.stderr)
        return 2
    written = ReportBuilder(matrix, args.reports).build()
    if not matrix.complete:
        print(f"warning: matrix run is incomplete "
              f"({len(matrix.results)}/{len(matrix.spec.cells)} cells "
              f"recorded); figures have holes — re-run "
              f"'repro experiment run' to finish it", file=sys.stderr)
    print(f"report for experiment {matrix.spec.name!r} "
          f"({len(matrix.results)} cells):")
    for path in written:
        print(f"  {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(
        args.paths,
        select=args.select,
        output_format=args.format,
        list_checkers=args.list_checkers,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="datampi-repro",
        description="Reproduce 'Performance Benefits of DataMPI' (2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    lint = sub.add_parser(
        "lint", help="run the repro-lint AST invariant checkers (see docs/linting.md)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment")
    run.add_argument("--executions", type=int, default=3)
    run.set_defaults(func=_cmd_run)

    sim = sub.add_parser("simulate", help="simulate one job")
    sim.add_argument("framework", choices=["hadoop", "spark", "datampi"])
    sim.add_argument("workload")
    sim.add_argument("size", help="input size, e.g. 8GB")
    sim.add_argument("--slots", type=int, default=4)
    sim.add_argument("--executions", type=int, default=3)
    sim.set_defaults(func=_cmd_simulate)

    wl = sub.add_parser("workload", help="run a functional workload")
    wl.add_argument("engine", choices=["hadoop", "spark", "datampi"])
    wl.add_argument("name", help="wordcount | sort | grep | kmeans")
    wl.add_argument("--lines", type=int, default=2000)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--pattern", default=r"ba[a-z]*")
    wl.add_argument("--vectors", type=int, default=120,
                    help="input vectors for the kmeans workload")
    wl.add_argument("--k", type=int, default=5,
                    help="clusters for the kmeans workload")
    wl.add_argument("--transport", choices=available_transports(), default=None,
                    help="IPC backend for the datampi engine "
                         "(default: thread, or REPRO_TRANSPORT)")
    wl.add_argument("--hosts", default=None, metavar="H1,H2,...",
                    help="tcp transport only: comma-separated bind addresses; "
                         "ranks are assigned round-robin over the list")
    wl.add_argument("--port", type=int, default=0,
                    help="tcp transport only: rendezvous port (0 = ephemeral)")
    wl.add_argument("--mode", choices=EXECUTION_MODES, default="common",
                    help="execution mode for the datampi engine: run-once "
                         "jobs, kept-alive iteration with a KV cache, or "
                         "windowed streaming")
    wl.add_argument("--spill-threshold", default=None, metavar="SIZE",
                    help="per-rank receive-store memory budget (e.g. 4KB); "
                         "chunks past it spill to mmap-backed segment files "
                         "(datampi engine)")
    wl.add_argument("--spill-dir", default=None, metavar="DIR",
                    help="directory for spill segment files (default: a "
                         "private temp dir, removed on cleanup)")
    wl.add_argument("--cache-bytes", default=None, metavar="SIZE",
                    help="cross-superstep KV cache capacity (e.g. 1MB; "
                         "default unbounded; datampi engine)")
    wl.add_argument("--pool", type=int, default=None, metavar="N",
                    help="datampi engine, common mode: submit the workload "
                         "N times to one warm serving world (WorldPool) and "
                         "report sustained jobs/sec with p50/p99 latency, "
                         "instead of one cold run")
    wl.set_defaults(func=_cmd_workload)

    exp = sub.add_parser(
        "experiment",
        help="drive the workload x engine x scale matrix (see docs/experiments.md)",
    )
    exp_sub = exp.add_subparsers(dest="experiment_command", required=True)

    exp_list = exp_sub.add_parser(
        "list", help="list a matrix spec's cells and their checkpoint status"
    )
    exp_list.add_argument("--spec", choices=["quick", "full"], default="quick")
    exp_list.add_argument("--transport", choices=available_transports(),
                          default="inline",
                          help="IPC backend for the datampi-engine cells")
    exp_list.add_argument("--out", default=DEFAULT_MATRIX_DIR,
                          help="matrix checkpoint directory to inspect")
    exp_list.set_defaults(func=_cmd_experiment_list)

    exp_run = exp_sub.add_parser(
        "run", help="execute every cell (resumable, cell-level checkpoints)"
    )
    which = exp_run.add_mutually_exclusive_group()
    which.add_argument("--spec", choices=["quick", "full"], default="quick")
    which.add_argument("--quick", action="store_true",
                       help="shorthand for --spec quick")
    exp_run.add_argument("--out", default=DEFAULT_MATRIX_DIR,
                         help="matrix checkpoint/result directory")
    exp_run.add_argument("--no-resume", action="store_true",
                         help="re-execute cells even when checkpointed")
    exp_run.add_argument("--transport", choices=available_transports(),
                         default="inline",
                         help="IPC backend for the datampi-engine cells")
    exp_run.add_argument("--parallel", type=_parallel_workers, nargs="?",
                         const=0, default=1, metavar="N",
                         help="execute cells on a process pool of N workers "
                              "(bare --parallel sizes the pool to the CPU "
                              "count; default: serial).  Serial and parallel "
                              "runs render byte-identical reports")
    exp_run.add_argument("--spill-budget", default=None, metavar="SIZE",
                         help="per-rank receive-store memory budget for the "
                              "datampi cells (e.g. 4KB); over-budget chunks "
                              "spill to disk and cells report bytes_spilled")
    exp_run.add_argument("--serve", default=None, metavar="HOST:PORT",
                         help="also admit distributed workers ('repro "
                              "experiment worker --join TOKEN') that "
                              "claim cells via claim files next to the "
                              "checkpoints; port 0 binds an ephemeral port.  "
                              "Workers must authenticate: the printed join "
                              "token (HOST:PORT/KEY) carries a generated "
                              "key, or set REPRO_MATRIX_AUTHKEY on both "
                              "sides.  Mutually exclusive with --parallel")
    exp_run.set_defaults(func=_cmd_experiment_run)

    exp_worker = exp_sub.add_parser(
        "worker",
        help="join a serving matrix run and execute claimable cells "
             "(multi-host runs need the matrix --out directory on a "
             "shared filesystem)",
    )
    exp_worker.add_argument("--join", required=True, metavar="TOKEN",
                            help="join token the serving parent printed "
                                 "(HOST:PORT/KEY), or a bare HOST:PORT with "
                                 "REPRO_MATRIX_AUTHKEY set to the parent's "
                                 "key")
    exp_worker.add_argument("--connect-timeout", type=float, default=30.0,
                            help="seconds to keep retrying the first connect "
                                 "(the parent may still be starting)")
    exp_worker.set_defaults(func=_cmd_experiment_worker)

    exp_report = exp_sub.add_parser(
        "report", help="render the recorded matrix into reports/"
    )
    exp_report.add_argument("--out", default=DEFAULT_MATRIX_DIR,
                            help="matrix directory to read")
    exp_report.add_argument("--reports", default=DEFAULT_REPORTS_DIR,
                            help="directory the figure artifacts go to")
    exp_report.set_defaults(func=_cmd_experiment_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

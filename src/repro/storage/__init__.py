"""``repro.storage`` — the data plane's storage layer.

The stable surface for everything that holds key-value payloads at rest
between the shuffle and the compute:

* :class:`KVCache` — per-rank LRU cache for cross-superstep reuse
  (Iteration mode's locality win), byte-accounted with ``record_size``.
* :class:`SpillStore` — memory-budgeted byte store that evicts LRU
  payloads to mmap-backed segment files and rehydrates them as read-only
  ``memoryview`` slices (the beyond-RAM data plane).
* :class:`ChunkStore` — the A-side receive store, a :class:`SpillStore`
  of origin-stamped shuffle chunks with a canonical k-way merge.
* :class:`StorageConfig` — the one value object carrying the budgets
  (``cache_bytes``, ``spill_threshold``) and spill placement
  (``spill_dir``); ``DataMPIConf.storage`` holds one and every driver
  builds its per-rank cache/store from it.

The historical import paths ``repro.datampi.kvcache`` and
``repro.datampi.receiver`` still work but emit a ``DeprecationWarning``;
new code imports from here.
"""

from repro.storage.chunkstore import ChunkStore, Origin
from repro.storage.config import StorageConfig
from repro.storage.kvcache import KVCache
from repro.storage.spill import DEFAULT_SPILL_BYTES, SpillStore, map_segment

__all__ = [
    "ChunkStore",
    "DEFAULT_SPILL_BYTES",
    "KVCache",
    "Origin",
    "SpillStore",
    "StorageConfig",
    "map_segment",
]

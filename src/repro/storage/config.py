"""One value object for every storage knob a DataMPI job carries.

Before the storage layer was extracted, the cache capacity and the spill
threshold travelled as loose ``cache_bytes``/``spill_bytes`` integers on
:class:`~repro.datampi.job.DataMPIConf`, and the spill directory could
not be configured at all.  :class:`StorageConfig` is the one place those
decisions now live; the conf carries it, drivers build their per-rank
stores from it, and the legacy integer fields remain as deprecation
shims that synthesize one of these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.storage.chunkstore import ChunkStore
from repro.storage.kvcache import KVCache
from repro.storage.spill import DEFAULT_SPILL_BYTES


@dataclass(frozen=True)
class StorageConfig:
    """Memory budgets and spill placement for one job's ranks.

    Examples:
        >>> from repro.storage import StorageConfig
        >>> config = StorageConfig(cache_bytes=1 << 20, spill_threshold=4096)
        >>> cache = config.make_cache()
        >>> cache.capacity_bytes
        1048576
        >>> store = config.make_store()
        >>> store.add(b"chunk")
        >>> store.memory_bytes
        5
        >>> store.cleanup()
    """

    #: Capacity of the per-rank cross-superstep KV cache (None = unbounded).
    cache_bytes: int | None = None
    #: Directory receiving spill segment files (None = a per-store owned
    #: temp directory).  One shared directory may serve many ranks —
    #: segment file names are unique per store.
    spill_dir: str | None = None
    #: In-memory budget of each A rank's chunk store; received chunk
    #: bytes beyond it are evicted LRU to segment files.
    spill_threshold: int = DEFAULT_SPILL_BYTES

    def __post_init__(self) -> None:
        if self.cache_bytes is not None and self.cache_bytes < 1:
            raise ConfigError("cache_bytes must be positive or None")
        if self.spill_threshold < 1:
            raise ConfigError("spill_threshold must be positive")

    def make_cache(self) -> KVCache:
        """A fresh per-rank KV cache sized by this config."""
        return KVCache(self.cache_bytes)

    def make_store(self) -> ChunkStore:
        """A fresh per-rank chunk store budgeted and placed by this config."""
        return ChunkStore(spill_threshold=self.spill_threshold,
                          spill_dir=self.spill_dir)

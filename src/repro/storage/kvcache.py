"""Per-rank in-memory KV cache for cross-superstep data reuse.

The DataMPI spec's Iteration mode keeps task processes alive across
supersteps so that iteration *i+1* can read iteration *i*'s data locally
instead of re-partitioning and re-sending it.  This cache is the local
half of that design: each rank owns one :class:`KVCache`, the iterative
driver pins O-side input splits and A-side outputs in it, and user tasks
may stash their own cross-iteration state (``ctx.cache``).

Sizes are accounted with :func:`repro.common.kv.record_size` — the same
cost model the send buffers charge to the network — so a cache hit's
``hit_bytes`` is directly comparable to the ``o.bytes_sent`` counter it
saved.  ``record_size`` sizes ``memoryview``/``bytearray`` payloads by
their byte length, so entries from the FMT_BATCH zero-copy path charge
the budget exactly.  Eviction is LRU; an entry larger than the whole
capacity is rejected rather than thrashing the cache empty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

from repro.common.errors import DataMPIError
from repro.common.kv import record_size


class KVCache:
    """LRU key-value cache with ``record_size``-based byte accounting.

    Examples:
        >>> from repro.storage import KVCache
        >>> cache = KVCache(capacity_bytes=1024)
        >>> cache.put("o.splits", [b"chunk-0", b"chunk-1"])
        True
        >>> cache.get("o.splits")
        [b'chunk-0', b'chunk-1']
        >>> cache.get("absent", "fallback")
        'fallback'
        >>> cache.counters["cache.hits"], cache.counters["cache.misses"]
        (1, 1)

        Oversized entries are rejected outright instead of emptying the
        cache to no avail:

        >>> cache.put("huge", b"x" * 4096)
        False
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 1:
            raise DataMPIError(
                f"cache capacity must be positive or None, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.evictions = 0
        self.rejected = 0

    # -- core operations -------------------------------------------------------

    def put(self, key: Any, value: Any) -> bool:
        """Store ``value`` under ``key``; returns False if it cannot fit.

        Replacing an existing key re-accounts its size.  When a capacity is
        set, least-recently-used entries are evicted until the new entry
        fits; an entry bigger than the whole capacity is rejected (storing
        it would merely empty the cache and still overflow).
        """
        size = record_size(key, value)
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            self.discard(key)  # a stale smaller value must not linger
            self.rejected += 1
            return False
        self.discard(key)
        while (
            self.capacity_bytes is not None
            and self._entries
            and self.used_bytes + size > self.capacity_bytes
        ):
            self._evict_lru()
        self._entries[key] = (value, size)
        self.used_bytes += size
        return True

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value (counting a hit) or ``default`` (a miss)."""
        entry = self._entries.get(key)
        if entry is None:  # entries are (value, size) tuples, never None
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        value, size = entry
        self.hits += 1
        self.hit_bytes += size
        return value

    def discard(self, key: Any) -> bool:
        """Remove ``key`` if present (no eviction counted); True if removed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        return True

    def evict(self, key: Any) -> bool:
        """Explicitly evict ``key``; True if it was present."""
        if self.discard(key):
            self.evictions += 1
            return True
        return False

    def _evict_lru(self) -> None:
        _key, (_value, size) = self._entries.popitem(last=False)
        self.used_bytes -= size
        self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0

    # -- introspection ---------------------------------------------------------

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def size_of(self, key: Any) -> int | None:
        """Accounted byte size of one entry, or None if absent."""
        entry = self._entries.get(key)
        return None if entry is None else entry[1]

    @property
    def counters(self) -> dict[str, int]:
        return {
            "cache.hits": self.hits,
            "cache.misses": self.misses,
            "cache.hit_bytes": self.hit_bytes,
            "cache.evictions": self.evictions,
            "cache.rejected": self.rejected,
        }

"""Memory-budgeted byte store with LRU spill to mmap-backed segment files.

The beyond-RAM half of the storage layer: a :class:`SpillStore` keeps
byte payloads (``bytes``/``bytearray``/read-only ``memoryview``) in
memory up to a budget and evicts least-recently-used entries to *segment
files* on disk.  Reads rehydrate transparently — :meth:`SpillStore.get`
returns a read-only ``memoryview`` whether the payload is resident or
spilled, so everything downstream (``decode_stream``, the k-way merge,
checkpointing) runs the exact same zero-copy code path either way and
the data plane's no-pickle guarantee survives eviction.

Segment files are written once per eviction event and sealed; reads map
them with ``mmap.ACCESS_READ``, so the payload bytes live in the OS page
cache rather than the process heap — which is what lets a dataset larger
than the budget stream through a bounded-RSS process, and what shares
one physical copy of a segment between local processes that map the same
file (e.g. ranks forked by the shm transport reading a shared spill
directory).

Layout: a segment file is the evicted payloads concatenated back to
back, nothing else.  The index (key -> segment, offset, length) lives in
the owning store; segments are not self-describing, which keeps the
write path one ``write()`` per payload.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from collections import OrderedDict
from typing import Any, Iterator

from repro.common.errors import DataMPIError

#: Default in-memory budget, shared with the historical ChunkStore
#: threshold so the legacy ``spill_bytes`` conf field keeps its meaning.
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024


def map_segment(path: str) -> memoryview:
    """Map one sealed segment file read-only; returns a zero-copy view.

    The mapping is ``mmap.ACCESS_READ``: pages are clean, evictable, and
    shared with every other local process that maps the same file.
    """
    with open(path, "rb") as handle:
        # Ownership of the mapping transfers to the returned memoryview;
        # refcounting releases the map when the last view goes away.
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)  # repro: allow[RPL002]
    return memoryview(mapped)


class _Entry:
    """One stored payload: resident (``payload`` set) or spilled."""

    __slots__ = ("payload", "nbytes", "segment", "offset")

    def __init__(self, payload: bytes | bytearray | memoryview | None,
                 nbytes: int) -> None:
        self.payload = payload
        self.nbytes = nbytes
        self.segment: int | None = None
        self.offset = 0

    @property
    def spilled(self) -> bool:
        return self.payload is None


class SpillStore:
    """LRU byte-payload store that spills past ``budget_bytes`` to disk.

    Examples:
        A two-entry store with a budget smaller than both payloads: the
        older entry is evicted to a segment file, and reading it back
        returns a ``memoryview`` over the mapped segment:

        >>> store = SpillStore(budget_bytes=12)
        >>> store.put("old", b"x" * 10)
        >>> store.put("new", b"y" * 10)   # evicts "old" to disk
        >>> store.is_spilled("old"), store.is_spilled("new")
        (True, False)
        >>> bytes(store.get("old")) == b"x" * 10
        True
        >>> store.bytes_spilled, store.spill_reads
        (10, 1)
        >>> store.cleanup()
    """

    def __init__(self, budget_bytes: int = DEFAULT_SPILL_BYTES,
                 spill_dir: str | None = None) -> None:
        if budget_bytes < 1:
            raise DataMPIError(
                f"spill budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._spill_dir = spill_dir
        self._owned_dir: str | None = None
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._segments: list[str] = []  # segment index -> file path
        self._maps: dict[int, memoryview] = {}  # lazily mapped segments
        #: Payload bytes currently resident in memory.
        self.in_memory_bytes = 0
        #: Cumulative payload bytes written to segment files.
        self.bytes_spilled = 0
        #: Reads served from a mapped segment instead of memory.
        self.spill_reads = 0
        #: Eviction events == segment files created (cumulative).
        self.spills = 0

    # -- write path ------------------------------------------------------------

    def put(self, key: Any,
            payload: bytes | bytearray | memoryview) -> None:
        """Store ``payload`` (bytes-like) under ``key``, evicting LRU
        entries to disk if the in-memory total would exceed the budget.

        The payload is kept as-is — a ``memoryview`` from the zero-copy
        receive path is not copied on the way in.  Unlike a cache, a
        store never rejects: an entry larger than the whole budget is
        admitted and immediately spilled.
        """
        self.discard(key)
        nbytes = payload.nbytes if isinstance(payload, memoryview) \
            else len(payload)
        self._entries[key] = _Entry(payload, nbytes)
        self.in_memory_bytes += nbytes
        if self.in_memory_bytes > self.budget_bytes:
            self._evict()

    def _evict(self) -> None:
        """One eviction event: write oldest resident entries to a fresh
        segment file until the resident total is back under budget."""
        victims: list[tuple[_Entry, bytes | bytearray | memoryview]] = []
        for entry in self._entries.values():
            if self.in_memory_bytes <= self.budget_bytes:
                break
            payload = entry.payload
            if payload is None or entry.nbytes == 0:
                continue
            victims.append((entry, payload))
            self.in_memory_bytes -= entry.nbytes
        if not victims:
            return
        segment = len(self._segments)
        fd, path = tempfile.mkstemp(
            prefix=f"segment-{segment:04d}-", suffix=".seg",
            dir=self._directory(),
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for _entry, payload in victims:
                    handle.write(payload)
        except BaseException:
            # A failed write (disk full, released buffer) must not leak
            # the partial segment file or leave the store's accounting
            # pointing at a segment that was never sealed.
            os.unlink(path)
            for entry, _payload in victims:
                self.in_memory_bytes += entry.nbytes
            raise
        offset = 0
        for entry, _payload in victims:
            entry.payload = None
            entry.segment = segment
            entry.offset = offset
            offset += entry.nbytes
            self.bytes_spilled += entry.nbytes
        self._segments.append(path)
        self.spills += 1

    def _directory(self) -> str:
        if self._spill_dir is not None:
            os.makedirs(self._spill_dir, exist_ok=True)
            return self._spill_dir
        if self._owned_dir is None:
            self._owned_dir = tempfile.mkdtemp(prefix="repro-spill-")
        return self._owned_dir

    # -- read path -------------------------------------------------------------

    def get(self, key: Any) -> memoryview:
        """A read-only view of one payload, resident or rehydrated.

        Resident entries are touched (moved to the LRU tail); spilled
        entries are served as zero-copy slices of their mapped segment
        and counted in ``spill_reads`` — they stay on disk, so a
        post-spill scan never re-inflates the resident set.
        """
        entry = self._entries[key]
        payload = entry.payload
        if payload is not None:
            self._entries.move_to_end(key)
            return payload if isinstance(payload, memoryview) \
                else memoryview(payload)
        self.spill_reads += 1
        segment = entry.segment
        assert segment is not None  # spilled => sealed into a segment
        mapped = self._maps.get(segment)
        if mapped is None:
            mapped = map_segment(self._segments[segment])
            self._maps[segment] = mapped
        return mapped[entry.offset:entry.offset + entry.nbytes]

    def discard(self, key: Any) -> bool:
        """Drop ``key`` if present; True if removed.  Spilled bytes stay
        in their segment (dead space) until :meth:`reset`/:meth:`cleanup`."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        if not entry.spilled:
            self.in_memory_bytes -= entry.nbytes
        return True

    def is_spilled(self, key: Any) -> bool:
        return self._entries[key].spilled

    def size_of(self, key: Any) -> int | None:
        """Payload size in bytes, or None if absent — answered from the
        index alone, without touching memory or disk."""
        entry = self._entries.get(key)
        return None if entry is None else entry.nbytes

    def keys(self) -> list[Any]:
        return list(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    @property
    def segment_files(self) -> list[str]:
        """Paths of the live segment files (diagnostics and leak tests)."""
        return list(self._segments)

    @property
    def counters(self) -> dict[str, int]:
        return {
            "spill.bytes_spilled": self.bytes_spilled,
            "spill.reads": self.spill_reads,
            "spill.segments": self.spills,
            "spill.in_memory_bytes": self.in_memory_bytes,
        }

    # -- lifecycle -------------------------------------------------------------

    def _drop_segments(self) -> None:
        # Unlinking is safe while mappings are live (POSIX keeps the
        # pages until unmapped); dropping our references lets refcounting
        # release the maps once no exported view needs them.
        self._maps.clear()
        for path in self._segments:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._segments = []

    def reset(self) -> None:
        """Empty the store for reuse: entries, segment files and counters
        go; the owned spill directory is kept so steady-state reuse (one
        store serving many supersteps or pooled jobs) does not churn
        temp directories."""
        self._drop_segments()
        self._entries.clear()
        self.in_memory_bytes = 0
        self.bytes_spilled = 0
        self.spill_reads = 0
        self.spills = 0

    def cleanup(self) -> None:
        """Delete segment files and the owned temp directory; the store
        is empty (but reusable) afterwards."""
        self._drop_segments()
        self._entries.clear()
        self.in_memory_bytes = 0
        if self._owned_dir is not None:
            try:
                os.rmdir(self._owned_dir)
            except OSError:
                pass
            self._owned_dir = None

"""A-side receive store: chunk accumulation over a SpillStore, sorted merge.

DataMPI is *data-centric* (Section 2.3): intermediate data is partitioned
and stored "in memory or disk" at the receiving worker, and A tasks then
read it locally.  The :class:`ChunkStore` accumulates the sorted chunks
sent by O tasks; payloads live in a :class:`~repro.storage.spill.SpillStore`
whose budget is the spill threshold, so when the buffered total exceeds
it the least-recently-received chunks move to mmap-backed segment files
and stream back lazily during the merge.  The merged iterator is a k-way
merge (``heapq.merge``) over all chunks, yielding records in global key
order when sorting is enabled.

Chunks carry an *origin* — ``(source O rank, per-source sequence)`` — and
the merge always visits chunks in origin order.  ``heapq.merge`` breaks
key ties by iterator position, so without a canonical order the output
for equal keys (and any floating-point reduction over it) would depend on
chunk *arrival* order, which true multiprocess transports cannot
guarantee.  With origins, every transport backend produces byte-identical
output — whether a given chunk happened to spill or not.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.common.kv import KeyValue, decode_stream
from repro.storage.spill import DEFAULT_SPILL_BYTES, SpillStore

#: Chunk origin: (source O rank, per-source sequence number).
Origin = tuple[int, int]


class ChunkStore:
    """Holds received chunks up to a memory budget, spilling LRU to disk."""

    def __init__(self, spill_threshold: int = DEFAULT_SPILL_BYTES,
                 spill_dir: str | None = None) -> None:
        self._spill = SpillStore(budget_bytes=spill_threshold,
                                 spill_dir=spill_dir)
        self._auto_sequence = 0

    def add(self, chunk: bytes | bytearray | memoryview,
            origin: Origin | None = None) -> None:
        """Store one encoded chunk (already key-sorted by the sender).

        ``chunk`` is ``bytes`` or a read-only ``memoryview`` — the shm
        transport's batch path delivers views that slice one shared
        buffer per ring slot, and the store keeps them as-is (spilling
        and decoding both work straight from a view, so the zero-copy
        read path survives end to end).

        ``origin`` identifies where the chunk came from; when omitted an
        insertion-order origin is assigned, so callers that never pass one
        keep arrival order.
        """
        if origin is None:
            origin = (0, self._auto_sequence)
            self._auto_sequence += 1
        self._spill.put(origin, chunk)

    def chunk_iterators(self) -> list[Iterator[KeyValue]]:
        """One decoding iterator per stored chunk, in origin order.

        Spilled chunks decode lazily out of their mapped segment during
        the merge, so a dataset that spilled precisely because it outgrew
        memory is not fully materialized as records; resident chunks are
        decoded eagerly.  Every chunk decodes through a ``memoryview`` so
        record fields are sliced in place instead of copied (leaf values
        still materialise as ordinary objects — no view outlives the
        decode).
        """
        iterators: list[Iterator[KeyValue]] = []
        for origin in sorted(self._spill.keys()):
            view = self._spill.get(origin)
            if self._spill.is_spilled(origin):
                iterators.append(decode_stream(view))
            else:
                iterators.append(iter(list(decode_stream(view))))
        return iterators

    def merged(self, sort: bool = True) -> Iterator[KeyValue]:
        """Iterate all records; in global key order when ``sort`` is true.

        Key ties break by chunk origin, so the stream is identical no
        matter in which order chunks arrived (or which of them spilled).
        """
        iterators = self.chunk_iterators()
        if sort:
            return heapq.merge(*iterators, key=lambda kv: kv.key)
        return (record for iterator in iterators for record in iterator)

    def raw_chunks(self) -> list[bytes]:
        """All encoded chunks in origin order (spilled chunks are read
        back into memory; used by checkpointing, which re-encodes them to
        its own layout)."""
        return [bytes(self._spill.get(origin))
                for origin in sorted(self._spill.keys())]

    # -- accounting ------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Encoded chunk bytes currently resident in memory."""
        return self._spill.in_memory_bytes

    @property
    def spilled_bytes(self) -> int:
        """Cumulative chunk bytes written to segment files (legacy name;
        :attr:`bytes_spilled` is the same number)."""
        return self._spill.bytes_spilled

    @property
    def bytes_spilled(self) -> int:
        return self._spill.bytes_spilled

    @property
    def spill_reads(self) -> int:
        """Chunk reads served from a mapped segment instead of memory."""
        return self._spill.spill_reads

    @property
    def spills(self) -> int:
        """Eviction events (segment files created)."""
        return self._spill.spills

    @property
    def segment_files(self) -> list[str]:
        """Live segment file paths (diagnostics and leak tests)."""
        return self._spill.segment_files

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Empty the store for reuse by the next superstep.

        Iteration and Streaming modes keep one store per A rank alive
        across supersteps; resetting drops chunks, segment files, and
        counters while retaining the owned spill directory so repeated
        windows do not churn temp directories.
        """
        self._spill.reset()
        self._auto_sequence = 0

    def cleanup(self) -> None:
        """Delete segment files and the owned temp directory."""
        self._spill.cleanup()
        self._auto_sequence = 0

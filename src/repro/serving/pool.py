"""A warm rank pool: one O/A world serving a stream of small jobs.

The paper's small-jobs result (fig5) is a statement about *startup
overhead*: DataMPI beats Hadoop exactly where per-job setup dominates
the work.  This module removes that overhead from our own runtime.  A
:class:`WorldPool` forms one bipartite O/A world per transport **once**
— paying fork/rendezvous/ring/socket construction a single time — and
then serves an unbounded stream of job submissions on the live ranks:

* jobs are **registered by name before the world starts** (fork-based
  transports inherit the task callables through the fork, so nothing but
  plain data ever crosses a pipe);
* :meth:`WorldPool.submit` hands the named job an input and returns a
  :class:`JobFuture`; the world runs the exact same superstep pipeline a
  cold :class:`~repro.datampi.job.DataMPIJob` runs, so pooled outputs
  are byte-identical to cold-world runs on every transport;
* between jobs every rank is **recycled** with
  :func:`repro.datampi.modes.recycle_world` — KV-cache pins
  (``o.splits``, ``a.output``) are cleared alongside
  ``ChunkStore.reset()`` so job N's state can never leak into job N+1;
* a failed task fails *its submission's* future, not the pool: the
  failure travels the outcome gather like any mode driver's, and the
  world keeps serving.

Plumbing: the frontend talks to rank 0 over a request pipe and hears
back over a result pipe, both created before the world launches so
forked ranks inherit them.  Rank 0 broadcasts each request to the world
(every rank takes the same branch), the world runs one superstep, rank 0
gathers the outcomes and resolves the submission.

Example::

    from repro.datampi import DataMPIConf, DataMPIJob
    from repro.serving import WorldPool

    job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=2, num_a=2))
    with WorldPool(num_o=2, num_a=2, transport="shm") as pool:
        pool.register("wordcount", job)
        pool.start()
        futures = [pool.submit("wordcount", splits) for splits in batches]
        results = [f.result() for f in futures]
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from typing import Any, Sequence

from repro.common.errors import ConfigError, JobError, MPIError
from repro.datampi.communicator import BipartiteComm
from repro.datampi.job import DataMPIJob, JobResult
from repro.datampi.modes import (
    _dumps,
    _merge_outcomes,
    recycle_world,
    run_superstep,
)
from repro.storage import StorageConfig
from repro.mpi import faultinject
from repro.mpi.comm import Comm
from repro.mpi.transport import WorldHandle, get_transport

#: Default bound on a pool world's whole lifetime, in seconds.  This is
#: the transport ``run`` timeout, so it must cover the pool's service
#: window, not one job.  Finite on purpose: an abandoned pool must not
#: outlive its process group, and ``math.inf`` does not survive every
#: backend's join/poll arithmetic.
DEFAULT_WORLD_TIMEOUT = 3600.0


class JobFuture:
    """Result of one pooled submission, resolved by the pool's dispatcher."""

    def __init__(self, seq: int, name: str):
        self.seq = seq
        self.name = name
        self._done = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the submission finishes; raises its failure."""
        if not self._done.wait(timeout):
            raise JobError(
                f"pooled job {self.name!r} (submission {self.seq}) "
                f"not done after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- dispatcher side -------------------------------------------------------

    def _resolve(self, result: JobResult) -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


class WorldPool:
    """A persistent pre-forked O/A world serving small jobs by name.

    The pool lifecycle is ``register* -> start -> submit* -> close``:
    registration must finish before :meth:`start` because fork-based
    transports capture the task callables at fork time; submissions carry
    only picklable input data.  :meth:`close` (or the context manager
    exit) shuts the world down and reports any in-flight failures.

    Examples:
        >>> from repro.datampi import DataMPIConf, DataMPIJob
        >>> def o_task(ctx, split):
        ...     for word in split:
        ...         ctx.send(word, 1)
        >>> def a_task(ctx):
        ...     return [(key, sum(values)) for key, values in ctx.grouped()]
        >>> job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=2, num_a=1))
        >>> with WorldPool(num_o=2, num_a=1, transport="thread") as pool:
        ...     _ = pool.register("wc", job).start()
        ...     first = pool.run_job("wc", [["a", "b"], ["a"]])
        ...     second = pool.run_job("wc", [["c"], ["c", "c"]])
        >>> sorted(dict(first.merged_outputs()).items())
        [('a', 2), ('b', 1)]
        >>> dict(second.merged_outputs())
        {'c': 3}
    """

    def __init__(
        self,
        num_o: int = 4,
        num_a: int = 4,
        transport: Any = None,
        *,
        world_timeout: float = DEFAULT_WORLD_TIMEOUT,
        storage: StorageConfig | None = None,
    ):
        if num_o < 1 or num_a < 1:
            raise ConfigError(
                f"num_o and num_a must be >= 1 (got {num_o}, {num_a})"
            )
        if world_timeout <= 0:
            raise ConfigError("world_timeout must be positive")
        self.num_o = num_o
        self.num_a = num_a
        self.transport = transport
        self.world_timeout = world_timeout
        #: Budgets for the world's long-lived per-rank cache and chunk
        #: store.  Pool-owned on purpose: registered jobs share one world,
        #: so their confs' storage settings cannot apply per submission.
        self.storage = storage or StorageConfig()
        self._jobs: dict[str, DataMPIJob] = {}
        self._handle: WorldHandle | None = None
        self._dispatcher: threading.Thread | None = None
        self._lock = threading.Lock()
        self._seq = 0  #: guarded-by _lock
        self._pending: dict[int, JobFuture] = {}  #: guarded-by _lock
        self._closed = False
        self._request_send = None  # parent -> rank 0
        self._result_recv = None  # rank 0 -> parent

    # -- registration ----------------------------------------------------------

    def register(self, name: str, job: DataMPIJob) -> "WorldPool":
        """Make ``job`` submittable as ``name``; must precede :meth:`start`.

        The job's O/A shape must match the pool's world shape; its
        per-job shuffle knobs (sort, partitioner, combiner, buffer sizes)
        are honoured per submission, so differently-configured jobs can
        share one world.  The job's own ``transport``/``checkpoint_dir``
        are ignored — the pool owns the world and writes no checkpoints.
        """
        if self._handle is not None:
            raise ConfigError(
                "jobs must be registered before the pool starts (fork-based "
                "transports capture the task callables at fork time)"
            )
        if job.conf.num_o != self.num_o or job.conf.num_a != self.num_a:
            raise ConfigError(
                f"job {name!r} wants a {job.conf.num_o}x{job.conf.num_a} "
                f"world, pool is {self.num_o}x{self.num_a}"
            )
        self._jobs[name] = job
        return self

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorldPool":
        """Form the world (the one-time fork/rendezvous cost) and begin serving."""
        if self._handle is not None:
            raise ConfigError("pool already started")
        if self._closed:
            raise ConfigError("pool is closed")
        if not self._jobs:
            raise ConfigError("register at least one job before start()")
        # Unidirectional pipes, created *before* launch so fork-based
        # backends hand the rank-0 ends to the child across the fork.
        request_recv, request_send = multiprocessing.Pipe(duplex=False)
        result_recv, result_send = multiprocessing.Pipe(duplex=False)
        self._request_send = request_send
        self._result_recv = result_recv

        jobs = dict(self._jobs)
        num_o, num_a = self.num_o, self.num_a
        idle_timeout = self.world_timeout
        storage = self.storage

        def rank_main(comm: Comm):
            return _serve_world(
                comm, jobs, num_o, num_a, request_recv, result_send,
                idle_timeout, storage,
            )

        transport = get_transport(self.transport)
        # Elastic transports (tcp with respawns) re-form the world after a
        # rank death instead of failing it.  The pool keeps serving, but a
        # submission that was in flight when the rank died must fail now —
        # its result is gone with the dead rank.
        listeners = getattr(transport, "restart_listeners", None)
        if listeners is not None:
            listeners.append(self._on_world_restart)
        self._handle = transport.launch(
            num_o + num_a, rank_main, timeout=self.world_timeout
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="worldpool-dispatch", daemon=True
        )
        self._dispatcher.start()
        return self

    def submit(self, name: str, splits: Sequence[Any]) -> JobFuture:
        """Queue one job on the warm world; returns its future.

        Thread-safe: concurrent submitters interleave at the request
        pipe and are resolved by sequence number.
        """
        if self._handle is None:
            raise ConfigError("pool not started")
        if name not in self._jobs:
            raise ConfigError(
                f"unknown job {name!r}; registered: {sorted(self._jobs)}"
            )
        with self._lock:
            if self._closed:
                raise ConfigError("pool is closed")
            if self._handle.done():
                self._fail_pending_locked()
                raise JobError(
                    f"pool world died: {self._world_error()!r}"
                )
            self._seq += 1
            future = JobFuture(self._seq, name)
            self._pending[future.seq] = future
            self._request_send.send(("job", future.seq, name, list(splits)))
        return future

    def run_job(self, name: str, splits: Sequence[Any]) -> JobResult:
        """Submit and wait: the warm-path equivalent of ``DataMPIJob.run``."""
        return self.submit(name, splits).result(timeout=self.world_timeout)

    def close(self) -> None:
        """Stop the world and fail any still-pending submissions."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._request_send is not None and self._handle is not None \
                    and not self._handle.done():
                try:
                    self._request_send.send(("stop",))
                except (OSError, ValueError):
                    pass  # world already tore the pipe down
        if self._handle is not None:
            self._handle.join(self.world_timeout)
        if self._dispatcher is not None:
            self._dispatcher.join(self.world_timeout)
        with self._lock:
            self._fail_pending_locked()

    def __enter__(self) -> "WorldPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- dispatcher ------------------------------------------------------------

    def _on_world_restart(self, generation: int, dead_ranks: list[int]) -> None:
        """Transport callback: the world was re-formed after rank death(s).

        In-flight submissions fail with a cause naming the dead rank(s);
        the pool itself stays up and serves the next submission on the
        recovered world.
        """
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        ranks = ", ".join(str(r) for r in dead_ranks)
        for future in pending:
            future._fail(JobError(
                f"pooled job {future.name!r} (submission {future.seq}) lost: "
                f"rank(s) {ranks} died mid-job; world recovered as "
                f"generation {generation}"
            ))

    def _dispatch_loop(self) -> None:
        """Resolve futures from the result pipe until the world winds down."""
        while True:
            if self._result_recv.poll(0.05):
                try:
                    message = self._result_recv.recv()
                except (EOFError, OSError):
                    break
                if message is None:  # world's goodbye
                    break
                seq, status, payload = message
                with self._lock:
                    future = self._pending.pop(seq, None)
                if future is None:
                    continue
                if status == "ok":
                    future._resolve(JobResult(**payload))
                else:
                    future._fail(JobError(payload))
            elif self._handle.done():
                break
        with self._lock:
            has_pending = bool(self._pending)
        if has_pending and not self._handle.done():
            # The result pipe broke before the launcher finished (a rank
            # died mid-job on a fail-fast transport): wait for the world's
            # own verdict so in-flight futures carry the real cause — which
            # rank died and why — instead of a generic closed error.
            self._handle.join(self.world_timeout)
        with self._lock:
            self._fail_pending_locked()

    def _world_error(self) -> BaseException:
        error = self._handle.error if self._handle is not None else None
        return error if error is not None else MPIError("pool world exited")

    def _fail_pending_locked(self) -> None:
        if not self._pending:
            return
        error = self._world_error() if (
            self._handle is not None and self._handle.done()
            and self._handle.error is not None
        ) else JobError("pool closed with submissions in flight")
        for future in self._pending.values():
            future._fail(error)
        self._pending.clear()


# -- the rank-side serving loop ------------------------------------------------


def _serve_world(
    comm: Comm,
    jobs: dict[str, DataMPIJob],
    num_o: int,
    num_a: int,
    request_recv,
    result_send,
    idle_timeout: float,
    storage: StorageConfig | None = None,
):
    """Every rank's main: serve submissions until a stop request.

    Rank 0 reads requests from the pipe and broadcasts them; every rank
    runs the shared superstep pipeline and is recycled afterwards, so no
    per-job state survives into the next submission.
    """
    bcomm = BipartiteComm(comm, num_o, num_a)
    is_root = comm.rank == 0
    storage = storage or StorageConfig()
    cache = storage.make_cache()
    store = None if bcomm.is_o else storage.make_store()
    superstep = 0
    try:
        while True:
            request = request_recv.recv() if is_root else None
            control = comm.bcast(
                _dumps(request) if is_root else None, root=0,
                timeout=idle_timeout,
            )
            request = pickle.loads(control)
            if request[0] == "stop":
                break
            _kind, seq, name, splits = request
            superstep += 1
            faultinject.fire("pool-submit", rank=comm.rank, superstep=superstep)
            conf = jobs[name].conf
            status, error, output, counters, _scatter = run_superstep(
                bcomm, conf, jobs[name].o_task, jobs[name].a_task,
                splits if is_root else None, store, cache, superstep,
                cache_input=True,
            )
            gathered = comm.gather(_dumps((status, error, output, counters)),
                                   root=0)
            # The leak fix this module exists to carry: clear the cache
            # pins (o.splits, a.output) with the store reset, *before*
            # the next request can reuse them as its input.
            recycle_world(cache, store)
            if is_root:
                outcomes, _gather_bytes, summed, errors = _merge_outcomes(gathered)
                if errors:
                    result_send.send((seq, "err", errors[0][1]))
                else:
                    outputs = [outcomes[r][2] for r in range(num_o, comm.size)]
                    result_send.send(
                        (seq, "ok", {"outputs": outputs, "counters": summed})
                    )
        # Clean stop only: a rank dying out of the loop above must NOT say
        # goodbye — on an elastic transport the world may come back, and
        # the dispatcher has to survive the restart to serve it.
        if is_root:
            try:
                result_send.send(None)
            except (OSError, ValueError):
                pass
    finally:
        if store is not None:
            store.cleanup()
    return None

"""Serving layer: warm rank pools for small-job request latency.

The experiment matrix measures jobs as batch wall-time; this package
measures them the way BigDataBench frames its service workloads — as
requests against a warm system.  :class:`WorldPool` keeps one O/A world
alive and recycles it between submissions, so after warm-up no job pays
fork/rendezvous/ring/socket construction.
"""

from repro.serving.pool import (
    DEFAULT_WORLD_TIMEOUT,
    JobFuture,
    WorldPool,
)

__all__ = [
    "DEFAULT_WORLD_TIMEOUT",
    "JobFuture",
    "WorldPool",
]

"""Multi-job driver — the Mahout-style pipelines of Section 4.6.

Mahout's K-means and Naive Bayes run *chains* of MapReduce jobs (each
K-means iteration is one job; Naive Bayes runs several jobs to build
sparse vectors and then train).  ``JobPipeline`` executes such chains,
threading each job's output into the next job's input and accumulating
per-job history — the structure whose per-job startup overhead DataMPI
amortizes away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.errors import JobError
from repro.hadoop.mapreduce import HadoopResult, MapReduceJob

#: Builds the splits for stage N+1 from stage N's result.
Rechunker = Callable[[HadoopResult], Sequence[Sequence[tuple[Any, Any]]]]


def records_to_splits(records: Sequence[tuple[Any, Any]], num_splits: int) -> list[list[tuple[Any, Any]]]:
    """Partition records round-robin into ``num_splits`` input splits."""
    if num_splits < 1:
        raise JobError(f"num_splits must be >= 1, got {num_splits}")
    splits: list[list[tuple[Any, Any]]] = [[] for _ in range(num_splits)]
    for index, record in enumerate(records):
        splits[index % num_splits].append(record)
    return splits


@dataclass
class JobRecord:
    """One completed job in a pipeline."""

    name: str
    result: HadoopResult


@dataclass
class JobPipeline:
    """Runs a sequence of MapReduce jobs, feeding outputs forward."""

    num_splits: int = 4
    history: list[JobRecord] = field(default_factory=list)

    def run_job(
        self,
        job: MapReduceJob,
        splits: Sequence[Sequence[tuple[Any, Any]]],
    ) -> HadoopResult:
        """Run one job and record it."""
        result = job.run(splits)
        self.history.append(JobRecord(job.conf.job_name, result))
        return result

    def run_chained(
        self,
        job: MapReduceJob,
        previous: HadoopResult,
        rechunk: Rechunker | None = None,
    ) -> HadoopResult:
        """Run a job whose input is the previous job's output."""
        if rechunk is not None:
            splits = rechunk(previous)
        else:
            records = [(kv.key, kv.value) for kv in previous.merged_outputs()]
            splits = records_to_splits(records, self.num_splits)
        return self.run_job(job, splits)

    @property
    def total_counters(self) -> dict[str, int]:
        """Counters summed across every job in the pipeline."""
        totals: dict[str, int] = {}
        for record in self.history:
            for name, value in record.result.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def num_jobs(self) -> int:
        return len(self.history)

"""A functional Hadoop-1.x MapReduce engine.

This is the baseline the paper compares DataMPI against (Hadoop 1.2.1).
The engine reproduces the MapReduce execution structure faithfully —
because that structure is exactly what costs Hadoop performance in the
paper's analysis:

* map tasks buffer output and *spill* sorted runs when the buffer fills
  (``io.sort.mb`` in real Hadoop, ``spill_record_limit`` here);
* spills are merged into one sorted, partitioned map-output file;
* reducers *shuffle* (copy) their partition from every map output, then
  k-way merge and reduce.

Every stage's volume is tracked in counters mirroring Hadoop's, which the
tests use to verify, e.g., that a combiner shrinks shuffle bytes and that
multi-spill merges do extra I/O — the "redundant disk I/O operations"
DataMPI avoids (Section 2.3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ConfigError, JobError
from repro.common.kv import KeyValue, record_size
from repro.datampi.partition import Partitioner, hash_partitioner, validate_partition

Mapper = Callable[[Any, Any], Iterable[tuple[Any, Any]]]
Reducer = Callable[[Any, list[Any]], Iterable[tuple[Any, Any]]]
Combiner = Callable[[Any, list[Any]], Any]


@dataclass(frozen=True)
class HadoopConf:
    """Job configuration (subset of Hadoop's that matters here)."""

    num_reduces: int = 4
    combiner: Combiner | None = None
    partitioner: Partitioner | None = None
    spill_record_limit: int = 100_000  # io.sort.mb stand-in, in records
    job_name: str = "hadoop-job"

    def __post_init__(self) -> None:
        if self.num_reduces < 1:
            raise ConfigError(f"num_reduces must be >= 1, got {self.num_reduces}")
        if self.spill_record_limit < 1:
            raise ConfigError("spill_record_limit must be >= 1")


@dataclass
class HadoopResult:
    """Outputs (per reduce partition, key-sorted) and counters of one job."""

    outputs: list[list[KeyValue]]
    counters: dict[str, int] = field(default_factory=dict)

    def merged_outputs(self) -> list[KeyValue]:
        return [record for partition in self.outputs for record in partition]


class _MapTask:
    """One map task: run the mapper, spill sorted runs, merge to segments."""

    def __init__(self, mapper: Mapper, conf: HadoopConf, counters: dict[str, int]):
        self._mapper = mapper
        self._conf = conf
        self._counters = counters
        self._partitioner = conf.partitioner or hash_partitioner
        self._buffer: list[tuple[int, Any, Any]] = []
        self._spills: list[list[list[tuple[Any, Any]]]] = []

    def run(self, split: Sequence[tuple[Any, Any]]) -> list[list[tuple[Any, Any]]]:
        for key, value in split:
            self._counters["map_input_records"] += 1
            for out_key, out_value in self._mapper(key, value):
                partition = validate_partition(
                    self._partitioner(out_key, self._conf.num_reduces),
                    self._conf.num_reduces,
                )
                self._buffer.append((partition, out_key, out_value))
                self._counters["map_output_records"] += 1
                self._counters["map_output_bytes"] += record_size(out_key, out_value)
                if len(self._buffer) >= self._conf.spill_record_limit:
                    self._spill()
        self._spill()
        return self._merge_spills()

    def _spill(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort(key=lambda item: (item[0], item[1]))
        runs: list[list[tuple[Any, Any]]] = [[] for _ in range(self._conf.num_reduces)]
        for partition, key, value in self._buffer:
            runs[partition].append((key, value))
        if self._conf.combiner is not None:
            runs = [_combine_sorted(run, self._conf.combiner, self._counters) for run in runs]
        self._counters["spilled_records"] += sum(len(run) for run in runs)
        self._spills.append(runs)
        self._buffer = []

    def _merge_spills(self) -> list[list[tuple[Any, Any]]]:
        """Merge all spills into one sorted segment per reduce partition."""
        if not self._spills:
            return [[] for _ in range(self._conf.num_reduces)]
        if len(self._spills) > 1:
            self._counters["merge_passes"] += 1
        segments = []
        for partition in range(self._conf.num_reduces):
            runs = [spill[partition] for spill in self._spills]
            merged = list(heapq.merge(*runs, key=lambda kv: kv[0]))
            if len(self._spills) > 1 and self._conf.combiner is not None:
                merged = _combine_sorted(merged, self._conf.combiner, self._counters)
            segments.append(merged)
        return segments


def _combine_sorted(
    run: list[tuple[Any, Any]], combiner: Combiner, counters: dict[str, int]
) -> list[tuple[Any, Any]]:
    """Apply a combiner to a key-sorted run."""
    combined: list[tuple[Any, Any]] = []
    index = 0
    while index < len(run):
        key = run[index][0]
        values = []
        while index < len(run) and run[index][0] == key:
            values.append(run[index][1])
            index += 1
        counters["combine_input_records"] += len(values)
        value = values[0] if len(values) == 1 else combiner(key, values)
        combined.append((key, value))
        counters["combine_output_records"] += 1
    return combined


class MapReduceJob:
    """One MapReduce job: ``run(splits)`` executes map, shuffle, reduce."""

    def __init__(self, mapper: Mapper, reducer: Reducer, conf: HadoopConf | None = None):
        self.mapper = mapper
        self.reducer = reducer
        self.conf = conf or HadoopConf()

    def run(self, splits: Sequence[Sequence[tuple[Any, Any]]]) -> HadoopResult:
        counters: dict[str, int] = {
            name: 0
            for name in (
                "map_input_records", "map_output_records", "map_output_bytes",
                "spilled_records", "merge_passes",
                "combine_input_records", "combine_output_records",
                "shuffle_bytes", "reduce_input_records", "reduce_input_groups",
                "reduce_output_records",
            )
        }
        # -- map phase ---------------------------------------------------------
        map_outputs = [
            _MapTask(self.mapper, self.conf, counters).run(split) for split in splits
        ]
        # -- shuffle + reduce phase ---------------------------------------------
        outputs: list[list[KeyValue]] = []
        for partition in range(self.conf.num_reduces):
            segments = [segments[partition] for segments in map_outputs]
            counters["shuffle_bytes"] += sum(
                record_size(key, value) for segment in segments for key, value in segment
            )
            merged = heapq.merge(*segments, key=lambda kv: kv[0])
            outputs.append(self._reduce_partition(merged, counters))
        return HadoopResult(outputs=outputs, counters=counters)

    def _reduce_partition(self, merged, counters: dict[str, int]) -> list[KeyValue]:
        results: list[KeyValue] = []
        current_key: Any = None
        current_values: list[Any] = []

        def flush() -> None:
            if not current_values:
                return
            counters["reduce_input_groups"] += 1
            produced = self.reducer(current_key, current_values)
            if produced is None:
                raise JobError(
                    f"reducer returned None for key {current_key!r}; "
                    "reducers must return an iterable of (key, value)"
                )
            for out_key, out_value in produced:
                results.append(KeyValue(out_key, out_value))
                counters["reduce_output_records"] += 1

        for key, value in merged:
            counters["reduce_input_records"] += 1
            if current_values and key == current_key:
                current_values.append(value)
            else:
                flush()
                current_key, current_values = key, [value]
        flush()
        return results

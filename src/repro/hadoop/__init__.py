"""Functional Hadoop-1.x MapReduce engine (baseline 1 of the paper)."""

from repro.hadoop.jobtracker import JobPipeline, JobRecord, records_to_splits
from repro.hadoop.mapreduce import (
    HadoopConf,
    HadoopResult,
    MapReduceJob,
)

__all__ = [
    "JobPipeline",
    "JobRecord",
    "records_to_splits",
    "HadoopConf",
    "HadoopResult",
    "MapReduceJob",
]

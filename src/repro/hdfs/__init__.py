"""HDFS model: namenode placement, simulated data path, DFSIO benchmark."""

from repro.hdfs.dfsio import DFSIOResult, best_block_size, block_size_sweep, run_dfsio
from repro.hdfs.filesystem import HDFS, Split
from repro.hdfs.namenode import Block, FileMeta, NameNode, split_into_blocks

__all__ = [
    "DFSIOResult",
    "best_block_size",
    "block_size_sweep",
    "run_dfsio",
    "HDFS",
    "Split",
    "Block",
    "FileMeta",
    "NameNode",
    "split_into_blocks",
]

"""DFSIO — the HDFS-level benchmark used to tune block size (Figure 2a).

The paper runs Hadoop's TestDFSIO with input sizes 5–20 GB and block sizes
64–512 MB and picks 256 MB, where throughput peaks.  This module rebuilds
DFSIO on the simulated cluster: one map task per file, each streaming its
file block-by-block through the 3-replica write pipeline (or reading it
back, for the read test).

The reported metric matches TestDFSIO's "Throughput mb/sec":
``total_bytes / sum(per-map I/O seconds)``.

Why the curve peaks at 256 MB:

* small blocks pay a fixed per-block cost (namenode RPC + pipeline setup),
  so 64 MB blocks waste a larger fraction of time on setup;
* blocks larger than 256 MB push the datanodes past the dirty-page
  write-back threshold and the stream throttles
  (:func:`writeback_efficiency`), so 512 MB loses part of the gain.

Both effects are calibrated constants documented here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import SimCluster
from repro.cluster.hardware import ClusterSpec
from repro.common.config import FrameworkConf
from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.hdfs.filesystem import HDFS
from repro.hdfs.namenode import split_into_blocks

#: Fixed cost per block: namenode RPC, pipeline setup, final ack (seconds).
BLOCK_SETUP_SEC = 0.9

#: Map task launch cost before streaming starts (JVM + HDFS client init).
MAP_STARTUP_SEC = 1.5

#: A single DFSIO streamer (checksumming client) tops out around this rate.
STREAM_CAP_BPS = 30.0 * MB

#: Block size above which datanode write-back throttling begins.
WRITEBACK_KNEE = 256 * MB


def writeback_efficiency(block_size: int) -> float:
    """Write-path efficiency factor for a given block size (1.0 at <=256 MB,
    linearly declining to 0.80 at 512 MB)."""
    if block_size <= WRITEBACK_KNEE:
        return 1.0
    excess = (block_size - WRITEBACK_KNEE) / WRITEBACK_KNEE
    return max(0.72, 1.0 - 0.20 * excess)


@dataclass(frozen=True)
class DFSIOResult:
    """Outcome of one DFSIO run."""

    mode: str
    block_size: int
    total_bytes: int
    num_files: int
    throughput_mbps: float  # TestDFSIO metric: total MB / sum of map seconds
    makespan_sec: float

    @property
    def aggregate_mbps(self) -> float:
        return self.total_bytes / MB / self.makespan_sec


def run_dfsio(
    block_size: int,
    total_bytes: int,
    mode: str = "write",
    num_files: int = 8,
    spec: ClusterSpec | None = None,
    seed: int = 0,
) -> DFSIOResult:
    """Run the DFSIO write or read test on the simulated testbed."""
    if mode not in ("write", "read"):
        raise ConfigError(f"mode must be 'write' or 'read', got {mode!r}")
    if num_files < 1:
        raise ConfigError(f"num_files must be >= 1, got {num_files}")
    cluster = SimCluster(spec)
    conf = FrameworkConf.paper_defaults().with_block_size(block_size)
    hdfs = HDFS(cluster, conf, seed=seed)
    file_size = total_bytes // num_files
    io_times: list[float] = []
    efficiency = writeback_efficiency(block_size)

    def writer(task_id: int):
        node = cluster.node(task_id % len(cluster.nodes))
        yield cluster.engine.timeout(MAP_STARTUP_SEC)
        start = cluster.engine.now
        meta = hdfs.namenode.create_file(
            f"/dfsio/io_data/test_io_{task_id}", file_size, block_size, node.node_id
        )
        for block in meta.blocks:
            yield cluster.engine.timeout(BLOCK_SETUP_SEC)
            charged = block.size / efficiency
            legs = [node.write(charged, "dfsio.write")]
            chain = [cluster.node(n) for n in block.replicas[1:]]
            previous = node
            for replica in chain:
                legs.append(
                    cluster.switch.transfer(previous, replica, block.size, "dfsio.pipeline")
                )
                legs.append(replica.write(charged, "dfsio.write"))
                previous = replica
            # The client stream is checksum-limited, and write-back
            # throttling on oversized blocks stalls the streamer itself.
            legs.append(
                node.compute(block.size / (STREAM_CAP_BPS * efficiency), threads=1.0)
            )
            yield cluster.engine.all_of(legs)
        io_times.append(cluster.engine.now - start)

    def reader(task_id: int):
        node = cluster.node(task_id % len(cluster.nodes))
        yield cluster.engine.timeout(MAP_STARTUP_SEC)
        start = cluster.engine.now
        path = f"/dfsio/io_data/test_io_{task_id}"
        for split in hdfs.splits(path):
            yield cluster.engine.timeout(BLOCK_SETUP_SEC * 0.5)  # no pipeline on read
            legs = [hdfs.read_split(node, split)]
            legs.append(node.compute(split.size / STREAM_CAP_BPS, threads=1.0))
            yield cluster.engine.all_of(legs)
        io_times.append(cluster.engine.now - start)

    if mode == "read":
        # Read test needs the files to exist; ingest without charging I/O.
        for task_id in range(num_files):
            hdfs.namenode.create_file(
                f"/dfsio/io_data/test_io_{task_id}", file_size, block_size,
                task_id % len(cluster.nodes),
            )
        for task_id in range(num_files):
            cluster.engine.process(reader(task_id), f"dfsio-read-{task_id}")
    else:
        for task_id in range(num_files):
            cluster.engine.process(writer(task_id), f"dfsio-write-{task_id}")

    makespan = cluster.run()
    total_io_time = sum(io_times)
    throughput = (file_size * num_files / MB) / total_io_time if total_io_time else 0.0
    return DFSIOResult(
        mode=mode,
        block_size=block_size,
        total_bytes=file_size * num_files,
        num_files=num_files,
        throughput_mbps=throughput,
        makespan_sec=makespan,
    )


def block_size_sweep(
    block_sizes: list[int],
    total_sizes: list[int],
    mode: str = "write",
    seed: int = 0,
) -> dict[int, dict[int, DFSIOResult]]:
    """The Figure 2(a) sweep: results[total_bytes][block_size]."""
    results: dict[int, dict[int, DFSIOResult]] = {}
    for total in total_sizes:
        results[total] = {}
        for block_size in block_sizes:
            results[total][block_size] = run_dfsio(
                block_size, total, mode=mode, seed=seed
            )
    return results


def best_block_size(results: dict[int, dict[int, DFSIOResult]]) -> int:
    """Block size with the highest mean throughput across input sizes."""
    block_sizes = next(iter(results.values())).keys()
    def mean_throughput(block_size: int) -> float:
        values = [results[total][block_size].throughput_mbps for total in results]
        return sum(values) / len(values)
    return max(block_sizes, key=mean_throughput)

"""HDFS data-path simulation: write pipelines, local/remote reads, splits.

These helpers charge the right disks and NICs of a
:class:`~repro.cluster.SimCluster` for HDFS operations; the framework
timeline models build on them.  The write path models the standard HDFS
replication pipeline: the writer streams a block to its local disk while
forwarding to the second replica, which forwards to the third — all three
disk writes and both network hops progress concurrently, so a block write
completes when the slowest leg drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import SimCluster
from repro.cluster.node import SimNode
from repro.common.config import FrameworkConf
from repro.hdfs.namenode import Block, FileMeta, NameNode
from repro.simulate.engine import Event


@dataclass(frozen=True)
class Split:
    """An input split handed to one map/O task (block-aligned, as the paper
    configures: one split per 256 MB block)."""

    path: str
    block: Block

    @property
    def size(self) -> int:
        return self.block.size

    @property
    def preferred_nodes(self) -> tuple[int, ...]:
        return self.block.replicas


class HDFS:
    """HDFS facade bound to a simulated cluster."""

    def __init__(self, cluster: SimCluster, conf: FrameworkConf | None = None, seed: int = 0):
        self.cluster = cluster
        self.conf = conf or FrameworkConf.paper_defaults()
        self.namenode = NameNode(
            num_nodes=len(cluster.nodes),
            replication=self.conf.replication,
            seed=seed,
        )

    # -- metadata -------------------------------------------------------------

    def ingest_file(self, path: str, size: int, writer_node: int | None = None) -> FileMeta:
        """Register a pre-existing (generated) file without charging I/O."""
        return self.namenode.create_file(path, size, self.conf.block_size, writer_node)

    def splits(self, path: str) -> list[Split]:
        """Input splits for a file — one per block."""
        meta = self.namenode.locate(path)
        return [Split(path, block) for block in meta.blocks]

    # -- simulated data path ----------------------------------------------------

    def write_block(self, writer: SimNode, block: Block) -> Event:
        """Charge the replication pipeline for one block write.

        Returns an event that triggers when every replica is durable.
        """
        legs: list[Event] = []
        chain = [self.cluster.node(node_id) for node_id in block.replicas]
        if writer.node_id != block.replicas[0]:
            # Writer is not a replica holder: first hop is over the network.
            legs.append(self.cluster.switch.transfer(writer, chain[0], block.size, "hdfs.pipeline"))
        for hop, node in enumerate(chain):
            legs.append(node.write(block.size, f"hdfs.write.b{block.block_id}"))
            if hop + 1 < len(chain):
                legs.append(
                    self.cluster.switch.transfer(node, chain[hop + 1], block.size, "hdfs.pipeline")
                )
        return self.cluster.engine.all_of(legs)

    def write_file(self, path: str, size: int, writer: SimNode):
        """Simulation process: create and write a file block by block.

        Yields once per block pipeline (sequential block writes, as a single
        ``DFSOutputStream`` does); returns the file metadata.
        """
        meta = self.namenode.create_file(path, size, self.conf.block_size, writer.node_id)
        for block in meta.blocks:
            yield self.write_block(writer, block)
        return meta

    def read_split(self, reader: SimNode, split: Split) -> Event:
        """Charge a split read: local disk if a replica is local, otherwise
        a remote read (source disk + network + no local spill)."""
        if split.block.is_local_to(reader.node_id):
            return reader.read(split.size, f"hdfs.read.b{split.block.block_id}")
        source = self.cluster.node(split.block.replicas[0])
        disk = source.read(split.size, f"hdfs.read.b{split.block.block_id}")
        net = self.cluster.switch.transfer(source, reader, split.size, "hdfs.remote_read")
        return self.cluster.engine.all_of([disk, net])

    def locality_fraction(self, path: str, assignment: dict[int, int]) -> float:
        """Fraction of blocks read locally under ``assignment``
        (block_id -> reader node)."""
        meta = self.namenode.locate(path)
        if not meta.blocks:
            return 1.0
        local = sum(
            1
            for block in meta.blocks
            if block.is_local_to(assignment.get(block.block_id, -1))
        )
        return local / len(meta.blocks)

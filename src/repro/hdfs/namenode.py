"""HDFS metadata: files, blocks, and replica placement.

The paper's cluster stores all workload data in HDFS with a 256 MB block
size and 3 replicas (Section 4.2).  The namenode here implements the
placement policy that matters for the evaluation's behaviour:

* the first replica goes to the writer node (or round-robin across the
  cluster for balanced generated input);
* remaining replicas go to distinct, randomly chosen other nodes (the
  testbed is a single rack, so there is no rack-awareness to model).

Block placement determines task locality, which the paper calls out as a
key effect ("the O/Map tasks read the HDFS data locally and do not have
network communication", Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import HDFSError
from repro.common.rng import substream


@dataclass(frozen=True)
class Block:
    """One HDFS block and its replica locations (node ids)."""

    block_id: int
    size: int
    replicas: tuple[int, ...]

    def is_local_to(self, node_id: int) -> bool:
        return node_id in self.replicas


@dataclass(frozen=True)
class FileMeta:
    """Metadata of one HDFS file."""

    path: str
    size: int
    block_size: int
    blocks: tuple[Block, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


def split_into_blocks(size: int, block_size: int) -> list[int]:
    """Block sizes for a file: full blocks plus a possibly-short tail.

    >>> split_into_blocks(10, 4)
    [4, 4, 2]
    """
    if size < 0:
        raise HDFSError(f"negative file size {size}")
    if block_size <= 0:
        raise HDFSError(f"block size must be positive, got {block_size}")
    full, tail = divmod(size, block_size)
    sizes = [block_size] * full
    if tail:
        sizes.append(tail)
    return sizes


class NameNode:
    """Tracks files and places block replicas across the cluster."""

    def __init__(self, num_nodes: int, replication: int = 3, seed: int = 0):
        if num_nodes < 1:
            raise HDFSError(f"cluster needs >= 1 datanode, got {num_nodes}")
        if replication < 1:
            raise HDFSError(f"replication must be >= 1, got {replication}")
        self.num_nodes = num_nodes
        self.replication = min(replication, num_nodes)
        self._files: dict[str, FileMeta] = {}
        self._rng = substream(seed, "namenode")
        self._next_block_id = 0
        self._rr_cursor = 0
        self._load = [0] * num_nodes  # replicas placed per node

    # -- file operations ------------------------------------------------------

    def create_file(
        self, path: str, size: int, block_size: int, writer_node: int | None = None
    ) -> FileMeta:
        """Create a file and place its blocks; returns the metadata.

        ``writer_node=None`` distributes primary replicas round-robin, which
        models data produced by a balanced generator job.
        """
        if path in self._files:
            raise HDFSError(f"file exists: {path}")
        blocks = []
        for block_size_i in split_into_blocks(size, block_size):
            if writer_node is None:
                primary = self._rr_cursor % self.num_nodes
                self._rr_cursor += 1
            else:
                primary = writer_node % self.num_nodes
            blocks.append(Block(self._next_block_id, block_size_i, self._place(primary)))
            self._next_block_id += 1
        meta = FileMeta(path, size, block_size, tuple(blocks))
        self._files[path] = meta
        return meta

    def _place(self, primary: int) -> tuple[int, ...]:
        """Choose replica nodes: primary first, then the least-loaded other
        nodes (random tie-breaking) — HDFS's load-aware target chooser."""
        others = [n for n in range(self.num_nodes) if n != primary]
        self._rng.shuffle(others)  # random tie-break among equal loads
        others.sort(key=lambda n: self._load[n])
        chosen = (primary, *others[: self.replication - 1])
        for node in chosen:
            self._load[node] += 1
        return chosen

    def locate(self, path: str) -> FileMeta:
        if path not in self._files:
            raise HDFSError(f"no such file: {path}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise HDFSError(f"no such file: {path}")
        del self._files[path]

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # -- statistics -----------------------------------------------------------

    @property
    def total_logical_bytes(self) -> int:
        """Bytes stored ignoring replication."""
        return sum(meta.size for meta in self._files.values())

    @property
    def total_physical_bytes(self) -> int:
        """Bytes stored including all replicas."""
        return sum(
            block.size * len(block.replicas)
            for meta in self._files.values()
            for block in meta.blocks
        )

    def bytes_on_node(self, node_id: int) -> int:
        """Physical bytes any node holds — used to check placement balance."""
        return sum(
            block.size
            for meta in self._files.values()
            for block in meta.blocks
            if node_id in block.replicas
        )

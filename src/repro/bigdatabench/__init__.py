"""BigDataBench substrate: seed models, text generator, converters (Table 1)."""

from repro.bigdatabench.seedmodels import (
    SeedModel,
    all_amazon_models,
    amazon_model,
    lda_wiki1w,
    load_seed_model,
)
from repro.bigdatabench.textgen import TextGenerator, average_line_bytes
from repro.bigdatabench.toseqfile import (
    SequenceFile,
    measure_compression_ratio,
    to_sequence_file,
)
from repro.bigdatabench.vectors import (
    SparseVector,
    generate_kmeans_vectors,
    mean_vector,
    term_id,
    vectorize,
)
from repro.bigdatabench.workloads_table import TABLE1, WorkloadInfo, table1_rows

__all__ = [
    "SeedModel",
    "all_amazon_models",
    "amazon_model",
    "lda_wiki1w",
    "load_seed_model",
    "TextGenerator",
    "average_line_bytes",
    "SequenceFile",
    "measure_compression_ratio",
    "to_sequence_file",
    "SparseVector",
    "generate_kmeans_vectors",
    "mean_vector",
    "term_id",
    "vectorize",
    "TABLE1",
    "WorkloadInfo",
    "table1_rows",
]

"""Text Generator — BigDataBench's scalable text data generator.

"BigDataBench provides a data generator for benchmarks based on real life
data sets ... Users can generate synthetic data by scaling the seed
models while keeping the characteristics of data" (Section 2.4).  The
generator produces lines of Zipf-sampled words from a seed model, either
by line count or until a target byte volume is reached, deterministically
for a given seed.
"""

from __future__ import annotations

from typing import Iterator

from repro.bigdatabench.seedmodels import SeedModel, lda_wiki1w
from repro.common.errors import WorkloadError
from repro.common.rng import substream


class TextGenerator:
    """Generates text lines / documents from a seed model."""

    def __init__(self, model: SeedModel | None = None, seed: int = 0,
                 words_per_line: tuple[int, int] = (6, 12)):
        low, high = words_per_line
        if low < 1 or high < low:
            raise WorkloadError(f"invalid words_per_line range {words_per_line}")
        self.model = model or lda_wiki1w()
        self.seed = seed
        self.words_per_line = words_per_line

    def lines(self, num_lines: int, stream: int = 0) -> list[str]:
        """Generate exactly ``num_lines`` lines."""
        if num_lines < 0:
            raise WorkloadError(f"negative line count {num_lines}")
        rng = substream(self.seed, "textgen", self.model.name, stream)
        low, high = self.words_per_line
        return [
            self.model.sample_sentence(rng, rng.randint(low, high))
            for _ in range(num_lines)
        ]

    def lines_of_bytes(self, target_bytes: int, stream: int = 0) -> list[str]:
        """Generate lines totalling at least ``target_bytes`` (UTF-8 +
        newline accounting), stopping at the first line that crosses it."""
        if target_bytes < 0:
            raise WorkloadError(f"negative byte target {target_bytes}")
        rng = substream(self.seed, "textgen", self.model.name, stream)
        low, high = self.words_per_line
        produced: list[str] = []
        total = 0
        while total < target_bytes:
            line = self.model.sample_sentence(rng, rng.randint(low, high))
            produced.append(line)
            total += len(line.encode("utf-8")) + 1
        return produced

    def documents(self, num_docs: int, lines_per_doc: int, stream: int = 0) -> Iterator[list[str]]:
        """Generate documents (lists of lines) — Naive Bayes input shape."""
        if num_docs < 0 or lines_per_doc < 1:
            raise WorkloadError(
                f"invalid document shape ({num_docs} docs x {lines_per_doc} lines)"
            )
        for doc_index in range(num_docs):
            rng = substream(self.seed, "docgen", self.model.name, stream, doc_index)
            low, high = self.words_per_line
            yield [
                self.model.sample_sentence(rng, rng.randint(low, high))
                for _ in range(lines_per_doc)
            ]


def average_line_bytes(model: SeedModel | None = None, sample_lines: int = 200,
                       seed: int = 0) -> float:
    """Estimated bytes per generated line (used by the performance models
    to convert data volumes to record counts)."""
    generator = TextGenerator(model, seed=seed)
    lines = generator.lines(sample_lines)
    return sum(len(line.encode("utf-8")) + 1 for line in lines) / max(1, len(lines))

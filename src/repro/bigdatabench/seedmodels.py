"""Seed models for the BigDataBench text generator.

BigDataBench generates synthetic data by scaling *seed models* trained on
real corpora: ``lda_wiki1w`` (wikipedia entries) for the micro-benchmarks
and ``amazon1``–``amazon5`` (amazon movie review categories) for the
application benchmarks (Sections 4.3 and 4.6).  The original models are
LDA topic models over proprietary corpora; this reproduction substitutes
Zipf-distributed vocabularies with per-model characteristic words, which
preserves the properties the paper's analysis relies on:

* a heavily skewed word distribution (small effective dictionary, so
  WordCount/Grep produce little intermediate data — Section 4.4);
* five mutually distinguishable category models, so Naive Bayes has a
  learnable classification signal and K-means has real cluster structure.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass

from repro.common.errors import WorkloadError
from repro.common.rng import substream

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
]


def _make_vocabulary(size: int, prefix: str, seed: int) -> list[str]:
    """Deterministic pronounceable vocabulary with a per-model prefix."""
    rng = substream(seed, "vocab", prefix)
    words = []
    seen = set()
    for count in itertools.count():
        syllables = rng.randint(2, 4)
        word = prefix + "".join(rng.choice(_SYLLABLES) for _ in range(syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
        if len(words) == size:
            return words
        if count > size * 50:  # pragma: no cover - defensive
            raise WorkloadError(f"could not build vocabulary of {size} words")
    raise AssertionError("unreachable")


@dataclass
class SeedModel:
    """A scalable word-distribution model (Zipf over a fixed vocabulary)."""

    name: str
    vocabulary: list[str]
    zipf_exponent: float = 1.05

    def __post_init__(self) -> None:
        if not self.vocabulary:
            raise WorkloadError(f"seed model {self.name!r} has empty vocabulary")
        weights = [1.0 / (rank + 1) ** self.zipf_exponent
                   for rank in range(len(self.vocabulary))]
        total = math.fsum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    @property
    def vocabulary_size(self) -> int:
        return len(self.vocabulary)

    def sample_word(self, rng: random.Random) -> str:
        """Draw one word from the Zipf distribution."""
        return self.vocabulary[bisect.bisect_left(self._cumulative, rng.random())]

    def sample_sentence(self, rng: random.Random, num_words: int) -> str:
        return " ".join(self.sample_word(rng) for _ in range(num_words))

    def top_words(self, n: int) -> list[str]:
        """The n highest-probability words (Zipf head)."""
        return self.vocabulary[:n]


# -- the models the paper uses -------------------------------------------------

_MODEL_SEED = 0x5EED


def lda_wiki1w() -> SeedModel:
    """The wikipedia seed model used for Sort / WordCount / Grep input."""
    return SeedModel("lda_wiki1w", _make_vocabulary(10_000, "", _MODEL_SEED))


def amazon_model(index: int) -> SeedModel:
    """``amazon1`` .. ``amazon5``: category models for K-means / Naive Bayes.

    Each category mixes a shared common vocabulary (function words appear
    in every document) with a category-specific vocabulary, giving the
    five classes overlapping but separable distributions.
    """
    if not 1 <= index <= 5:
        raise WorkloadError(f"amazon model index must be 1..5, got {index}")
    shared = _make_vocabulary(300, "", _MODEL_SEED + 1)
    specific = _make_vocabulary(1_500, f"c{index}", _MODEL_SEED + 1 + index)
    # Interleave with specific words dominating the Zipf head (3:1), so the
    # categories stay separable while sharing common function words.
    vocabulary = []
    shared_iter = iter(shared)
    for position, word in enumerate(specific):
        vocabulary.append(word)
        if position % 3 == 2:
            vocabulary.extend(itertools.islice(shared_iter, 1))
    vocabulary.extend(shared_iter)
    return SeedModel(f"amazon{index}", vocabulary)


def all_amazon_models() -> list[SeedModel]:
    return [amazon_model(index) for index in range(1, 6)]


_REGISTRY = {"lda_wiki1w": lda_wiki1w}
_REGISTRY.update({f"amazon{i}": (lambda i=i: amazon_model(i)) for i in range(1, 6)})


def load_seed_model(name: str) -> SeedModel:
    """Look a model up by its BigDataBench name."""
    if name not in _REGISTRY:
        raise WorkloadError(
            f"unknown seed model {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]()

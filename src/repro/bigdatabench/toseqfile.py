"""ToSeqFile — convert text data to compressed sequence files.

Section 4.3: "The input of Normal Sort is sequence data, which is
converted from text data by ToSeqFile of BigDataBench.  ToSeqFile runs a
MapReduce job and copies each line of the input data to the key and
value, then compresses the output with GzipCodec."

The functional converter does exactly that (key = value = line) and
compresses with zlib (the same DEFLATE algorithm as GzipCodec), so the
compression ratio used by the Normal Sort performance model is *measured*
from real generated text rather than assumed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.common.kv import encode_stream


@dataclass
class SequenceFile:
    """An in-memory compressed sequence file."""

    compressed: bytes
    raw_bytes: int
    num_records: int

    @property
    def compressed_bytes(self) -> int:
        return len(self.compressed)

    @property
    def compression_ratio(self) -> float:
        """raw / compressed — >1 for real text."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    def records(self) -> list[tuple[str, str]]:
        """Decompress and decode back to (key, value) line pairs."""
        from repro.common.kv import decode_stream

        return [(kv.key, kv.value) for kv in decode_stream(zlib.decompress(self.compressed))]


def to_sequence_file(lines: Sequence[str], level: int = 6) -> SequenceFile:
    """The ToSeqFile conversion: each line becomes key *and* value, gzipped."""
    encoded = encode_stream((line, line) for line in lines)
    return SequenceFile(
        compressed=zlib.compress(encoded, level),
        raw_bytes=len(encoded),
        num_records=len(lines),
    )


def measure_compression_ratio(lines: Sequence[str]) -> float:
    """Compression ratio of ToSeqFile output for the given text sample."""
    return to_sequence_file(lines).compression_ratio

"""Sparse vectors and genData_Kmeans — the K-means input pipeline.

Section 4.6: "Using genData_Kmeans of BigDataBench, text files are
converted to sequence files from directory, then to the sparse vectors
which are the input data of training clusters."  Documents are sampled
from the five amazon seed models, tokenized, and turned into normalized
term-frequency sparse vectors (Mahout's ``seq2sparse`` essence).  Because
the five models have separable vocabularies, the vectors carry genuine
cluster structure for K-means to find.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.bigdatabench.seedmodels import all_amazon_models
from repro.common.errors import WorkloadError
from repro.common.rng import substream


@dataclass
class SparseVector:
    """A sparse feature vector keyed by term id."""

    weights: dict[int, float] = field(default_factory=dict)

    def norm(self) -> float:
        return math.sqrt(math.fsum(w * w for w in self.weights.values()))

    def normalized(self) -> "SparseVector":
        norm = self.norm()
        if norm == 0.0:
            return SparseVector({})
        return SparseVector({dim: w / norm for dim, w in self.weights.items()})

    def squared_distance(self, other: "SparseVector") -> float:
        """Squared Euclidean distance to another sparse vector."""
        total = 0.0
        for dim, weight in self.weights.items():
            diff = weight - other.weights.get(dim, 0.0)
            total += diff * diff
        for dim, weight in other.weights.items():
            if dim not in self.weights:
                total += weight * weight
        return total

    def add_scaled(self, other: "SparseVector", scale: float = 1.0) -> None:
        """In-place accumulate (used to build centroid sums)."""
        for dim, weight in other.weights.items():
            self.weights[dim] = self.weights.get(dim, 0.0) + weight * scale

    def scaled(self, scale: float) -> "SparseVector":
        return SparseVector({dim: w * scale for dim, w in self.weights.items()})

    @property
    def num_nonzero(self) -> int:
        return len(self.weights)


def mean_vector(vectors: Sequence[SparseVector]) -> SparseVector:
    """Arithmetic mean of sparse vectors (a K-means centroid update)."""
    if not vectors:
        raise WorkloadError("mean of zero vectors")
    total = SparseVector({})
    for vector in vectors:
        total.add_scaled(vector)
    return total.scaled(1.0 / len(vectors))


def term_id(word: str, dimensions: int = 1 << 16) -> int:
    """Stable hashed term id (Mahout's hashed encoder analog)."""
    import zlib

    return zlib.crc32(word.encode("utf-8")) % dimensions


def vectorize(tokens: Iterable[str], dimensions: int = 1 << 16) -> SparseVector:
    """Normalized term-frequency vector of a token stream."""
    counts: dict[int, float] = {}
    for token in tokens:
        dim = term_id(token, dimensions)
        counts[dim] = counts.get(dim, 0.0) + 1.0
    return SparseVector(counts).normalized()


def generate_kmeans_vectors(
    num_vectors: int,
    words_per_doc: int = 40,
    seed: int = 0,
) -> tuple[list[SparseVector], list[int]]:
    """genData_Kmeans: sparse vectors plus their true category labels.

    Documents rotate over the five amazon seed models, so labels are
    balanced; the labels are returned only for evaluation (clustering
    quality tests) and are not visible to the algorithms.
    """
    if num_vectors < 1:
        raise WorkloadError(f"need >= 1 vector, got {num_vectors}")
    models = all_amazon_models()
    vectors: list[SparseVector] = []
    labels: list[int] = []
    for index in range(num_vectors):
        label = index % len(models)
        rng = substream(seed, "kmeansgen", index)
        text = models[label].sample_sentence(rng, words_per_doc)
        vectors.append(vectorize(text.split()))
        labels.append(label)
    return vectors, labels

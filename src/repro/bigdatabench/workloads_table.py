"""Table 1 of the paper: the five representative workloads."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadInfo:
    """One row of Table 1."""

    number: int
    name: str
    workload_type: str


TABLE1 = [
    WorkloadInfo(1, "Sort", "Micro-benchmark"),
    WorkloadInfo(2, "WordCount", "Micro-benchmark"),
    WorkloadInfo(3, "Grep", "Micro-benchmark"),
    WorkloadInfo(4, "Naive Bayes", "Social Network"),
    WorkloadInfo(5, "K-means", "E-commerce"),
]


def table1_rows() -> list[tuple[str, str, str]]:
    """Rows for the Table 1 benchmark target."""
    return [(str(info.number), info.name, info.workload_type) for info in TABLE1]

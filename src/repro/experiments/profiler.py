"""Resource profiling for matrix cells: CPU/RSS samples + exact byte counters.

Section 5 of the paper explains DataMPI's wins with utilization traces:
CPU, memory, and network sampled over each run.  This profiler is the
reproduction's counterpart, with one deliberate split:

* **Sampled series** (best-effort): a daemon thread records process CPU
  time and resident-set size at a fixed interval while the cell runs.
  These vary run to run like the paper's `dstat` traces did.
* **Counters** (exact): byte counters the engines themselves maintain —
  the per-transport chunk bytes, the mode-level scatter/gather/state
  bytes, the KV-cache hit bytes.  These are computed from the payloads
  that actually moved, so on a deterministic transport (``inline``) two
  runs of the same cell produce *identical* counter deltas; the sampled
  series never feeds a number the reports compare across engines.

The profiler is **worker-safe**: it only reads this process's own clock,
CPU time and ``/proc/self`` RSS, so a matrix cell running inside a pool
worker profiles that worker exactly as a serial cell profiles the main
process.  :meth:`ResourceUsage.to_dict`/:meth:`ResourceUsage.from_dict`
round-trip the trace across the process boundary.

Usage::

    profiler = ResourceProfiler(interval_sec=0.02)
    with profiler:
        result = run_cell()
    usage = profiler.usage()     # ResourceUsage
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field


def _cpu_seconds() -> float:
    """Process CPU time (user + system), in seconds."""
    times = os.times()
    return times.user + times.system


def _rss_kb() -> int:
    """Resident set size in KiB; 0 where /proc is unavailable."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource
        import sys

        peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        # Linux reports ru_maxrss in KiB, the BSDs/macOS in bytes.
        return peak // 1024 if sys.platform == "darwin" else peak
    except Exception:  # pragma: no cover - exotic platforms
        return 0


@dataclass
class ResourceUsage:
    """What one profiled section consumed."""

    wall_sec: float
    cpu_sec: float
    max_rss_kb: int
    #: (elapsed seconds, cumulative cpu seconds, rss KiB) samples.
    samples: list[tuple[float, float, int]] = field(default_factory=list)
    sample_interval_sec: float = 0.0

    @property
    def cpu_util_pct(self) -> float:
        """Mean CPU utilization of the section (one core = 100%)."""
        if self.wall_sec <= 0:
            return 0.0
        return 100.0 * self.cpu_sec / self.wall_sec

    def to_dict(self) -> dict:
        return {
            "wall_sec": self.wall_sec,
            "cpu_sec": self.cpu_sec,
            "cpu_util_pct": self.cpu_util_pct,
            "max_rss_kb": self.max_rss_kb,
            "num_samples": len(self.samples),
            "sample_interval_sec": self.sample_interval_sec,
            "samples": [
                [round(t, 6), round(cpu, 6), rss] for t, cpu, rss in self.samples
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceUsage":
        """Rebuild a usage record serialized by :meth:`to_dict` (the
        worker → parent path of a parallel matrix run)."""
        return cls(
            wall_sec=data["wall_sec"],
            cpu_sec=data["cpu_sec"],
            max_rss_kb=data["max_rss_kb"],
            samples=[tuple(sample) for sample in data.get("samples", [])],
            sample_interval_sec=data.get("sample_interval_sec", 0.0),
        )


class ResourceProfiler:
    """Samples this process's CPU time and RSS while a section runs.

    Context-manager based so cell execution stays a plain function call;
    re-usable (each ``with`` block starts a fresh measurement).  The
    sampler is a daemon thread — it can never keep the process alive —
    and takes one final sample at exit so even sections shorter than the
    interval report a complete trace.
    """

    def __init__(self, interval_sec: float = 0.02):
        if interval_sec <= 0:
            raise ValueError(f"interval_sec must be positive, got {interval_sec}")
        self.interval_sec = interval_sec
        self._usage: ResourceUsage | None = None
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None
        self._samples: list[tuple[float, float, int]] = []
        self._t0 = 0.0
        self._cpu0 = 0.0

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "ResourceProfiler":
        self._usage = None
        self._samples = []
        self._stop = threading.Event()
        self._t0 = time.perf_counter()
        self._cpu0 = _cpu_seconds()
        self._thread = threading.Thread(target=self._sample_loop, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._stop is not None and self._thread is not None
        self._stop.set()
        self._thread.join()
        wall = time.perf_counter() - self._t0
        cpu = _cpu_seconds() - self._cpu0
        self._samples.append((wall, cpu, _rss_kb()))
        self._usage = ResourceUsage(
            wall_sec=wall,
            cpu_sec=cpu,
            max_rss_kb=max(rss for _t, _c, rss in self._samples),
            samples=self._samples,
            sample_interval_sec=self.interval_sec,
        )

    def _sample_loop(self) -> None:
        assert self._stop is not None
        while not self._stop.wait(self.interval_sec):
            self._samples.append((
                time.perf_counter() - self._t0,
                _cpu_seconds() - self._cpu0,
                _rss_kb(),
            ))

    # -- results -----------------------------------------------------------------

    def usage(self) -> ResourceUsage:
        """The last completed section's usage."""
        if self._usage is None:
            raise RuntimeError("profiler has not completed a section yet")
        return self._usage

    def profile(self, func, *args, **kwargs):
        """Run ``func`` under profiling; returns ``(result, ResourceUsage)``."""
        with self:
            result = func(*args, **kwargs)
        return result, self.usage()

"""Experiment definitions: one function per table/figure of the paper.

Each function runs the simulated testbed the way Section 4 describes the
real one being run (same sizes, same tuning, three-execution averages)
and returns plain data structures the benchmarks and reports consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bigdatabench.workloads_table import table1_rows
from repro.cluster.hardware import NodeSpec
from repro.common.errors import WorkloadError
from repro.common.units import GB, MB
from repro.hdfs.dfsio import block_size_sweep
from repro.perfmodels import get_calibration, simulate
from repro.perfmodels.runner import AveragedRun

MICRO_SIZES = {
    "normal_sort": [4 * GB, 8 * GB, 16 * GB, 32 * GB],
    "text_sort": [8 * GB, 16 * GB, 32 * GB, 64 * GB],
    "wordcount": [8 * GB, 16 * GB, 32 * GB, 64 * GB],
    "grep": [8 * GB, 16 * GB, 32 * GB, 64 * GB],
}

APP_SIZES = [8 * GB, 16 * GB, 32 * GB, 64 * GB]

FRAMEWORKS_BY_WORKLOAD = {
    "normal_sort": ["hadoop", "datampi"],          # Spark OOMs (still simulated)
    "text_sort": ["hadoop", "spark", "datampi"],
    "wordcount": ["hadoop", "spark", "datampi"],
    "grep": ["hadoop", "spark", "datampi"],
    "kmeans": ["hadoop", "spark", "datampi"],
    "naive_bayes": ["hadoop", "datampi"],          # no Spark NB in BigDataBench
}


def table1() -> list[tuple[str, str, str]]:
    """Table 1: the representative workloads."""
    return table1_rows()


def table2() -> list[tuple[str, str]]:
    """Table 2: the hardware configuration."""
    return NodeSpec().as_table()


def fig2a(executions_seed: int = 0) -> dict[int, dict[int, float]]:
    """Figure 2(a): DFSIO throughput (MB/s) by block size and input size."""
    results = block_size_sweep(
        [64 * MB, 128 * MB, 256 * MB, 512 * MB],
        [5 * GB, 10 * GB, 15 * GB, 20 * GB],
        seed=executions_seed,
    )
    return {
        total: {block: result.throughput_mbps for block, result in by_block.items()}
        for total, by_block in results.items()
    }


def fig2b(executions: int = 3) -> dict[str, dict[int, float]]:
    """Figure 2(b): Text Sort throughput (MB/s) vs tasks/workers per node.

    Hadoop and DataMPI process 1 GB per task; Spark processes 128 MB per
    worker (Section 4.2) — with 1 GB partitions Spark would OOM, which is
    exactly why the authors shrank its per-worker share.
    """
    throughput: dict[str, dict[int, float]] = {}
    for framework in ("hadoop", "spark", "datampi"):
        throughput[framework] = {}
        for slots in (2, 4, 6):
            per_task = 1 * GB if framework != "spark" else 128 * MB
            input_bytes = 8 * slots * per_task  # 8 nodes
            run = simulate(framework, "text_sort", input_bytes,
                           slots=slots, executions=executions)
            if run.failed:
                throughput[framework][slots] = 0.0
            else:
                throughput[framework][slots] = input_bytes / MB / run.elapsed_sec
    return throughput


def micro_benchmark(workload: str, executions: int = 3) -> dict[str, dict[int, AveragedRun]]:
    """Figures 3(a-d) / 6(a-b): one workload swept over its input sizes."""
    if workload in MICRO_SIZES:
        sizes = MICRO_SIZES[workload]
    elif workload in ("kmeans", "naive_bayes"):
        sizes = APP_SIZES
    else:
        raise WorkloadError(f"no figure sweep defined for workload {workload!r}")
    frameworks = FRAMEWORKS_BY_WORKLOAD[workload]
    if workload in ("normal_sort", "text_sort"):
        frameworks = sorted(set(frameworks) | {"spark"})
    series: dict[str, dict[int, AveragedRun]] = {}
    for framework in frameworks:
        series[framework] = {}
        for size in sizes:
            series[framework][size] = simulate(framework, workload, size,
                                               executions=executions)
    return series


def fig3a(executions: int = 3):
    """Figure 3(a): Normal Sort sweep."""
    return micro_benchmark("normal_sort", executions)


def fig3b(executions: int = 3):
    """Figure 3(b): Text Sort sweep."""
    return micro_benchmark("text_sort", executions)


def fig3c(executions: int = 3):
    """Figure 3(c): WordCount sweep."""
    return micro_benchmark("wordcount", executions)


def fig3d(executions: int = 3):
    """Figure 3(d): Grep sweep."""
    return micro_benchmark("grep", executions)


def fig6a(executions: int = 3):
    """Figure 6(a): K-means sweep."""
    return micro_benchmark("kmeans", executions)


def fig6b(executions: int = 3):
    """Figure 6(b): Naive Bayes sweep."""
    return micro_benchmark("naive_bayes", executions)


@dataclass
class ResourceProfile:
    """Figure 4 data for one framework on one workload case."""

    framework: str
    elapsed_sec: float
    phase_window: tuple[float, float]
    cpu_pct: float
    iowait_pct: float
    disk_read_mbps: float
    disk_read_phase_mbps: float
    disk_write_mbps: float
    net_mbps: float
    mem_gb: float
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)


#: The phase the paper singles out per framework for the Sort case.
_PHASE_NAMES = {"hadoop": "map", "spark": "stage0", "datampi": "o"}


def resource_profile(workload: str, input_bytes: int, framework: str,
                     sample_dt: float = 1.0, seed: int = 0) -> ResourceProfile:
    """One framework's Figure 4 panel: averages plus 1-second time series."""
    run = simulate(framework, workload, input_bytes, executions=1, base_seed=seed)
    outcome = run.first
    cluster = outcome.cluster
    t_end = run.elapsed_sec
    phase = _PHASE_NAMES[framework]
    window = outcome.phases.get(phase, (0.0, t_end))
    cal = get_calibration(framework)
    series = {
        "cpu_pct": [
            (t, 100.0 * v / cluster.spec.node.hardware_threads)
            for t, v in cluster.sample_over_nodes("cpu", t_end, sample_dt)
        ],
        "disk_read_mbps": [
            (t, v / MB) for t, v in cluster.sample_over_nodes("disk.read", t_end, sample_dt)
        ],
        "disk_write_mbps": [
            (t, v / MB) for t, v in cluster.sample_over_nodes("disk.write", t_end, sample_dt)
        ],
        "net_in_mbps": [
            (t, v / MB) for t, v in cluster.sample_over_nodes("net.in", t_end, sample_dt)
        ],
        "mem_gb": [
            (t, v / GB) for t, v in cluster.sample_over_nodes("mem", t_end, sample_dt)
        ],
    }
    return ResourceProfile(
        framework=framework,
        elapsed_sec=t_end,
        phase_window=window,
        cpu_pct=cluster.cpu_utilization_pct(0.0, t_end),
        iowait_pct=cal.iowait_scale * cluster.iowait_pct(0.0, t_end),
        disk_read_mbps=cluster.disk_read_mbps(0.0, t_end),
        disk_read_phase_mbps=cluster.disk_read_mbps(*window),
        disk_write_mbps=cluster.disk_write_mbps(0.0, t_end),
        net_mbps=cluster.network_mbps(0.0, t_end),
        mem_gb=cluster.memory_gb(0.0, t_end),
        series=series,
    )


def fig4_sort(seed: int = 0) -> dict[str, ResourceProfile]:
    """Figure 4(a-d): resource profile of the 8 GB Text Sort case."""
    return {
        framework: resource_profile("text_sort", 8 * GB, framework, seed=seed)
        for framework in ("hadoop", "spark", "datampi")
    }


def fig4_wordcount(seed: int = 0) -> dict[str, ResourceProfile]:
    """Figure 4(e-h): resource profile of the 32 GB WordCount case."""
    return {
        framework: resource_profile("wordcount", 32 * GB, framework, seed=seed)
        for framework in ("hadoop", "spark", "datampi")
    }


SMALL_JOB_BYTES = 128 * MB


def fig5(executions: int = 3) -> dict[str, dict[str, float]]:
    """Figure 5: small jobs (128 MB input, one task/worker per node)."""
    times: dict[str, dict[str, float]] = {}
    for workload in ("text_sort", "wordcount", "grep"):
        times[workload] = {}
        for framework in ("hadoop", "spark", "datampi"):
            run = simulate(framework, workload, SMALL_JOB_BYTES,
                           slots=1, executions=executions)
            times[workload][framework] = run.elapsed_sec
    return times

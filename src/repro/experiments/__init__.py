"""Experiment runners: per-figure drivers plus the cross-engine matrix.

Two generations of experiment code live here.  The per-figure drivers
(:mod:`~repro.experiments.figures`, :mod:`~repro.experiments.radar`)
regenerate individual tables/figures of the paper from the analytical
models.  The matrix subsystem (:mod:`~repro.experiments.spec`,
:mod:`~repro.experiments.matrix`, :mod:`~repro.experiments.profiler`,
:mod:`~repro.experiments.reportbuilder`) runs the full workload ×
engine × transport × mode × scale comparison end to end — functional
runs with exact byte counters paired with modeled testbed seconds — and
renders the figures into ``reports/``; it is driven by
``repro experiment run|report|list``.
"""

from repro.experiments.figures import (
    APP_SIZES,
    MICRO_SIZES,
    ResourceProfile,
    fig2a,
    fig2b,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    fig4_sort,
    fig4_wordcount,
    fig5,
    fig6a,
    fig6b,
    micro_benchmark,
    resource_profile,
    table1,
    table2,
)
import importlib

from repro.experiments.plots import (
    ascii_bars,
    ascii_radar,
    ascii_series,
    ascii_sweep,
)
from repro.experiments.radar import AXES, RadarData, compute_radar
from repro.experiments.report import (
    improvement_range,
    mean_improvement,
    profile_table,
    render_table,
    sweep_table,
)
# The matrix subsystem pulls in the functional workload stack; load it
# lazily (PEP 562) so `repro list`-style CLI startup stays cheap.
_LAZY_ATTRS = {
    "CellResult": "repro.experiments.matrix",
    "MatrixResult": "repro.experiments.matrix",
    "MatrixRunner": "repro.experiments.matrix",
    "execute_cell": "repro.experiments.matrix",
    "load_matrix": "repro.experiments.matrix",
    "verify_cross_engine": "repro.experiments.matrix",
    "ResourceProfiler": "repro.experiments.profiler",
    "ResourceUsage": "repro.experiments.profiler",
    "ReportBuilder": "repro.experiments.reportbuilder",
    "CellSpec": "repro.experiments.spec",
    "DataScale": "repro.experiments.spec",
    "ExperimentSpec": "repro.experiments.spec",
    "MATRIX_ENGINES": "repro.experiments.spec",
    "SCALES": "repro.experiments.spec",
    "WORKLOAD_MODES": "repro.experiments.spec",
    "full_spec": "repro.experiments.spec",
    "get_spec": "repro.experiments.spec",
    "quick_spec": "repro.experiments.spec",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value

__all__ = [
    "APP_SIZES",
    "MICRO_SIZES",
    "ResourceProfile",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig4_sort",
    "fig4_wordcount",
    "fig5",
    "fig6a",
    "fig6b",
    "micro_benchmark",
    "resource_profile",
    "table1",
    "table2",
    "ascii_bars",
    "ascii_radar",
    "ascii_series",
    "ascii_sweep",
    "AXES",
    "RadarData",
    "compute_radar",
    "improvement_range",
    "mean_improvement",
    "profile_table",
    "render_table",
    "sweep_table",
    "CellResult",
    "CellSpec",
    "DataScale",
    "ExperimentSpec",
    "MATRIX_ENGINES",
    "MatrixResult",
    "MatrixRunner",
    "ReportBuilder",
    "ResourceProfiler",
    "ResourceUsage",
    "SCALES",
    "WORKLOAD_MODES",
    "execute_cell",
    "full_spec",
    "get_spec",
    "load_matrix",
    "quick_spec",
    "verify_cross_engine",
]

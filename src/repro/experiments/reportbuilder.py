"""ReportBuilder: render a recorded matrix into the paper's figures.

Each figure is emitted twice under ``reports/``: a ``<name>.json``
machine-readable artifact (what the trajectory benchmarks diff) and a
``<name>.md`` human-readable table, plus an ``index.md`` mapping every
artifact back to the table/figure of the paper it reproduces.  All files
are written atomically, so a live report directory is never half-updated.

**Determinism contract.**  Every artifact except the ones named in
:data:`VOLATILE_ARTIFACTS` is a pure function of the matrix's
*deterministic* record — exact byte counters, output digests, iteration
counts, modeled seconds — and the builder iterates results in spec order,
so serial and parallel runs of the same spec render **byte-identical**
reports (``scripts/diff_reports.py`` enforces this in CI).  Everything
machine- and run-dependent (measured wall seconds, sampled CPU/RSS) is
quarantined in the ``timings`` artifact, which is explicitly marked
``volatile``.

Figures:

``execution_time``   modeled seconds (paper's 8-node testbed) per cell,
                     with exact bytes moved — the paper's Figures 3/6
                     comparison axis.
``speedup``          DataMPI's modeled speedup over the other engines per
                     (workload, mode, scale) — the 29–57% headline.
``bytes_per_iteration``  bytes moved per iteration for iterative cells —
                     Section 4.5/4.6's redundant-I/O analysis, the number
                     Iteration mode exists to shrink.
``resources``        the exact per-cell byte counters the engines
                     maintain — the communication half of Section 5's
                     utilization argument.
``timings``          measured wall seconds and sampled CPU/RSS of each
                     cell on *this machine* (volatile: excluded from the
                     determinism diff).
"""

from __future__ import annotations

import os
from typing import Any

from repro.datampi.checkpoint import atomic_write_json, atomic_write_text
from repro.experiments.matrix import MatrixResult, verify_cross_engine
from repro.experiments.plots import ascii_bars
from repro.experiments.report import render_table
from repro.experiments.spec import MATRIX_ENGINES

#: Paper anchor for every emitted figure.
FIGURE_PAPER_REFS = {
    "execution_time": "Figures 3(a-d) and 6(a-b): execution time by "
                      "workload, framework and input size",
    "speedup": "Section 4.4/4.6: DataMPI's 29-57% improvements over Hadoop",
    "bytes_per_iteration": "Sections 4.5-4.6: per-iteration redundant I/O "
                           "of one-job-per-iteration execution",
    "resources": "Figure 4 / Section 5: communication volume per cell "
                 "(exact byte counters)",
    "timings": "Figure 4 / Section 5: measured wall clock and sampled "
               "CPU/RSS on this machine",
}

#: Artifacts that legitimately differ between two runs of the same spec
#: (measured time, sampled utilization).  ``scripts/diff_reports.py`` and
#: the determinism tests skip exactly this set; everything else must be
#: byte-identical between serial and parallel runs.
VOLATILE_ARTIFACTS = frozenset({"timings.json", "timings.md"})


def _fmt(value: Any, suffix: str = "", precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}{suffix}"
    return f"{value:,}{suffix}"


def _group_key(result) -> tuple[str, str, str]:
    cell = result.spec
    return (cell.workload, cell.mode, cell.scale)


class ReportBuilder:
    """Builds every figure artifact from one :class:`MatrixResult`."""

    def __init__(self, matrix: MatrixResult, reports_dir: str = "reports"):
        self.matrix = matrix
        self.reports_dir = reports_dir

    # -- figure data -------------------------------------------------------------

    def execution_time_rows(self) -> list[dict]:
        rows = []
        for result in self.matrix.results:
            cell = result.spec
            rows.append({
                "workload": cell.workload,
                "mode": cell.mode,
                "engine": cell.engine,
                "scale": cell.scale,
                "transport": cell.transport,
                "status": result.status,
                "modeled_sec": None if result.modeled_sec is None
                else round(result.modeled_sec, 3),
                "iterations": result.iterations,
                "bytes_moved": result.bytes_moved,
            })
        return rows

    def speedup_rows(self) -> list[dict]:
        """DataMPI vs each other engine, per (workload, mode, scale)."""
        by_group: dict[tuple, dict[str, Any]] = {}
        for result in self.matrix.results:
            if result.status != "ok":
                continue
            by_group.setdefault(_group_key(result), {})[
                result.spec.engine] = result
        rows = []
        for (workload, mode, scale), engines in sorted(by_group.items()):
            datampi = engines.get("datampi")
            if datampi is None:
                continue
            row = {"workload": workload, "mode": mode, "scale": scale}
            for other_name in MATRIX_ENGINES:
                if other_name == "datampi":
                    continue
                other = engines.get(other_name)
                key = other_name.replace("-", "_")
                if (other is None or other.modeled_sec is None
                        or datampi.modeled_sec in (None, 0)):
                    row[f"modeled_speedup_vs_{key}"] = None
                else:
                    row[f"modeled_speedup_vs_{key}"] = round(
                        other.modeled_sec / datampi.modeled_sec, 3
                    )
                if (other is None or other.bytes_moved is None
                        or not datampi.bytes_moved):
                    row[f"bytes_ratio_vs_{key}"] = None
                else:
                    row[f"bytes_ratio_vs_{key}"] = round(
                        other.bytes_moved / datampi.bytes_moved, 3
                    )
            rows.append(row)
        return rows

    def bytes_per_iteration_rows(self) -> list[dict]:
        rows = []
        for result in self.matrix.results:
            if result.status != "ok" or result.per_iteration_bytes is None:
                continue
            if result.spec.mode != "iteration":
                continue
            per_iteration = result.per_iteration_bytes
            rows.append({
                "workload": result.spec.workload,
                "engine": result.spec.engine,
                "scale": result.spec.scale,
                "iterations": len(per_iteration),
                "per_iteration_bytes": per_iteration,
                "total_bytes": sum(per_iteration),
                "warm_iteration_bytes": per_iteration[1] if
                len(per_iteration) > 1 else None,
            })
        return rows

    def resources_rows(self) -> list[dict]:
        """Deterministic per-cell counters (the exact half of the profile)."""
        rows = []
        for result in self.matrix.results:
            rows.append({
                "cell": result.spec.cell_id,
                "status": result.status,
                "bytes_moved": result.bytes_moved,
                "counters": {
                    name: result.counters[name]
                    for name in sorted(result.counters)
                },
            })
        return rows

    def timings_rows(self) -> list[dict]:
        """Volatile per-cell measurements (this machine, this run)."""
        rows = []
        for result in self.matrix.results:
            resource = result.resource
            rows.append({
                "cell": result.spec.cell_id,
                "status": result.status,
                "wall_sec": round(result.elapsed_sec, 6),
                "cpu_util_pct": None if not resource
                else round(resource.get("cpu_util_pct", 0.0), 1),
                "max_rss_kb": resource.get("max_rss_kb"),
                "num_samples": resource.get("num_samples"),
            })
        return rows

    # -- rendering ---------------------------------------------------------------

    def _figure_doc(self, name: str, payload: dict) -> dict:
        return {
            "figure": name,
            "paper": FIGURE_PAPER_REFS[name],
            "experiment": self.matrix.spec.name,
            "spec_hash": self.matrix.spec.spec_hash,
            "complete": self.matrix.complete,
            "volatile": f"{name}.json" in VOLATILE_ARTIFACTS,
            **payload,
        }

    def _write(self, name: str, doc: dict, markdown: str) -> list[str]:
        json_path = os.path.join(self.reports_dir, f"{name}.json")
        md_path = os.path.join(self.reports_dir, f"{name}.md")
        atomic_write_json(json_path, doc)
        atomic_write_text(md_path, markdown)
        return [json_path, md_path]

    def build(self) -> list[str]:
        """Emit every figure; returns the written paths."""
        os.makedirs(self.reports_dir, exist_ok=True)
        written: list[str] = []
        written += self._build_execution_time()
        written += self._build_speedup()
        written += self._build_bytes_per_iteration()
        written += self._build_resources()
        written += self._build_timings()
        written += self._build_index(written)
        return written

    def _build_execution_time(self) -> list[str]:
        rows = self.execution_time_rows()
        table = render_table(
            ["workload", "mode", "engine", "scale", "modeled", "iterations",
             "bytes moved"],
            [[r["workload"], r["mode"], r["engine"], r["scale"],
              _fmt(r["modeled_sec"], "s", 1), _fmt(r["iterations"]),
              _fmt(r["bytes_moved"])] for r in rows],
        )
        markdown = (
            f"# Execution time\n\n{FIGURE_PAPER_REFS['execution_time']}.\n\n"
            "`modeled` is the calibrated analytical model at the cell's\n"
            "paper-testbed input size; `bytes moved` is the exact counter\n"
            "of the functional run (see `docs/experiments.md`).  Wall\n"
            "seconds measured on this machine live in `timings.md`, the\n"
            "volatile artifact.\n\n```\n" + table + "\n```\n"
        )
        return self._write("execution_time",
                           self._figure_doc("execution_time", {"rows": rows}),
                           markdown)

    def _build_speedup(self) -> list[str]:
        rows = self.speedup_rows()
        table = render_table(
            ["workload", "mode", "scale", "modeled x vs hadoop-model",
             "modeled x vs spark-model", "bytes x vs hadoop-model",
             "bytes x vs spark-model"],
            [[r["workload"], r["mode"], r["scale"],
              _fmt(r.get("modeled_speedup_vs_hadoop_model")),
              _fmt(r.get("modeled_speedup_vs_spark_model")),
              _fmt(r.get("bytes_ratio_vs_hadoop_model")),
              _fmt(r.get("bytes_ratio_vs_spark_model"))] for r in rows],
        )
        markdown = (
            f"# DataMPI speedup\n\n{FIGURE_PAPER_REFS['speedup']}.\n\n"
            "Values are ratios other/datampi: >1 means DataMPI wins.\n\n"
            "```\n" + table + "\n```\n"
        )
        return self._write("speedup",
                           self._figure_doc("speedup", {"rows": rows}),
                           markdown)

    def _build_bytes_per_iteration(self) -> list[str]:
        rows = self.bytes_per_iteration_rows()
        charts = []
        for row in rows:
            bars = [(f"iter {index + 1}", float(value))
                    for index, value in enumerate(row["per_iteration_bytes"])]
            charts.append(ascii_bars(
                bars,
                title=f"{row['workload']} {row['engine']} {row['scale']} "
                      "(bytes/iteration)",
                unit="B",
            ))
        table = render_table(
            ["workload", "engine", "scale", "iterations", "total bytes",
             "warm-iteration bytes"],
            [[r["workload"], r["engine"], r["scale"], str(r["iterations"]),
              _fmt(r["total_bytes"]), _fmt(r["warm_iteration_bytes"])]
             for r in rows],
        )
        markdown = (
            "# Bytes moved per iteration\n\n"
            f"{FIGURE_PAPER_REFS['bytes_per_iteration']}.\n\n"
            "The `datampi` engine's warm iterations serve input from the\n"
            "cross-iteration KV cache; the `hadoop-model` engine re-scatters\n"
            "it every iteration.\n\n```\n" + table + "\n```\n\n"
            + "\n\n".join(f"```\n{chart}\n```" for chart in charts) + "\n"
        )
        return self._write(
            "bytes_per_iteration",
            self._figure_doc("bytes_per_iteration", {"rows": rows}),
            markdown,
        )

    def _build_resources(self) -> list[str]:
        rows = self.resources_rows()
        table = render_table(
            ["cell", "status", "bytes moved"],
            [[r["cell"], r["status"], _fmt(r["bytes_moved"])] for r in rows],
        )
        counter_lines = [
            f"{r['cell']}: " + (", ".join(
                f"{name}={value:,}" for name, value in r["counters"].items()
            ) or "-")
            for r in rows
        ]
        markdown = (
            f"# Resource profile (exact counters)\n\n"
            f"{FIGURE_PAPER_REFS['resources']}.\n\n"
            "Byte counters are exact — computed from the payloads that\n"
            "actually moved — so these numbers are identical for serial and\n"
            "parallel runs of the same spec.  Sampled CPU/RSS live in\n"
            "`timings.md`, the volatile artifact.\n\n```\n" + table + "\n```\n\n"
            "Per-cell counters:\n\n```\n" + "\n".join(counter_lines) + "\n```\n"
        )
        return self._write("resources",
                           self._figure_doc("resources", {"rows": rows}),
                           markdown)

    def _build_timings(self) -> list[str]:
        rows = self.timings_rows()
        table = render_table(
            ["cell", "status", "wall", "cpu util", "peak RSS", "samples"],
            [[r["cell"], r["status"], _fmt(r["wall_sec"], "s"),
              _fmt(r["cpu_util_pct"], "%", 1),
              _fmt(r["max_rss_kb"], " KiB"), _fmt(r["num_samples"])]
             for r in rows],
        )
        markdown = (
            f"# Timings (volatile)\n\n{FIGURE_PAPER_REFS['timings']}.\n\n"
            "Wall seconds and CPU/RSS samples of the functional runs on\n"
            "*this machine*.  These legitimately differ between runs (and\n"
            "between serial and parallel execution), so this artifact is\n"
            "excluded from the determinism diff — never compare engines\n"
            "with it; use `execution_time.md` and `resources.md`.\n\n"
            "```\n" + table + "\n```\n"
        )
        return self._write("timings",
                           self._figure_doc("timings", {"rows": rows}),
                           markdown)

    def _build_index(self, written: list[str]) -> list[str]:
        verification = verify_cross_engine(self.matrix)
        verify_table = render_table(
            ["workload.mode.scale", "engines agree"],
            [[key, str(ok)] for key, ok in verification.items()],
        )
        artifacts = sorted({os.path.basename(p) for p in written})
        lines = [
            "# Experiment reports",
            "",
            f"Generated from experiment `{self.matrix.spec.name}` "
            f"(spec `{self.matrix.spec.spec_hash}`, "
            f"{len(self.matrix.results)} cells).",
            "",
        ]
        if not self.matrix.complete:
            lines += [
                f"> **Warning:** the matrix run is incomplete "
                f"({len(self.matrix.results)} of "
                f"{len(self.matrix.spec.cells)} cells recorded); "
                f"the figures below have holes.",
                "",
            ]
        lines += [
            "| artifact | reproduces |",
            "|----------|------------|",
        ]
        for name, ref in FIGURE_PAPER_REFS.items():
            volatile = " *(volatile)*" if f"{name}.json" in VOLATILE_ARTIFACTS \
                else ""
            lines.append(
                f"| [`{name}.md`]({name}.md) / `{name}.json` | {ref}{volatile} |"
            )
        lines += [
            "",
            "Artifacts not marked *volatile* are deterministic: serial and",
            "parallel runs of the same spec render them byte-identically",
            "(`scripts/diff_reports.py` verifies).",
        ]
        lines += [
            "",
            "## Cross-engine output verification",
            "",
            "Every engine ran the same generated input; matching output",
            "digests mean the comparison measures *performance*, not",
            "different answers.",
            "",
            "```",
            verify_table,
            "```",
            "",
            f"Artifacts: {', '.join('`' + a + '`' for a in artifacts)}",
            "",
        ]
        path = os.path.join(self.reports_dir, "index.md")
        atomic_write_text(path, "\n".join(lines))
        return [path]

"""MatrixRunner: execute every cell of an :class:`ExperimentSpec`.

Each cell runs the *functional* workload on its engine (real outputs,
real byte counters, CPU/RSS profiled) and pairs it with the *analytical*
model's cluster-scale seconds at the cell's paper-equivalent input size —
the same measured/modeled pairing the repository's figure benchmarks use.

Results checkpoint at cell granularity: every finished cell is written
atomically (the same tmp-file + rename primitive the iteration
checkpoints use, :func:`repro.datampi.checkpoint.atomic_write_bytes`),
so a killed matrix resumes from the first unfinished cell.  A cell
checkpoint records the spec hash it was produced under; editing the spec
invalidates stale cells instead of silently mixing matrices.

Cells are independent, so the runner can execute them on a **process
pool** (``MatrixRunner(..., workers=N)``; ``repro experiment run
--parallel N``).  Each worker runs exactly the serial per-cell pipeline —
profiled functional run (the profiler samples *inside* the worker
process) plus the analytical model — and streams the result back to the
parent, which writes the same spec-hash-guarded atomic checkpoint files.
A parallel run killed mid-flight therefore resumes exactly like a serial
one: surviving cell files are reused, missing and failed cells re-run.

Cells can also be executed by **distributed workers** on other processes
or machines (``MatrixRunner(..., serve="host:port")`` plus
``repro experiment worker --join host:port``).  Coordination reuses the
checkpoint directory: a worker takes a cell by atomically linking a
**claim file** into place next to its checkpoint
(``cells/<cell_id>.claim`` — first link wins, everyone else skips, and
the file is never visible without its owner record), runs the exact
per-cell pipeline :func:`_run_cell_worker` runs on the process pool, and
streams the result to the parent over a length-prefixed TCP frame
channel (the tcp transport's wire format).  Workers authenticate with an
HMAC challenge before any frame crosses the wire (frames unpickle); the
shared key rides the printed join token or ``REPRO_MATRIX_AUTHKEY``.
The parent is the only writer of checkpoints and reports, so serial,
pooled, and distributed runs are byte-identical; a worker that dies
mid-cell simply forfeits its claim and the parent re-runs the cell.
"""

from __future__ import annotations

import concurrent.futures
import glob
import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.bigdatabench import (
    TextGenerator,
    generate_kmeans_vectors,
    to_sequence_file,
)
from repro.common.errors import ConfigError, JobError, ReproError
from repro.datampi.checkpoint import atomic_write_json, read_json
from repro.mpi.transport.tcp import (
    answer_challenge,
    deliver_challenge,
    format_address,
    parse_address,
    parse_authkey,
    recv_frame,
    resolve_authkey,
    send_frame,
)
from repro.experiments.profiler import ResourceProfiler
from repro.experiments.spec import (
    MODEL_FRAMEWORKS,
    MODEL_WORKLOADS,
    CellSpec,
    ExperimentSpec,
)
from repro.perfmodels import iterative_kmeans, simulate
from repro.spark import SparkContext
from repro.storage import StorageConfig
from repro.workloads import (
    generate_labeled_documents,
    grep_datampi_result,
    grep_hadoop_result,
    grep_spark,
    grep_streaming,
    kmeans_iterative_job,
    merge_window_counts,
    normal_sort_datampi_result,
    normal_sort_hadoop_result,
    normal_sort_spark,
    run_kmeans,
    text_sort_datampi_result,
    text_sort_hadoop_result,
    text_sort_spark,
    train_datampi_iterative,
    train_datampi_result,
    train_hadoop_result,
    wordcount_datampi_result,
    wordcount_hadoop_result,
    wordcount_spark,
    wordcount_streaming,
)

#: Grep pattern every grep cell searches (the CLI default).
GREP_PATTERN = r"ba[a-z]*"

#: Clusters every kmeans cell trains.
KMEANS_K = 4

SPEC_FILE = "spec.json"
MANIFEST_FILE = "manifest.json"
CELLS_DIR = "cells"


def checksum(obj: Any) -> str:
    """Stable digest of a JSON-serializable canonical output."""
    canonical = json.dumps(obj, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _canonical_counts(counts: dict) -> list[list]:
    return [[key, count] for key, count in sorted(counts.items())]


def _canonical_centroids(centroids) -> list[list[list]]:
    return [sorted([dim, weight] for dim, weight in c.weights.items())
            for c in centroids]


def _canonical_model(model) -> dict:
    """Canonical JSON form of a trained Naive Bayes model."""
    return {
        "doc_counts": sorted(model.class_doc_counts.items()),
        "term_counts": [
            [label, sorted(counts.items())]
            for label, counts in sorted(model.class_term_counts.items())
        ],
        "vocabulary": sorted(model.vocabulary),
    }


@dataclass
class CellResult:
    """Everything one executed cell recorded."""

    spec: CellSpec
    status: str = "ok"  # "ok" | "failed"
    error: str | None = None
    #: Measured wall seconds of the functional run (this machine).
    elapsed_sec: float = 0.0
    #: Modeled seconds on the paper's 8-node testbed at the cell's
    #: ``paper_bytes`` scale (None where no model applies, e.g. streaming).
    modeled_sec: float | None = None
    #: Total bytes the engine moved (None where not instrumented).
    bytes_moved: int | None = None
    #: Per-iteration bytes for iterative cells.
    per_iteration_bytes: list[int] | None = None
    #: Iterations executed (iterative) or windows flushed (streaming).
    iterations: int | None = None
    #: Digest of the canonical output — must agree across engines.
    output_checksum: str | None = None
    #: Bytes the datampi receive stores evicted to segment files (None on
    #: engines without the spill store).
    bytes_spilled: int | None = None
    #: Reads the datampi receive stores served from segment files.
    spill_reads: int | None = None
    counters: dict[str, int] = field(default_factory=dict)
    resource: dict = field(default_factory=dict)
    #: True when this result was loaded from a checkpoint, not executed.
    resumed: bool = False

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "status": self.status,
            "error": self.error,
            "elapsed_sec": self.elapsed_sec,
            "modeled_sec": self.modeled_sec,
            "bytes_moved": self.bytes_moved,
            "per_iteration_bytes": self.per_iteration_bytes,
            "iterations": self.iterations,
            "output_checksum": self.output_checksum,
            "bytes_spilled": self.bytes_spilled,
            "spill_reads": self.spill_reads,
            "counters": self.counters,
            "resource": self.resource,
        }

    @classmethod
    def from_dict(cls, data: dict, resumed: bool = False) -> "CellResult":
        return cls(
            spec=CellSpec.from_dict(data["spec"]),
            status=data["status"],
            error=data.get("error"),
            elapsed_sec=data["elapsed_sec"],
            modeled_sec=data.get("modeled_sec"),
            bytes_moved=data.get("bytes_moved"),
            per_iteration_bytes=data.get("per_iteration_bytes"),
            iterations=data.get("iterations"),
            output_checksum=data.get("output_checksum"),
            bytes_spilled=data.get("bytes_spilled"),
            spill_reads=data.get("spill_reads"),
            counters=dict(data.get("counters", {})),
            resource=dict(data.get("resource", {})),
            resumed=resumed,
        )


@dataclass
class MatrixResult:
    """Outcome of one matrix run (or a load of a recorded one)."""

    spec: ExperimentSpec
    results: list[CellResult]
    out_dir: str
    executed: int = 0
    resumed: int = 0
    #: False when loaded from a run that never finished (no manifest, or
    #: fewer recorded cells than the spec declares) — reports built from
    #: an incomplete matrix must say so rather than render silent holes.
    complete: bool = True

    def by_cell_id(self) -> dict[str, CellResult]:
        return {result.spec.cell_id: result for result in self.results}

    def failed_cells(self) -> list[CellResult]:
        return [result for result in self.results if result.status != "ok"]


# -- per-cell execution ---------------------------------------------------------


def _modeled_sec(cell: CellSpec, iterations: int | None) -> float | None:
    """Analytical cluster-scale seconds for this cell, if a model applies."""
    if cell.mode == "streaming":
        return None  # the paper (and the models) have no streaming runs
    framework = MODEL_FRAMEWORKS[cell.engine]
    paper_bytes = cell.data_scale.paper_bytes
    if cell.mode == "iteration" and iterations and cell.workload == "kmeans":
        # Only K-means has a calibrated *iterative* model; the Naive
        # Bayes supersteps are the Mahout pipeline's chained passes, so
        # its iteration cells report the pipeline model's seconds.
        cumulative = iterative_kmeans(paper_bytes, iterations).cumulative
        return cumulative[framework][-1]
    run = simulate(framework, MODEL_WORKLOADS[cell.workload], paper_bytes,
                   executions=1)
    return None if run.failed else run.elapsed_sec


def _partial_result(cell: CellSpec) -> CellResult:
    return CellResult(spec=cell)


def _cell_storage(cell: CellSpec, spec: ExperimentSpec) -> StorageConfig | None:
    """Receive-store budget for this cell's datampi runs.

    Only the ``datampi`` engine runs over the spill store; model engines
    ignore the budget (and their cells report no spill counters).
    """
    if cell.engine != "datampi" or spec.spill_budget_bytes is None:
        return None
    return StorageConfig(spill_threshold=spec.spill_budget_bytes)


def _fill_spill_counters(result: CellResult) -> None:
    """Surface the receive stores' spill activity as first-class fields."""
    if "a.bytes_spilled" in result.counters:
        result.bytes_spilled = result.counters["a.bytes_spilled"]
        result.spill_reads = result.counters.get("a.spill_reads", 0)


def _fill_counts_cell(result: CellResult, counts: dict,
                      counters: dict[str, int], bytes_moved: int | None) -> None:
    result.output_checksum = checksum(_canonical_counts(counts))
    result.counters = dict(counters)
    result.bytes_moved = bytes_moved


def _execute_counting(cell: CellSpec, spec: ExperimentSpec,
                      lines: list[str]) -> CellResult:
    """wordcount/grep cells: all engines, common + streaming modes."""
    result = _partial_result(cell)
    parallelism = spec.parallelism
    if cell.mode == "streaming":
        runner = wordcount_streaming if cell.workload == "wordcount" \
            else grep_streaming
        args = (lines,) if cell.workload == "wordcount" else (lines, GREP_PATTERN)
        stream = runner(*args, parallelism=parallelism,
                        lines_per_split=max(1, len(lines) // 8),
                        transport=cell.transport,
                        storage=_cell_storage(cell, spec))
        _fill_counts_cell(result, merge_window_counts(stream), stream.counters,
                          stream.counters.get("mode.bytes_moved"))
        result.iterations = len(stream.windows)
        return result
    if cell.engine == "datampi":
        runner = wordcount_datampi_result if cell.workload == "wordcount" \
            else grep_datampi_result
        args = (lines,) if cell.workload == "wordcount" else (lines, GREP_PATTERN)
        job = runner(*args, parallelism=parallelism, transport=cell.transport,
                     storage=_cell_storage(cell, spec))
        _fill_counts_cell(result, dict(job.merged_outputs()), job.counters,
                          job.counters.get("o.bytes_sent"))
    elif cell.engine == "hadoop-model":
        runner = wordcount_hadoop_result if cell.workload == "wordcount" \
            else grep_hadoop_result
        args = (lines,) if cell.workload == "wordcount" else (lines, GREP_PATTERN)
        job = runner(*args, parallelism=parallelism)
        counts = {kv.key: kv.value for kv in job.merged_outputs()}
        _fill_counts_cell(result, counts, job.counters,
                          job.counters.get("shuffle_bytes"))
    else:  # spark-model: instrumented context supplies the shuffle bytes
        runner = wordcount_spark if cell.workload == "wordcount" else grep_spark
        args = (lines,) if cell.workload == "wordcount" else (lines, GREP_PATTERN)
        ctx = SparkContext(default_parallelism=parallelism)
        counts = runner(*args, parallelism=parallelism, ctx=ctx)
        _fill_counts_cell(result, counts, dict(ctx.counters),
                          ctx.counters.get("shuffle_bytes"))
    return result


def _execute_sort(cell: CellSpec, spec: ExperimentSpec,
                  lines: list[str]) -> CellResult:
    """text_sort and normal_sort cells on all three engines.

    Normal Sort first runs the ToSeqFile conversion (key = value = line,
    DEFLATE-compressed) and sorts the decompressed records, recording the
    compression counters alongside the sort's shuffle bytes — the
    workload the paper's Spark baseline OOMs on at cluster scale.
    """
    result = _partial_result(cell)
    parallelism = spec.parallelism
    seqfile = to_sequence_file(lines) if cell.workload == "normal_sort" \
        else None
    if cell.engine == "datampi":
        storage = _cell_storage(cell, spec)
        job = normal_sort_datampi_result(seqfile, parallelism,
                                         transport=cell.transport,
                                         storage=storage) \
            if seqfile else \
            text_sort_datampi_result(lines, parallelism,
                                     transport=cell.transport,
                                     storage=storage)
        output = [line for ranked in job.outputs for line in ranked]
        result.counters = dict(job.counters)
        result.bytes_moved = job.counters.get("o.bytes_sent")
    elif cell.engine == "hadoop-model":
        job = normal_sort_hadoop_result(seqfile, parallelism) if seqfile \
            else text_sort_hadoop_result(lines, parallelism)
        output = [kv.key for kv in job.merged_outputs()]
        result.counters = dict(job.counters)
        result.bytes_moved = job.counters.get("shuffle_bytes")
    else:
        ctx = SparkContext(default_parallelism=parallelism)
        output = normal_sort_spark(seqfile, parallelism, ctx=ctx) if seqfile \
            else text_sort_spark(lines, parallelism, ctx=ctx)
        result.counters = dict(ctx.counters)
        result.bytes_moved = ctx.counters.get("shuffle_bytes")
    if seqfile is not None:
        result.counters.update({
            "seqfile.raw_bytes": seqfile.raw_bytes,
            "seqfile.compressed_bytes": seqfile.compressed_bytes,
            "seqfile.records": seqfile.num_records,
        })
    result.output_checksum = checksum(output)
    return result


def _execute_naive_bayes(cell: CellSpec, spec: ExperimentSpec,
                         documents) -> CellResult:
    """Naive Bayes cells (no spark-model: the paper's release lacks it).

    * ``datampi`` common: the Mahout pipeline's three counting passes as
      chained run-once DataMPI jobs.
    * ``datampi`` iteration: the same passes as supersteps of one
      kept-alive world — the documents cross the transport once and the
      later passes read them from the per-rank cache.
    * ``hadoop-model`` common: the functional MapReduce pipeline.
    * ``hadoop-model`` iteration: the one-job-per-pass replay (fresh
      world per superstep, no cache) with measured per-pass bytes.

    Every path trains a bit-identical model, which the cross-engine
    checksum verifies.
    """
    result = _partial_result(cell)
    parallelism = spec.parallelism
    if cell.mode == "common":
        if cell.engine == "datampi":
            model, counters = train_datampi_result(
                documents, parallelism, transport=cell.transport,
                storage=_cell_storage(cell, spec))
            result.bytes_moved = counters.get("o.bytes_sent")
        else:
            model, counters = train_hadoop_result(documents, parallelism)
            result.bytes_moved = counters.get("shuffle_bytes")
        result.counters = dict(counters)
        result.output_checksum = checksum(_canonical_model(model))
        return result
    # Iteration cells mirror the kmeans pattern: the hadoop-model replay
    # is a measurement device pinned to the deterministic backend.
    mode = "iteration" if cell.engine == "datampi" else "common"
    transport = cell.transport if cell.engine == "datampi" else "inline"
    model, stats = train_datampi_iterative(
        documents, parallelism, transport=transport, mode=mode,
        storage=_cell_storage(cell, spec))
    result.iterations = len(stats.per_iteration)
    result.output_checksum = checksum(_canonical_model(model))
    result.counters = dict(stats.counters)
    result.bytes_moved = stats.counters.get("mode.bytes_moved")
    result.per_iteration_bytes = [
        record["mode.bytes_moved"] for record in stats.per_iteration
    ]
    return result


def _execute_kmeans(cell: CellSpec, spec: ExperimentSpec, vectors) -> CellResult:
    """K-means cells.

    * ``datampi``: the real superstep driver — Iteration mode (kept-alive
      world + KV cache) or its Common replay, per the cell's mode.
    * ``hadoop-model``: the one-job-per-iteration pattern (fresh world
      per superstep, no cache) — Hadoop/Mahout's execution model — with
      measured per-iteration bytes.
    * ``spark-model``: the functional RDD engine iterating over a cached
      RDD; the instrumented context reports its shuffle bytes.

    All three converge to byte-identical centroids from the shared seed,
    which the cross-engine checksum in the reports verifies.
    """
    result = _partial_result(cell)
    common = dict(k=KMEANS_K, max_iterations=spec.max_iterations,
                  seed=spec.seed, parallelism=spec.parallelism)
    if cell.engine == "spark-model":
        ctx = SparkContext(default_parallelism=spec.parallelism,
                           memory_capacity=1 << 30)
        kres = run_kmeans("spark", vectors, spark_ctx=ctx, **common)
        result.iterations = kres.iterations
        result.output_checksum = checksum(_canonical_centroids(kres.centroids))
        result.counters = dict(ctx.counters)
        result.bytes_moved = ctx.counters.get("shuffle_bytes")
        return result
    mode = "iteration" if (cell.engine == "datampi" and
                           cell.mode == "iteration") else "common"
    # The hadoop-model replay is a measurement device, not a transport
    # benchmark: pin it to the deterministic backend so its byte counters
    # never depend on the ambient REPRO_TRANSPORT default.
    transport = cell.transport if cell.engine == "datampi" else "inline"
    kres, stats = kmeans_iterative_job(vectors, transport=transport,
                                       mode=mode,
                                       storage=_cell_storage(cell, spec),
                                       **common)
    result.iterations = kres.iterations
    result.output_checksum = checksum(_canonical_centroids(kres.centroids))
    result.counters = dict(stats.counters)
    result.bytes_moved = stats.counters.get("mode.bytes_moved")
    result.per_iteration_bytes = [
        record["mode.bytes_moved"] for record in stats.per_iteration
    ]
    return result


def execute_cell(cell: CellSpec, spec: ExperimentSpec) -> CellResult:
    """Run one cell's functional workload (no profiling, no modeling)."""
    scale = cell.data_scale
    if cell.workload == "kmeans":
        vectors, _labels = generate_kmeans_vectors(scale.vectors, seed=spec.seed)
        result = _execute_kmeans(cell, spec, vectors)
    elif cell.workload == "naive_bayes":
        documents = generate_labeled_documents(scale.docs, seed=spec.seed)
        result = _execute_naive_bayes(cell, spec, documents)
    elif cell.workload in ("wordcount", "grep"):
        lines = TextGenerator(seed=spec.seed).lines(scale.lines)
        result = _execute_counting(cell, spec, lines)
    elif cell.workload in ("text_sort", "normal_sort"):
        lines = TextGenerator(seed=spec.seed).lines(scale.lines)
        result = _execute_sort(cell, spec, lines)
    else:
        raise ConfigError(f"no executor for workload {cell.workload!r}")
    _fill_spill_counters(result)
    return result


# -- the runner -----------------------------------------------------------------


def _run_cell_worker(payload: dict) -> dict:
    """Pool-worker entry point: one cell, profiled inside this process.

    Module-level (picklable) and dict-in/dict-out so the pool only ever
    moves JSON-serializable payloads.  The profiler samples *this*
    worker's CPU/RSS, so a parallel matrix attributes resources per cell
    exactly like a serial one.  Failures are captured into a ``failed``
    result rather than raised — a crashing workload must not take the
    pool down with it.
    """
    cell = CellSpec.from_dict(payload["cell"])
    spec = ExperimentSpec.from_dict(payload["spec"])
    try:
        profiler = ResourceProfiler(interval_sec=payload["interval"])
        result, usage = profiler.profile(execute_cell, cell, spec)
        result.elapsed_sec = usage.wall_sec
        result.resource = usage.to_dict()
        result.modeled_sec = _modeled_sec(cell, result.iterations)
    except Exception as exc:  # noqa: BLE001 - recorded, matrix continues
        result = CellResult(spec=cell, status="failed",
                            error=f"{type(exc).__name__}: {exc}")
    return result.to_dict()


# -- distributed workers ---------------------------------------------------------
#
# Frame kinds for the worker protocol (the tcp transport reserves 16+ for
# higher-level protocols reusing its framing).

_WK_HELLO = 16    #: worker -> parent: {"proto": 1}
_WK_WELCOME = 17  #: parent -> worker: {"worker_id", "spec", "out_dir", "interval"}
_WK_RESULT = 18   #: worker -> parent: {"cell_id", "result"}
_WK_BYE = 19      #: worker -> parent: no more claimable cells

_WORKER_PROTO = 1

#: Seconds the acceptor waits for a connection's handshake + hello before
#: dropping it (strays are handled serially, so this bounds admission
#: latency too).
_WK_HELLO_TIMEOUT = 5.0

#: Environment variable supplying the worker protocol's shared secret
#: when the join token does not carry one (e.g. CI pinning a fixed
#: address for both sides).  Like the tcp transport, workers must clear
#: an HMAC challenge before any frame — frames unpickle — so the parent
#: either takes this key or generates one and embeds it in the printed
#: join token (``HOST:PORT/KEY``).
MATRIX_AUTHKEY_ENV_VAR = "REPRO_MATRIX_AUTHKEY"

CLAIM_SUFFIX = ".claim"

#: How long a serving parent leaves a claim from a worker it never admitted
#: alone before reclaiming it.  Long enough for a predecessor's surviving
#: worker to reconnect and re-stamp its claims; short enough that a truly
#: departed owner (on a host where liveness cannot be probed) does not
#: stall the run.
RECLAIM_GRACE_SEC = 5.0


def claim_path(out_dir: str, cell_id: str) -> str:
    return os.path.join(out_dir, CELLS_DIR, cell_id + CLAIM_SUFFIX)


def try_claim_cell(out_dir: str, cell_id: str, spec_hash: str,
                   owner: str) -> bool:
    """Atomically claim one cell; False when someone already holds it.

    The owner record is written to a private temp file first and
    ``os.link``-ed into place, so the filesystem stays the arbiter
    (exactly one link wins, on a local disk or a shared mount) *and* a
    claim file is never observable without its owner — a coordinator
    reading a claim mid-creation must not mistake it for a dead one.
    """
    path = claim_path(out_dir, cell_id)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    # The temp name must be unique across *hosts* too — workers on a
    # shared mount can collide on pid + thread ident alone.
    tmp = (f"{path}.{socket.gethostname()}.{os.getpid()}"
           f".{threading.get_ident()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"owner": owner, "spec_hash": spec_hash,
                   "pid": os.getpid(), "host": socket.gethostname()}, handle)
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        os.unlink(tmp)
    return True


def release_claim(out_dir: str, cell_id: str) -> None:
    try:
        os.unlink(claim_path(out_dir, cell_id))
    except FileNotFoundError:
        pass


def sweep_claim_debris(out_dir: str) -> None:
    """Remove orphaned claim temp files (a claimant killed between
    writing its record and the link/unlink leaves one behind); the
    stale-claim sweep only covers ``.claim`` files themselves."""
    pattern = os.path.join(out_dir, CELLS_DIR, f"*{CLAIM_SUFFIX}.*.tmp")
    for leftover in glob.glob(pattern):
        try:
            os.unlink(leftover)
        except OSError:
            pass  # another sweeper got it, or the mount refuses: not fatal


def claim_owner(out_dir: str, cell_id: str) -> str | None:
    """The recorded owner of a cell's claim, or None when unclaimed."""
    record = claim_record(out_dir, cell_id)
    return record.get("owner") if record else None


def claim_record(out_dir: str, cell_id: str) -> dict | None:
    """A cell's full claim record (owner/pid/host), or None when unclaimed."""
    try:
        record = read_json(claim_path(out_dir, cell_id))
    except Exception:  # noqa: BLE001 - missing or mid-write claim
        return None
    return record if isinstance(record, dict) else {}


def claim_age_seconds(out_dir: str, cell_id: str) -> float:
    """Seconds since the claim file appeared (inf when it is gone)."""
    try:
        return max(0.0, time.time() - os.path.getmtime(claim_path(out_dir, cell_id)))
    except OSError:
        return float("inf")


def refresh_claim(out_dir: str, cell_id: str, spec_hash: str, owner: str) -> None:
    """Atomically re-stamp an already-held claim with a new owner record.

    Used by a worker that reconnected after losing its parent (the parent
    may have restarted): its claims carry the *old* worker id, which the
    new parent would reap as a departed owner.  The replace keeps the
    cell continuously claimed — there is no window where another claimant
    can link in.
    """
    path = claim_path(out_dir, cell_id)
    tmp = (f"{path}.{socket.gethostname()}.{os.getpid()}"
           f".{threading.get_ident()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"owner": owner, "spec_hash": spec_hash,
                   "pid": os.getpid(), "host": socket.gethostname()}, handle)
    os.replace(tmp, path)


def _pid_is_live(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # EPERM and friends: the pid exists
    return True


def claim_is_stale(record: dict | None) -> bool:
    """Is a claim provably dead — its recorded owner process gone?

    Only claims from *this* host can be checked; a malformed record, a
    dead local pid, or a claim written by this very process (workers are
    always separate processes, so our own pid can only be a leftover of a
    previous incarnation of this run) count as stale.  Remote-host claims
    are never provably dead here — the serving reaper ages them out
    instead.
    """
    if not record:
        return True
    pid, host = record.get("pid"), record.get("host")
    if host != socket.gethostname():
        return False  # remote: not provably dead from here
    if not isinstance(pid, int):
        return True  # local but malformed
    return pid == os.getpid() or not _pid_is_live(pid)


def run_matrix_worker(
    address: str,
    progress: Callable[[CellResult], None] | None = None,
    connect_timeout: float = 30.0,
) -> int:
    """Join a serving matrix run and execute claimable cells until dry.

    The ``repro experiment worker --join`` entry point.  Connects to the
    parent, clears its HMAC challenge (the key rides the join token's
    ``/KEY`` segment or ``REPRO_MATRIX_AUTHKEY``), receives the spec and
    checkpoint directory, then sweeps the cells: checkpointed cells are
    skipped, claimable ones are claimed, executed with the exact
    process-pool pipeline, and streamed back.  The *parent* writes every
    checkpoint and releases the claim — this process only computes.
    Returns the number of cells it executed.
    """
    progress = progress or (lambda result: None)
    connected = _worker_connect(address, connect_timeout)
    if connected is None:
        # The parent accepted then hung up: its run finished (or it
        # died) before this worker was admitted.  Nothing to do.
        return 0
    sock, welcome = connected
    spec = ExperimentSpec.from_dict(welcome["spec"])
    out_dir = welcome["out_dir"]
    owner = welcome["worker_id"]
    executed = 0
    try:
        for cell in spec.cells:
            state, _record = _classify_checkpoint(
                os.path.join(out_dir, CELLS_DIR, f"{cell.cell_id}.json"),
                spec.spec_hash,
            )
            if state == "done":
                continue
            if not try_claim_cell(out_dir, cell.cell_id, spec.spec_hash,
                                  owner):
                continue
            result_doc = _run_cell_worker({
                "cell": cell.to_dict(),
                "spec": welcome["spec"],
                "interval": welcome["interval"],
            })
            frame_obj = {"cell_id": cell.cell_id, "result": result_doc}
            try:
                send_frame(sock, _WK_RESULT, obj=frame_obj)
            except OSError as exc:
                # The parent vanished with our result in hand.  It may
                # have *restarted* on the same address: reconnect, stamp
                # the claim with the identity the new parent gave us (so
                # its reaper knows the owner is alive), and resend.
                sock.close()
                sock, owner = _worker_reconnect(
                    address, connect_timeout, spec, executed, exc
                )
                refresh_claim(out_dir, cell.cell_id, spec.spec_hash, owner)
                try:
                    send_frame(sock, _WK_RESULT, obj=frame_obj)
                except OSError as exc2:
                    raise JobError(
                        f"lost connection to the matrix parent at "
                        f"{address} after {executed} cell(s): {exc2}"
                    ) from exc2
            executed += 1
            progress(CellResult.from_dict(result_doc))
        try:
            send_frame(sock, _WK_BYE)
        except OSError:
            pass  # the run is over either way
    finally:
        sock.close()
    return executed


def _worker_reconnect(
    address: str,
    connect_timeout: float,
    spec: ExperimentSpec,
    executed: int,
    cause: OSError,
) -> tuple[socket.socket, str]:
    """Re-join a (possibly restarted) parent after a torn connection."""
    try:
        reconnected = _worker_connect(address, connect_timeout)
    except JobError:
        reconnected = None
    if reconnected is None:
        raise JobError(
            f"lost connection to the matrix parent at {address} after "
            f"{executed} cell(s): {cause}"
        ) from cause
    sock, welcome = reconnected
    if ExperimentSpec.from_dict(welcome["spec"]).spec_hash != spec.spec_hash:
        sock.close()
        raise JobError(
            f"the matrix parent now serving at {address} runs a different "
            f"spec; abandoning this worker's run"
        )
    return sock, welcome["worker_id"]


def _worker_connect(
    address: str, connect_timeout: float
) -> tuple[socket.socket, dict] | None:
    """Dial and handshake a matrix parent.

    Returns ``(socket, welcome)`` once admitted, or ``None`` when a parent
    accepted and hung up cleanly (its run already finished).  Raises
    :class:`JobError` when nothing is serving or the handshake misbehaves.
    """
    host, port = parse_address(address)
    authkey = parse_authkey(address) or os.environ.get(MATRIX_AUTHKEY_ENV_VAR)
    deadline = time.monotonic() + connect_timeout
    while True:  # the parent may still be binding its listener
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise JobError(
                    f"no matrix parent serving at {address} after "
                    f"{connect_timeout}s"
                ) from None
            # Connect-retry backoff inside a deadline-bounded loop: the
            # enclosing while re-raises once `deadline` passes.
            time.sleep(0.1)  # repro: allow[RPL004]
    try:
        # Bound the handshake: a wrong-but-listening port (or a wedged
        # parent) accepts the connect but never answers the challenge, and
        # an unbounded read would hang the worker CLI forever.
        sock.settimeout(max(connect_timeout, 10.0))
        try:
            if authkey is None:
                # The parent always challenges first.  Anything arriving
                # proves this is an authenticating parent we cannot
                # answer; a clean EOF means its run already finished.
                if sock.recv(1):
                    raise JobError(
                        f"matrix parent at {address} requires an authkey: "
                        f"join with the full token printed by --serve "
                        f"(HOST:PORT/KEY) or set {MATRIX_AUTHKEY_ENV_VAR}"
                    )
                frame = None
            elif not answer_challenge(sock, authkey):
                frame = None  # parent hung up before admitting us
            else:
                try:
                    send_frame(sock, _WK_HELLO, obj={"proto": _WORKER_PROTO})
                    frame = recv_frame(sock)
                except (OSError, ReproError):  # torn mid-handshake
                    frame = None
        except socket.timeout:
            raise JobError(
                f"{address} accepted the connection but never answered the "
                f"worker handshake (not a serving matrix parent?)"
            ) from None
        sock.settimeout(None)
        if frame is None:
            sock.close()
            return None
        if frame[0] != _WK_WELCOME:
            raise JobError(f"matrix parent at {address} rejected the worker")
    except BaseException:
        sock.close()
        raise
    return sock, frame[2]


#: Per-process sequence distinguishing server incarnations (worker ids
#: embed pid + this, so ids never repeat across parent restarts).
_SERVER_EPOCH = iter(range(1, 1 << 62))


class _MatrixServer:
    """Parent-side listener: admits workers, drains their streamed results.

    One acceptor thread plus one reader thread per worker; results land
    in a queue the runner's coordination loop drains.  Worker liveness is
    tracked so the coordinator can reclaim cells whose owner died.
    """

    def __init__(self, spec: ExperimentSpec, out_dir: str, address: str,
                 interval: float, authkey: str | bytes | None = None):
        self._spec_doc = spec.to_dict()
        self._out_dir = out_dir
        self._interval = interval
        host, port = parse_address(address)
        # Workers must authenticate before any frame is exchanged (frames
        # unpickle).  A generated key is embedded in the advertised join
        # token; a supplied one (argument or env) stays out of it.
        self._authkey, token = resolve_authkey(
            authkey or parse_authkey(address), MATRIX_AUTHKEY_ENV_VAR
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise ConfigError(
                f"cannot serve matrix workers on {address}: {exc}"
            ) from exc
        self._listener.listen(16)
        self.address = format_address(self._listener.getsockname()[:2], token)
        self._lock = threading.Lock()
        self._results: list[tuple[str, CellResult]] = []
        self._live: set[str] = set()
        self._seen: set[str] = set()  # every worker id this server admitted
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._next_id = 0
        self._epoch = f"{os.getpid():x}.{next(_SERVER_EPOCH)}"

    def __enter__(self) -> "_MatrixServer":
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="matrix-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._listener.close()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:  # unblock readers parked in recv_frame
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(2.0)

    # -- coordinator interface -------------------------------------------------

    def drain_results(self) -> list[tuple[str, CellResult]]:
        with self._lock:
            drained, self._results = self._results, []
            return drained

    def owner_is_live(self, owner: str | None) -> bool:
        """Is ``owner`` a currently-connected worker of this server?"""
        with self._lock:
            return owner is not None and owner in self._live

    def owner_was_admitted(self, owner: str | None) -> bool:
        """Did this server ever admit ``owner`` (live or since departed)?

        Distinguishes "admitted, then died" (reap its claims immediately)
        from "never met" (a worker of a previous parent that may still
        reconnect — only age its claims out)."""
        with self._lock:
            return owner is not None and owner in self._seen

    # -- threads ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # already closed: the run finished before we started
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            try:
                # Bound the handshake + hello read: an accepted socket is
                # blocking, and one silent connection (port scan, health
                # check) must not wedge the single acceptor thread — and
                # with it all future worker admission — forever.
                conn.settimeout(_WK_HELLO_TIMEOUT)
                try:
                    # Challenge before the first frame: frames unpickle,
                    # and this port admits anything on the network.
                    deliver_challenge(conn, self._authkey)
                    frame = recv_frame(conn)
                except Exception:  # noqa: BLE001 - timeout, bad key, garbage
                    frame = None
                # The whole validation stays inside this thread's guard:
                # a malformed hello (e.g. a non-dict payload) must drop
                # the connection, never kill the single acceptor.
                if frame is None or frame[0] != _WK_HELLO or \
                        not isinstance(frame[2], dict) or \
                        frame[2].get("proto") != _WORKER_PROTO:
                    conn.close()
                    continue
                conn.settimeout(None)
                with self._lock:
                    self._next_id += 1
                    # Unique across parent incarnations: a restarted
                    # parent must never mint an id that collides with a
                    # claim stamped by its predecessor's workers.
                    worker_id = f"worker-{self._epoch}-{self._next_id}"
                    self._live.add(worker_id)
                    self._seen.add(worker_id)
                    self._conns.append(conn)
                send_frame(conn, _WK_WELCOME, obj={
                    "worker_id": worker_id,
                    "spec": self._spec_doc,
                    "out_dir": self._out_dir,
                    "interval": self._interval,
                })
            except OSError:
                conn.close()
                continue
            reader = threading.Thread(
                target=self._read_loop, args=(conn, worker_id),
                name=f"matrix-{worker_id}", daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _read_loop(self, conn: socket.socket, worker_id: str) -> None:
        try:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(conn)
                except Exception:  # noqa: BLE001 - torn connection
                    frame = None
                if frame is None or frame[0] == _WK_BYE:
                    return
                if frame[0] != _WK_RESULT:
                    continue
                payload = frame[2]
                result = CellResult.from_dict(payload["result"])
                with self._lock:
                    self._results.append((payload["cell_id"], result))
        finally:
            conn.close()
            with self._lock:
                self._live.discard(worker_id)


class MatrixRunner:
    """Executes a spec cell by cell with profiling and resumable checkpoints.

    ``workers`` selects the execution strategy: ``None`` or ``1`` runs
    cells serially in this process; ``N > 1`` runs them on a process pool
    of ``N`` workers; ``0`` sizes the pool to ``os.cpu_count()``.  Both
    strategies write identical checkpoints and, because the
    :class:`~repro.experiments.reportbuilder.ReportBuilder` is
    order-independent and byte counters are exact, render byte-identical
    reports (``tests/test_parallel_matrix.py`` asserts this).

    ``serve="host:port"`` instead runs the *distributed* strategy: the
    runner executes cells itself while also admitting remote workers
    (:func:`run_matrix_worker`) that claim cells via claim files and
    stream results back; the parent stays the only checkpoint writer, so
    reports remain byte-identical to a serial run.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        out_dir: str,
        profile_interval_sec: float = 0.02,
        progress: Callable[[CellResult], None] | None = None,
        workers: int | None = None,
        serve: str | None = None,
        worker_timeout: float = 600.0,
    ):
        self.spec = spec
        self.out_dir = out_dir
        self.profile_interval_sec = profile_interval_sec
        self.progress = progress or (lambda result: None)
        self.serve = serve
        self.worker_timeout = worker_timeout
        if workers is None:
            workers = 1
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise ConfigError(
                f"workers must be an integer >= 0 "
                f"(0 = one worker per CPU core), got {workers!r}"
            )
        if workers < 0:
            raise ConfigError(
                f"workers must be >= 0 (0 = one worker per CPU core), "
                f"got {workers}"
            )
        self.workers = workers if workers >= 1 else (os.cpu_count() or 1)
        if serve is not None and self.workers > 1:
            raise ConfigError(
                "serve (distributed workers) and workers (process pool) "
                "are mutually exclusive; pick one parallelism strategy"
            )
        self._server: _MatrixServer | None = None
        if serve is not None:
            # Bind eagerly so the resolved address (an ephemeral port is
            # legal) is known before run() — workers need it to join.
            self._server = _MatrixServer(spec, out_dir, serve,
                                         profile_interval_sec)
            self.serve = self._server.address

    def cell_path(self, cell: CellSpec) -> str:
        return os.path.join(self.out_dir, CELLS_DIR, f"{cell.cell_id}.json")

    # -- execution ---------------------------------------------------------------

    def execute_cell(self, cell: CellSpec) -> CellResult:
        """Execute one cell: profiled functional run + analytical model.

        Public and monkeypatch-friendly: the resume tests replace this to
        observe (or interrupt) the per-cell execution order (serial runs
        only — pool workers run the module-level :func:`_run_cell_worker`).
        """
        profiler = ResourceProfiler(interval_sec=self.profile_interval_sec)
        result, usage = profiler.profile(execute_cell, cell, self.spec)
        result.elapsed_sec = usage.wall_sec
        result.resource = usage.to_dict()
        result.modeled_sec = _modeled_sec(cell, result.iterations)
        return result

    def _checkpoint(self, cell: CellSpec, result: CellResult) -> None:
        atomic_write_json(self.cell_path(cell),
                          {"spec_hash": self.spec.spec_hash,
                           "result": result.to_dict()})

    def _run_serial(self, pending: list[CellSpec],
                    by_id: dict[str, CellResult]) -> int:
        for cell in pending:
            try:
                result = self.execute_cell(cell)
            except Exception as exc:  # noqa: BLE001 - recorded, matrix continues
                result = CellResult(spec=cell, status="failed",
                                    error=f"{type(exc).__name__}: {exc}")
            self._checkpoint(cell, result)
            by_id[cell.cell_id] = result
            self.progress(result)
        return len(pending)

    def _run_parallel(self, pending: list[CellSpec],
                      by_id: dict[str, CellResult]) -> int:
        """Fan pending cells out to a process pool, checkpointing as they
        stream back (completion order).  If the pool breaks (a worker
        SIGKILLed mid-cell), everything checkpointed so far is already on
        disk — the next run resumes from the surviving cells.
        """
        spec_doc = self.spec.to_dict()
        executed = 0
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))) as pool:
            futures = {
                pool.submit(_run_cell_worker, {
                    "cell": cell.to_dict(),
                    "spec": spec_doc,
                    "interval": self.profile_interval_sec,
                }): cell
                for cell in pending
            }
            for future in concurrent.futures.as_completed(futures):
                cell = futures[future]
                result = CellResult.from_dict(future.result())
                self._checkpoint(cell, result)
                by_id[cell.cell_id] = result
                executed += 1
                self.progress(result)
        return executed

    def _run_distributed(self, pending: list[CellSpec],
                         by_id: dict[str, CellResult]) -> int:
        """Coordinate this process plus any joined workers over claim files.

        The parent claims and executes cells like any worker, drains
        streamed worker results between cells, and is the only process
        that writes checkpoints.  Claims whose owner has disconnected (or
        predates this run) are released and re-executed, so a dying
        worker costs its in-flight cell, nothing more.
        """
        remaining = {cell.cell_id: cell for cell in pending}
        # Sweep *every* cell's claim, not just the pending ones: a parent
        # killed between checkpointing a cell and releasing its claim
        # leaves a claim beside a done checkpoint, which no longer shows
        # up as pending but must not survive into this run.  The sweep is
        # liveness-aware: claims whose recorded owner process is provably
        # dead (or is this very process, reincarnated) go; claims held by
        # a live worker of a previous parent stay, so a restarted parent
        # does not steal a cell that worker is still computing — it can
        # reconnect and stream the result here instead.
        for cell in self.spec.cells:
            if claim_is_stale(claim_record(self.out_dir, cell.cell_id)):
                release_claim(self.out_dir, cell.cell_id)
        sweep_claim_debris(self.out_dir)
        executed = 0

        def record(cell: CellSpec, result: CellResult) -> None:
            nonlocal executed
            self._checkpoint(cell, result)
            by_id[cell.cell_id] = result
            release_claim(self.out_dir, cell.cell_id)
            del remaining[cell.cell_id]
            executed += 1
            self.progress(result)

        assert self._server is not None
        try:
            with self._server as server:
                self._serve_cells(server, remaining, record)
        finally:
            # Closing sweep, after the server (and its workers) are
            # gone: a worker can win a claim in the window between the
            # parent checkpointing that cell and releasing it (the
            # duplicate result is dropped above); no claim file may
            # outlive the run.  In a ``finally`` on purpose — a
            # KeyboardInterrupt mid-run must release this parent's
            # claims too, or the leftover files would pin every
            # unfinished cell against the resumed run.
            for cell in self.spec.cells:
                release_claim(self.out_dir, cell.cell_id)
            sweep_claim_debris(self.out_dir)
        return executed

    def _serve_cells(self, server: "_MatrixServer",
                     remaining: dict[str, CellSpec], record) -> None:
        """The distributed claim/execute/drain loop, until no cell remains."""
        last_progress = time.monotonic()
        while remaining:
            progressed = False
            for cell_id, result in server.drain_results():
                if cell_id in remaining:
                    record(remaining[cell_id], result)
                    progressed = True
            claimed = None
            for cell in list(remaining.values()):
                if try_claim_cell(self.out_dir, cell.cell_id,
                                  self.spec.spec_hash, "parent"):
                    claimed = cell
                    break
            if claimed is not None:
                try:
                    result = self.execute_cell(claimed)
                except Exception as exc:  # noqa: BLE001 - recorded
                    result = CellResult(
                        spec=claimed, status="failed",
                        error=f"{type(exc).__name__}: {exc}")
                record(claimed, result)
                progressed = True
            else:
                # Everything left is claimed by workers: reap claims
                # whose owner is gone, then wait for live streams.
                # A missing claim (owner None) is *claimable*, not
                # orphaned — releasing it would race a worker linking
                # its claim right now; the next sweep picks it up.
                for cell_id in list(remaining):
                    claim = claim_record(self.out_dir, cell_id)
                    owner = claim.get("owner") if claim else None
                    if owner is None or owner == "parent":
                        continue
                    if server.owner_was_admitted(owner):
                        # Admitted then departed: provably gone, reap now.
                        if not server.owner_is_live(owner):
                            release_claim(self.out_dir, cell_id)
                            progressed = True
                    elif claim_is_stale(claim) or (
                        claim_age_seconds(self.out_dir, cell_id)
                        > RECLAIM_GRACE_SEC
                    ):
                        # A predecessor's worker: reap once its process
                        # is provably dead, or after a grace window long
                        # enough for a surviving one to reconnect here
                        # and re-stamp the claim as its own.
                        release_claim(self.out_dir, cell_id)
                        progressed = True
                if not progressed and remaining:
                    # Reaper backoff, bounded by the stall deadline below
                    # (worker_timeout without progress raises JobError).
                    time.sleep(0.05)  # repro: allow[RPL004]
            if progressed:
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > self.worker_timeout:
                raise JobError(
                    f"distributed matrix stalled: cells "
                    f"{sorted(remaining)} still claimed after "
                    f"{self.worker_timeout}s without progress"
                )

    def run(self, resume: bool = True) -> MatrixResult:
        """Run every cell, checkpointing each; resume skips finished ones.

        A cell whose workload raises is recorded as ``failed`` and
        checkpointed (so the report can show the hole), but failed cells
        are always re-executed on resume.
        """
        os.makedirs(os.path.join(self.out_dir, CELLS_DIR), exist_ok=True)
        atomic_write_json(os.path.join(self.out_dir, SPEC_FILE),
                          {"spec_hash": self.spec.spec_hash,
                           **self.spec.to_dict()})
        if not resume:
            # Delete the stale checkpoints rather than merely ignoring
            # them: distributed workers decide what to execute from the
            # files on disk, so a lingering "done" checkpoint would make
            # every worker skip every cell and the run degrade to serial.
            for cell in self.spec.cells:
                try:
                    os.unlink(self.cell_path(cell))
                except FileNotFoundError:
                    pass
        by_id: dict[str, CellResult] = {}
        pending: list[CellSpec] = []
        resumed = 0
        for cell in self.spec.cells:
            loaded = self._load_cell(cell) if resume else None
            if loaded is not None:
                by_id[cell.cell_id] = loaded
                resumed += 1
                self.progress(loaded)
            else:
                pending.append(cell)
        if self.serve is not None:
            executed = self._run_distributed(pending, by_id)
        elif self.workers > 1 and len(pending) > 1:
            executed = self._run_parallel(pending, by_id)
        else:
            executed = self._run_serial(pending, by_id)
        results = [by_id[cell.cell_id] for cell in self.spec.cells]
        atomic_write_json(os.path.join(self.out_dir, MANIFEST_FILE), {
            "complete": True,
            "spec_hash": self.spec.spec_hash,
            "num_cells": len(results),
            "executed": executed,
            "resumed": resumed,
            "failed": len([r for r in results if r.status != "ok"]),
        })
        return MatrixResult(spec=self.spec, results=results,
                            out_dir=self.out_dir, executed=executed,
                            resumed=resumed)

    def _load_cell(self, cell: CellSpec) -> CellResult | None:
        """A finished cell's checkpoint, if it is valid for this spec."""
        state, record = _classify_checkpoint(self.cell_path(cell),
                                             self.spec.spec_hash)
        if state != "done":
            return None  # pending/stale cells re-run; failed cells retry
        return CellResult.from_dict(record["result"], resumed=True)


def _classify_checkpoint(path: str, spec_hash: str) -> tuple[str, dict | None]:
    """The single source of truth for checkpoint validity.

    Returns ``(state, record)`` where state is one of:

    ``pending``   no checkpoint file (never ran, or killed before done)
    ``stale``     unreadable, or recorded under a different spec hash
    ``failed``    recorded under this spec but the workload raised
    ``done``      valid — a resumed run reuses it

    ``record`` is the parsed checkpoint for ``failed``/``done`` (so
    callers can read the result) and ``None`` otherwise.  Resume
    (:meth:`MatrixRunner._load_cell`), loading
    (:func:`load_matrix`) and inspection (:func:`checkpoint_status`)
    all classify through here, so ``repro experiment list`` can never
    disagree with what a resumed run will actually do.
    """
    if not os.path.exists(path):
        return "pending", None
    try:
        record = read_json(path)
    except Exception:  # noqa: BLE001 - damaged checkpoint
        return "stale", None
    if record.get("spec_hash") != spec_hash:
        return "stale", None  # spec changed since this cell ran
    if record.get("result", {}).get("status") != "ok":
        return "failed", record
    return "done", record


def load_matrix(out_dir: str) -> MatrixResult:
    """Load a recorded matrix (for ``repro experiment report``).

    A matrix whose run was killed mid-way (no manifest, or missing
    cells) loads fine but is flagged ``complete=False`` so reports can
    say they were built from a partial run.
    """
    spec_doc = read_json(os.path.join(out_dir, SPEC_FILE))
    spec = ExperimentSpec.from_dict(spec_doc)
    results: list[CellResult] = []
    for cell in spec.cells:
        path = os.path.join(out_dir, CELLS_DIR, f"{cell.cell_id}.json")
        state, record = _classify_checkpoint(path, spec.spec_hash)
        if state in ("done", "failed"):  # reports show failed cells as holes
            results.append(CellResult.from_dict(record["result"], resumed=True))
    if not results:
        raise ConfigError(
            f"no recorded cells under {out_dir!r}; run the matrix first"
        )
    manifest_path = os.path.join(out_dir, MANIFEST_FILE)
    complete = (
        len(results) == len(spec.cells)
        and os.path.exists(manifest_path)
        and bool(read_json(manifest_path).get("complete"))
    )
    return MatrixResult(spec=spec, results=results, out_dir=out_dir,
                        resumed=len(results), complete=complete)


def checkpoint_status(spec: ExperimentSpec, out_dir: str) -> dict[str, str]:
    """Per-cell checkpoint state of a matrix directory, for inspection.

    ``done``
        A valid checkpoint recorded under this spec's hash — a resumed
        run will reuse it.
    ``failed``
        Recorded under this spec but the cell's workload raised — a
        resumed run will retry it.
    ``stale``
        A checkpoint exists but was produced under a different spec (or
        is unreadable) — a resumed run will re-execute it.
    ``pending``
        No checkpoint — never ran (or the run was killed before this
        cell finished).
    """
    status: dict[str, str] = {}
    for cell in spec.cells:
        path = os.path.join(out_dir, CELLS_DIR, f"{cell.cell_id}.json")
        state, _record = _classify_checkpoint(path, spec.spec_hash)
        status[cell.cell_id] = state
    return status


def verify_cross_engine(result: MatrixResult) -> dict[str, bool]:
    """Per (workload, mode, scale) group: do all engines' checksums agree?

    Groups with a single contributing cell are dropped — one digest
    compared against nothing is not a verification and must not inflate
    the "agree on N/N" summary.  Streaming cells are compared against
    their common-mode counterparts — the windowed totals must reproduce
    the batch answer.  Spark's K-means is excluded: its reduction order
    only guarantees centroids to 1e-9 (asserted by
    ``tests/test_workloads_apps.py``), not byte identity, so it has no
    place in an exact-digest comparison.
    """
    groups: dict[str, list[str]] = {}
    for cell_result in result.results:
        if cell_result.status != "ok" or cell_result.output_checksum is None:
            continue
        cell = cell_result.spec
        if cell.engine == "spark-model" and cell.workload == "kmeans":
            continue
        mode = "common" if cell.mode == "streaming" else cell.mode
        key = f"{cell.workload}.{mode}.{cell.scale}"
        groups.setdefault(key, []).append(cell_result.output_checksum)
    return {
        key: len(set(checksums)) == 1
        for key, checksums in sorted(groups.items())
        if len(checksums) >= 2
    }


__all__: Sequence[str] = (
    "CellResult",
    "GREP_PATTERN",
    "KMEANS_K",
    "MatrixResult",
    "MatrixRunner",
    "checkpoint_status",
    "checksum",
    "claim_owner",
    "claim_path",
    "execute_cell",
    "load_matrix",
    "release_claim",
    "run_matrix_worker",
    "try_claim_cell",
    "verify_cross_engine",
)

"""ASCII rendering of the paper's figures for terminal use.

The repository has no plotting dependency, so the figure data can be
inspected directly in a terminal: line charts for the Figure 3/6 sweeps
and strip charts for the Figure 4 time series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.units import format_size
from repro.perfmodels.runner import AveragedRun

_MARKS = {"hadoop": "H", "spark": "S", "datampi": "D"}


def ascii_series(series: Sequence[tuple[float, float]], width: int = 60,
                 height: int = 10, title: str = "") -> str:
    """Strip chart of one (time, value) series (Figure 4 panels)."""
    if not series:
        return f"{title}\n(no data)"
    values = [value for _t, value in series]
    peak = max(values) or 1.0
    t_end = series[-1][0]
    # Downsample to the chart width.
    step = max(1, len(series) // width)
    sampled = series[::step][:width]
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        line = "".join("#" if value >= threshold else " "
                       for _t, value in sampled)
        label = f"{peak * level / height:8.1f} |"
        rows.append(label + line)
    axis = " " * 9 + "+" + "-" * len(sampled)
    footer = f"{'':9}0{'':{max(0, len(sampled) - 8)}}{t_end:.0f}s"
    header = title + "\n" if title else ""
    return header + "\n".join(rows) + "\n" + axis + "\n" + footer


def ascii_bars(values: Sequence[tuple[str, float]], width: int = 40,
               title: str = "", unit: str = "") -> str:
    """Horizontal bar chart of labeled values (bytes-per-iteration panels)."""
    if not values:
        return f"{title}\n(no data)"
    peak = max(value for _label, value in values) or 1.0
    label_width = max(len(label) for label, _value in values)
    lines = [title] if title else []
    for label, value in values:
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{label:<{label_width}}  {bar} {value:,.0f}{unit}")
    return "\n".join(lines)


def ascii_sweep(series: Mapping[str, Mapping[int, AveragedRun]],
                width: int = 56, title: str = "") -> str:
    """Bar-style chart of a Figure 3/6 sweep (one row per size/framework)."""
    frameworks = [fw for fw in ("hadoop", "spark", "datampi") if fw in series]
    sizes = sorted(next(iter(series.values())).keys())
    peak = max(
        run.elapsed_sec
        for by_size in series.values()
        for run in by_size.values()
        if run.succeeded
    ) or 1.0
    lines = [title] if title else []
    for size in sizes:
        lines.append(format_size(size))
        for framework in frameworks:
            run = series[framework].get(size)
            mark = _MARKS.get(framework, "?")
            if run is None:
                continue
            if run.failed:
                lines.append(f"  {mark} OOM")
                continue
            bar = "#" * max(1, int(width * run.elapsed_sec / peak))
            lines.append(f"  {mark} {bar} {run.elapsed_sec:.0f}s")
    return "\n".join(lines)


def ascii_radar(scores: Mapping[str, Mapping[str, float]],
                axes: Sequence[str], width: int = 40) -> str:
    """Figure 7 as horizontal bars per axis (1.0 = best framework)."""
    lines = []
    for axis in axes:
        lines.append(axis)
        for framework in ("hadoop", "spark", "datampi"):
            value = scores[axis][framework]
            bar = "#" * max(1, int(width * value))
            lines.append(f"  {_MARKS[framework]} {bar} {value:.2f}")
    return "\n".join(lines)

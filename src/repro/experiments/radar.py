"""Figure 7: the seven-pronged evaluation summary.

The paper closes by aggregating everything onto seven axes (Figure 7):
micro-benchmark performance, small-job performance, application-benchmark
performance, CPU efficiency, disk I/O throughput, network throughput, and
memory efficiency.  This module computes those aggregates from simulated
runs and normalizes them radar-style (1.0 = best framework on that axis,
higher is better on every axis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB
from repro.experiments.figures import (
    fig4_sort,
    fig4_wordcount,
    fig5,
    micro_benchmark,
)

AXES = [
    "micro_benchmark",
    "small_job",
    "application",
    "cpu_efficiency",
    "disk_io",
    "network",
    "memory_efficiency",
]

FRAMEWORKS = ["hadoop", "spark", "datampi"]


@dataclass
class RadarData:
    """Raw aggregates plus normalized radar scores."""

    raw: dict[str, dict[str, float]]         # axis -> framework -> value
    scores: dict[str, dict[str, float]]      # axis -> framework -> [0,1]
    improvements: dict[str, float]           # headline DataMPI-vs-baseline stats

    def score(self, framework: str) -> list[float]:
        return [self.scores[axis][framework] for axis in AXES]


def _geomean_speed(series: dict[str, dict[int, object]], framework: str,
                   reference: str) -> float:
    """Mean relative speed of ``framework`` vs ``reference`` over a sweep
    (only sizes where both succeeded)."""
    ratios = []
    for size, run in series[reference].items():
        other = series.get(framework, {}).get(size)
        if other is None or other.failed or run.failed:
            continue
        ratios.append(run.elapsed_sec / other.elapsed_sec)
    if not ratios:
        return 0.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))


def compute_radar(executions: int = 1) -> RadarData:
    """Run every aggregate the radar needs (a few dozen simulations)."""
    micro = {
        workload: micro_benchmark(workload, executions)
        for workload in ("normal_sort", "text_sort", "wordcount", "grep")
    }
    apps = {
        workload: micro_benchmark(workload, executions)
        for workload in ("kmeans", "naive_bayes")
    }
    small = fig5(executions)
    sort_profiles = fig4_sort()
    wc_profiles = fig4_wordcount()

    raw: dict[str, dict[str, float]] = {axis: {} for axis in AXES}
    for framework in FRAMEWORKS:
        # Performance axes: mean speed relative to Hadoop (higher = faster).
        micro_speed = [
            _geomean_speed(series, framework, "hadoop")
            for series in micro.values()
        ]
        micro_speed = [s for s in micro_speed if s > 0]
        raw["micro_benchmark"][framework] = (
            sum(micro_speed) / len(micro_speed) if micro_speed else 0.0
        )
        app_speed = [
            _geomean_speed(series, framework, "hadoop")
            for series in apps.values()
            if framework in series
        ]
        raw["application"][framework] = (
            sum(app_speed) / len(app_speed) if app_speed else 0.0
        )
        raw["small_job"][framework] = sum(
            small[w]["hadoop"] / small[w][framework] for w in small
        ) / len(small)
        # Resource axes from the two profiled cases.
        profiles = [sort_profiles[framework], wc_profiles[framework]]
        cpu = sum(p.cpu_pct for p in profiles) / 2
        raw["cpu_efficiency"][framework] = cpu
        # The paper's disk axis is read throughput (44/44/20 MB/s in the
        # WordCount case); writes are similar across frameworks.
        raw["disk_io"][framework] = sum(p.disk_read_mbps for p in profiles) / 2
        raw["network"][framework] = sort_profiles[framework].net_mbps
        raw["memory_efficiency"][framework] = sum(p.mem_gb for p in profiles) / 2

    scores: dict[str, dict[str, float]] = {}
    for axis in AXES:
        values = raw[axis]
        if axis == "cpu_efficiency":
            # Lower CPU to do the same job in less time = more efficient.
            best = min(values.values())
            scores[axis] = {fw: best / v if v else 0.0 for fw, v in values.items()}
        elif axis == "memory_efficiency":
            best = min(values.values())
            scores[axis] = {fw: best / v if v else 0.0 for fw, v in values.items()}
        else:
            best = max(values.values())
            scores[axis] = {fw: v / best if best else 0.0 for fw, v in values.items()}

    improvements = {
        "micro_vs_hadoop": 1.0 - 1.0 / raw["micro_benchmark"]["datampi"],
        "micro_vs_spark": 1.0 - raw["micro_benchmark"]["spark"] / raw["micro_benchmark"]["datampi"],
        "small_vs_hadoop": 1.0 - 1.0 / raw["small_job"]["datampi"],
        "app_vs_hadoop": 1.0 - 1.0 / raw["application"]["datampi"],
        "net_vs_hadoop": raw["network"]["datampi"] / raw["network"]["hadoop"] - 1.0,
        "net_vs_spark": raw["network"]["datampi"] / raw["network"]["spark"] - 1.0,
        "cpu_pct_datampi": raw["cpu_efficiency"]["datampi"],
        "cpu_pct_spark": raw["cpu_efficiency"]["spark"],
        "cpu_pct_hadoop": raw["cpu_efficiency"]["hadoop"],
    }
    return RadarData(raw=raw, scores=scores, improvements=improvements)

"""Declarative experiment matrix: workload × engine × transport × mode × scale.

The paper's contribution is a *comparison matrix* — DataMPI vs Hadoop vs
Spark across BigDataBench workloads at several data scales — not any
single workload.  An :class:`ExperimentSpec` declares such a matrix; the
:class:`~repro.experiments.matrix.MatrixRunner` executes every cell and
the :class:`~repro.experiments.reportbuilder.ReportBuilder` renders the
paper's figures from the recorded results.

Engines
-------

``datampi``
    The real O/A superstep stack (``repro.datampi``): functional runs
    with exact byte counters, on any transport and execution mode.
``hadoop-model``
    Hadoop's execution pattern on the reproduction's engines: common
    cells run the functional MapReduce engine (``repro.hadoop``);
    iterative cells replay the one-job-per-iteration pattern (a fresh
    world per superstep, no cross-iteration cache — Mahout's structure).
    Modeled cluster-scale seconds come from ``perfmodels.HadoopModel``.
``spark-model``
    Common cells run the functional RDD engine (``repro.spark``);
    iterative cells iterate over a cached RDD.  Modeled seconds come
    from ``perfmodels.SparkModel``.  Byte counters are not instrumented
    on this engine, so bytes-moved cells report ``None``.

Every engine executes a cell on the *same generated input* (same seed,
same scale), so cross-engine output checksums must agree — the matrix is
a correctness check as much as a measurement.

Example::

    >>> from repro.experiments.spec import quick_spec
    >>> spec = quick_spec()
    >>> len(spec.cells) >= 8
    True
    >>> spec.cells[0].cell_id
    'wordcount.common.datampi.tiny.inline'
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.errors import ConfigError
from repro.common.units import GB
from repro.mpi.transport import available_transports

#: Engines a matrix cell can run on (see the module docstring).
MATRIX_ENGINES = ("datampi", "hadoop-model", "spark-model")

#: Execution modes each workload supports (mirrors the CLI's rules).
WORKLOAD_MODES = {
    "wordcount": ("common", "streaming"),
    "grep": ("common", "streaming"),
    "text_sort": ("common",),
    "normal_sort": ("common",),
    "kmeans": ("common", "iteration"),
    "naive_bayes": ("common", "iteration"),
}

#: Workloads an engine cannot run.  The paper's BigDataBench release has
#: no Spark Naive Bayes ("the latest BigDataBench lacks the
#: implementation of Naive Bayes in Spark", Section 4.6), and the
#: reproduction mirrors that hole rather than inventing a baseline.
ENGINE_EXCLUSIONS = {
    "spark-model": ("naive_bayes",),
}

#: Workload name the analytical performance models use for a matrix workload.
MODEL_WORKLOADS = {
    "wordcount": "wordcount",
    "grep": "grep",
    "text_sort": "text_sort",
    "normal_sort": "normal_sort",
    "kmeans": "kmeans",
    "naive_bayes": "naive_bayes",
}

#: Analytical model behind each engine.
MODEL_FRAMEWORKS = {
    "datampi": "datampi",
    "hadoop-model": "hadoop",
    "spark-model": "spark",
}


@dataclass(frozen=True)
class DataScale:
    """One point on the matrix's data-scale axis.

    ``lines``/``vectors``/``docs`` size the *functional* input (what the
    real jobs process); ``paper_bytes`` is the cluster-scale input size
    fed to the analytical models so each cell also reports the
    paper-testbed seconds for its scale.
    """

    name: str
    lines: int
    vectors: int
    paper_bytes: int
    #: Labeled documents the Naive Bayes cells train on.
    docs: int = 30

    def __post_init__(self) -> None:
        if self.lines < 1 or self.vectors < 1 or self.paper_bytes < 1 \
                or self.docs < 1:
            raise ConfigError(f"degenerate data scale {self!r}")


#: The built-in scales.  ``tiny``/``small`` keep the quick matrix under a
#: few seconds; ``medium``/``large`` exist so full runs show more decades
#: (``large`` reaches the 128GB upper end of the paper's Figure 3 sweeps).
SCALES = {
    "tiny": DataScale("tiny", lines=240, vectors=60, paper_bytes=8 * GB,
                      docs=24),
    "small": DataScale("small", lines=720, vectors=120, paper_bytes=32 * GB,
                       docs=48),
    "medium": DataScale("medium", lines=2400, vectors=240, paper_bytes=64 * GB,
                        docs=96),
    "large": DataScale("large", lines=4800, vectors=480, paper_bytes=128 * GB,
                       docs=192),
}


@dataclass(frozen=True)
class CellSpec:
    """One cell of the matrix: a single (workload, mode, engine, scale,
    transport) execution."""

    workload: str
    mode: str
    engine: str
    scale: str
    #: IPC backend for the ``datampi`` engine; ``None`` on model engines
    #: (they do not run over the MPI substrate).
    transport: str | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_MODES:
            raise ConfigError(
                f"unknown matrix workload {self.workload!r}; "
                f"available: {sorted(WORKLOAD_MODES)}"
            )
        if self.engine not in MATRIX_ENGINES:
            raise ConfigError(
                f"unknown matrix engine {self.engine!r}; "
                f"available: {MATRIX_ENGINES}"
            )
        if self.mode not in WORKLOAD_MODES[self.workload]:
            raise ConfigError(
                f"workload {self.workload!r} supports modes "
                f"{WORKLOAD_MODES[self.workload]}, got {self.mode!r}"
            )
        if self.workload in ENGINE_EXCLUSIONS.get(self.engine, ()):
            raise ConfigError(
                f"engine {self.engine!r} has no {self.workload!r} "
                f"implementation (the paper's BigDataBench release lacks it)"
            )
        if self.mode == "streaming" and self.engine != "datampi":
            raise ConfigError(
                f"streaming cells need the datampi engine, got {self.engine!r}"
            )
        if self.scale not in SCALES:
            raise ConfigError(
                f"unknown data scale {self.scale!r}; available: {sorted(SCALES)}"
            )
        if self.engine != "datampi":
            if self.transport is not None:
                raise ConfigError(
                    f"engine {self.engine!r} does not run over a transport"
                )
        elif self.transport is not None and \
                self.transport not in available_transports():
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                f"available: {available_transports()}"
            )

    @property
    def cell_id(self) -> str:
        """Stable identifier, also the checkpoint file stem."""
        parts = [self.workload, self.mode, self.engine, self.scale]
        if self.transport is not None:
            parts.append(self.transport)
        return ".".join(parts)

    @property
    def data_scale(self) -> DataScale:
        return SCALES[self.scale]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "engine": self.engine,
            "scale": self.scale,
            "transport": self.transport,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        return cls(
            workload=data["workload"],
            mode=data["mode"],
            engine=data["engine"],
            scale=data["scale"],
            transport=data.get("transport"),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, ordered collection of matrix cells."""

    name: str
    cells: tuple[CellSpec, ...] = field(default_factory=tuple)
    #: Input-generation seed; identical across cells so every engine
    #: processes the same data and output checksums are comparable.
    seed: int = 7
    #: O/A (and map/reduce) parallelism of the functional runs.
    parallelism: int = 3
    #: Superstep budget for iterative cells.
    max_iterations: int = 4
    #: Per-rank receive-store memory budget for the ``datampi`` cells
    #: (``StorageConfig.spill_threshold``); chunks past it spill to
    #: segment files and the cells report ``bytes_spilled``/``spill_reads``.
    #: ``None`` keeps the default (effectively in-memory) budget.
    spill_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("experiment spec needs a name")
        if not self.cells:
            raise ConfigError(f"experiment spec {self.name!r} has no cells")
        ids = [cell.cell_id for cell in self.cells]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ConfigError(f"duplicate matrix cells: {dupes}")
        if self.parallelism < 1 or self.max_iterations < 1:
            raise ConfigError("parallelism and max_iterations must be >= 1")
        if self.spill_budget_bytes is not None and self.spill_budget_bytes < 1:
            raise ConfigError("spill_budget_bytes must be positive or None")

    @classmethod
    def matrix(
        cls,
        name: str,
        workloads: Sequence[str],
        engines: Sequence[str],
        modes: Sequence[str],
        scales: Sequence[str],
        transport: str | None = "inline",
        **kwargs,
    ) -> "ExperimentSpec":
        """Build the filtered product of the axes.

        Invalid combinations (streaming on a model engine, a mode a
        workload does not support) are silently skipped, so callers can
        pass the full axes and get only the runnable cells.
        """
        cells: list[CellSpec] = []
        for workload in workloads:
            for mode in modes:
                if mode not in WORKLOAD_MODES.get(workload, ()):
                    continue
                for engine in engines:
                    if mode == "streaming" and engine != "datampi":
                        continue
                    if workload in ENGINE_EXCLUSIONS.get(engine, ()):
                        continue
                    for scale in scales:
                        cells.append(CellSpec(
                            workload=workload, mode=mode, engine=engine,
                            scale=scale,
                            transport=transport if engine == "datampi" else None,
                        ))
        return cls(name=name, cells=tuple(cells), **kwargs)

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "parallelism": self.parallelism,
            "max_iterations": self.max_iterations,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        # Only recorded when set, so pre-existing specs (and their
        # checkpoint-guarding spec_hash) are unchanged by the field.
        if self.spill_budget_bytes is not None:
            data["spill_budget_bytes"] = self.spill_budget_bytes
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(
            name=data["name"],
            seed=data.get("seed", 7),
            parallelism=data.get("parallelism", 3),
            max_iterations=data.get("max_iterations", 4),
            spill_budget_bytes=data.get("spill_budget_bytes"),
            cells=tuple(CellSpec.from_dict(c) for c in data["cells"]),
        )

    @property
    def spec_hash(self) -> str:
        """Content hash guarding checkpoint resume against spec edits."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def iterative_cells(self) -> list[CellSpec]:
        return [cell for cell in self.cells if cell.mode == "iteration"]


# -- presets -------------------------------------------------------------------


def quick_spec(transport: str | None = "inline") -> ExperimentSpec:
    """The acceptance matrix: 4 workloads × 3 engines × 2 scales.

    WordCount and Normal Sort (common), K-means and Naive Bayes
    (common + iteration) across all three engines at two data scales —
    the smallest matrix that still exhibits the paper's headline effects
    (communication efficiency, the iterative input-reuse gap, and the
    populated bytes-vs-spark comparison) while staying a few seconds of
    wall clock.
    """
    return ExperimentSpec.matrix(
        "quick",
        workloads=("wordcount", "kmeans", "naive_bayes", "normal_sort"),
        engines=MATRIX_ENGINES,
        modes=("common", "iteration"),
        scales=("tiny", "small"),
        transport=transport,
    )


def full_spec(transport: str | None = "inline") -> ExperimentSpec:
    """Every workload × engine × mode × scale combination that runs."""
    return ExperimentSpec.matrix(
        "full",
        workloads=tuple(WORKLOAD_MODES),
        engines=MATRIX_ENGINES,
        modes=("common", "iteration", "streaming"),
        scales=("tiny", "small", "medium", "large"),
        transport=transport,
    )


PRESET_SPECS = {
    "quick": quick_spec,
    "full": full_spec,
}


def get_spec(name: str, transport: str | None = "inline") -> ExperimentSpec:
    """Resolve a preset spec by name."""
    try:
        factory = PRESET_SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment spec {name!r}; available: {sorted(PRESET_SPECS)}"
        ) from None
    return factory(transport=transport)


def cells_table(
    spec: ExperimentSpec, status: dict[str, str] | None = None
) -> Iterable[list[str]]:
    """Rows for ``repro experiment list``: one per cell.

    ``status`` (cell_id → ``done``/``failed``/``stale``/``pending``, as
    computed by :func:`repro.experiments.matrix.checkpoint_status`)
    appends a checkpoint-state column so a resumed run is inspectable
    without reading ``cells/`` by hand.
    """
    for cell in spec.cells:
        row = [
            cell.cell_id, cell.workload, cell.mode, cell.engine, cell.scale,
            cell.transport or "-",
        ]
        if status is not None:
            row.append(status.get(cell.cell_id, "pending"))
        yield row

"""Rendering helpers: figure data -> text tables and markdown.

Used by the benchmarks (to print the rows each figure reports) and by
``scripts/make_experiments_md.py`` (to regenerate EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.units import GB, format_size
from repro.paperdata import improvement
from repro.perfmodels.runner import AveragedRun


def render_table(headers: list[str], rows: Iterable[Iterable[object]]) -> str:
    """Plain-text table with column alignment."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def sweep_rows(series: Mapping[str, Mapping[int, AveragedRun]]) -> list[list[str]]:
    """Rows for a Figure 3/6 sweep: size, per-framework seconds, improvement."""
    frameworks = [fw for fw in ("hadoop", "spark", "datampi") if fw in series]
    sizes = sorted(next(iter(series.values())).keys())
    rows = []
    for size in sizes:
        row: list[str] = [format_size(size)]
        for framework in frameworks:
            run = series[framework].get(size)
            if run is None:
                row.append("-")
            elif run.failed:
                row.append("OOM")
            else:
                row.append(f"{run.elapsed_sec:.0f}s")
        hadoop = series.get("hadoop", {}).get(size)
        datampi = series.get("datampi", {}).get(size)
        if hadoop and datampi and hadoop.succeeded and datampi.succeeded:
            row.append(f"{100 * improvement(hadoop.elapsed_sec, datampi.elapsed_sec):.0f}%")
        else:
            row.append("-")
        rows.append(row)
    return rows


def sweep_table(series: Mapping[str, Mapping[int, AveragedRun]]) -> str:
    frameworks = [fw for fw in ("hadoop", "spark", "datampi") if fw in series]
    headers = ["size"] + frameworks + ["DataMPI vs Hadoop"]
    return render_table(headers, sweep_rows(series))


def improvement_range(series: Mapping[str, Mapping[int, AveragedRun]],
                      baseline: str = "hadoop") -> tuple[float, float]:
    """(min, max) DataMPI improvement over ``baseline`` across the sweep."""
    values = []
    for size, run in series[baseline].items():
        datampi = series["datampi"].get(size)
        if datampi is None or run.failed or datampi.failed:
            continue
        values.append(improvement(run.elapsed_sec, datampi.elapsed_sec))
    if not values:
        raise ValueError(f"no comparable points against {baseline}")
    return min(values), max(values)


def mean_improvement(series: Mapping[str, Mapping[int, AveragedRun]],
                     baseline: str = "hadoop") -> float:
    low, high = improvement_range(series, baseline)
    values = []
    for size, run in series[baseline].items():
        datampi = series["datampi"].get(size)
        if datampi is None or run.failed or datampi.failed:
            continue
        values.append(improvement(run.elapsed_sec, datampi.elapsed_sec))
    return sum(values) / len(values)


def profile_rows(profiles) -> list[list[str]]:
    """Rows for a Figure 4 panel comparison."""
    rows = []
    for framework in ("hadoop", "spark", "datampi"):
        profile = profiles[framework]
        rows.append([
            framework,
            f"{profile.elapsed_sec:.0f}s",
            f"{profile.cpu_pct:.0f}%",
            f"{profile.iowait_pct:.0f}%",
            f"{profile.disk_read_phase_mbps:.0f}",
            f"{profile.disk_write_mbps:.0f}",
            f"{profile.net_mbps:.0f}",
            f"{profile.mem_gb:.1f}",
        ])
    return rows


def profile_table(profiles) -> str:
    headers = ["framework", "time", "cpu", "iowait",
               "read MB/s (phase)", "write MB/s", "net MB/s", "mem GB"]
    return render_table(headers, profile_rows(profiles))

"""MPI substrate: ranks, point-to-point messaging, collectives, transports."""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, Message, World
from repro.mpi.launcher import mpi_run
from repro.mpi.transport import (
    InlineTransport,
    ShmTransport,
    TcpTransport,
    ThreadTransport,
    Transport,
    available_transports,
    get_transport,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "InlineTransport",
    "Message",
    "ShmTransport",
    "TcpTransport",
    "ThreadTransport",
    "Transport",
    "World",
    "available_transports",
    "get_transport",
    "mpi_run",
]

"""In-process MPI substrate: ranks, point-to-point messaging, collectives."""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, Message, World
from repro.mpi.launcher import mpi_run

__all__ = ["ANY_SOURCE", "ANY_TAG", "Comm", "Message", "World", "mpi_run"]

"""Shared-memory transport: ranks are OS processes, payloads ride rings.

This backend removes the GIL from the hot path the paper is about.  Each
rank is a forked process (fork, not spawn, so task closures need no
pickling); every ordered (sender, receiver) pair gets

* a **ring buffer** in one ``multiprocessing.shared_memory`` segment for
  ``bytes`` payloads — the encoded key-value chunks DataMPI moves — so
  bulk data crosses the process boundary without ever passing through
  pickle; small chunks are *batched* into one ring slot
  (:data:`BATCH_ITEM_MAX` / :data:`BATCH_FLUSH_BYTES`) so a stream of
  kilobyte chunks costs one descriptor and one copy-out per slot, and
  the receive side hands the merge read-only ``memoryview`` slices that
  decode in place;
* a descriptor **pipe** carrying typed binary frames (the
  :mod:`repro.mpi.transport.codec` header — no pickled tuples), which
  doubles as the channel for oversized or non-bytes payloads
  (collectives' Python objects, EOF markers).

The single-producer/single-consumer ring keeps MPI's per-(source,
destination) non-overtaking guarantee for free: descriptors leave the
pipe in send order, ring space is reclaimed in the same order, and a
batch preserves the order of the sends it coalesced.  Pending batches
are flushed before any blocking operation (receive, barrier) and when a
rank finishes, so batching can never deadlock a waiting peer.
"""

from __future__ import annotations

import multiprocessing
import struct
import threading
import time
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable

from repro.common.errors import MPIError
from repro.mpi.transport.base import (
    JOIN_TIMEOUT,
    Endpoint,
    Message,
    Transport,
    match,
    raise_rank_errors,
    register_transport,
)
from repro.mpi.transport.codec import (
    FMT_BATCH,
    FMT_RAW,
    WIRE_HEADER,
    as_buffer,
    decode_batch,
    decode_payload,
    encode_batch,
    encode_payload,
)
from repro.mpi.transport.thread import _PoisonedError

#: Per-(sender, receiver) ring capacity for chunk payloads.
DEFAULT_RING_BYTES = 1 << 20

#: ``bytes`` payloads at most this large are coalesced into one batched
#: ring slot instead of being written (and descriptor-signalled) one by
#: one.  Clamped to the ring capacity for small test rings.
BATCH_ITEM_MAX = 16 * 1024

#: Flush an open batch once its encoded size reaches this many bytes.
BATCH_FLUSH_BYTES = 64 * 1024

_HEADER = struct.Struct(">QQ")  # monotonic (head, tail) byte counters

_BATCH_ITEM_OVERHEAD = struct.calcsize(">qI")  # codec's per-item header

#: Descriptor frame kinds on the data pipes (codec WIRE_HEADER.kind).
_KIND_INLINE = 1  #: payload rides the pipe frame itself (fmt says how)
_KIND_RING = 2    #: payload is in the ring at (offset, length)
_KIND_BATCH = 3   #: a batch of small payloads is in the ring

#: Ring reference carried by _KIND_RING / _KIND_BATCH descriptors.
_RING_REF = struct.Struct(">QQ")

_CTRL_ABORT = b"ABRT"


class ShmRing:
    """SPSC byte ring over one shared-memory segment.

    ``head``/``tail`` are monotonically increasing counters stored in the
    segment header and guarded by a fork-shared condition; payloads are
    contiguous (a write that would straddle the end skips to offset 0).
    """

    def __init__(self, ctx, capacity: int):
        if capacity < 1:
            raise MPIError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HEADER.size + capacity
        )
        self._shm.buf[: _HEADER.size] = _HEADER.pack(0, 0)
        self._cond = ctx.Condition()

    # -- header helpers (call with the condition held) -------------------------

    def _counters(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self._shm.buf, 0)

    def _store(self, head: int, tail: int) -> None:
        self._shm.buf[: _HEADER.size] = _HEADER.pack(head, tail)

    # -- producer --------------------------------------------------------------

    def write(self, data, timeout: float) -> int:
        """Copy ``data`` (any bytes-like) into the ring; returns its offset.
        Blocks until the consumer has freed enough space; raises MPIError
        past ``timeout``."""
        data = as_buffer(data)
        length = data.nbytes
        if length > self.capacity:
            raise MPIError(
                f"payload of {length} bytes exceeds ring capacity {self.capacity}"
            )
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                head, tail = self._counters()
                position = head % self.capacity
                # A payload never wraps: skip the tail-end remainder if short.
                skip = 0 if length <= self.capacity - position else self.capacity - position
                if head + skip + length - tail <= self.capacity:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    raise MPIError(
                        f"ring write stalled {timeout}s waiting for "
                        f"{length} free bytes (receiver not draining?)"
                    )
            head += skip
            position = head % self.capacity
            start = _HEADER.size + position
            self._shm.buf[start : start + length] = data
            self._store(head + length, tail)
            return position

    # -- consumer --------------------------------------------------------------

    def read(self, position: int, length: int) -> bytes:
        """Copy one payload out and release its space (consumption happens in
        descriptor order, which equals allocation order for an SPSC ring)."""
        start = _HEADER.size + position
        data = bytes(self._shm.buf[start : start + length])
        with self._cond:
            head, tail = self._counters()
            tail_position = tail % self.capacity
            if tail_position != position:
                # The producer skipped the tail-end remainder to keep the
                # payload contiguous; release that dead space too.
                tail += self.capacity - tail_position
            self._store(head, tail + length)
            self._cond.notify_all()
        return data

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmEndpoint(Endpoint):
    """One rank's process-local handle on the pipes-and-rings fabric."""

    def __init__(
        self,
        rank: int,
        size: int,
        send_conns: list[Connection | None],   # [dest] -> writer end
        recv_conns: list[Connection | None],   # [source] -> reader end
        send_rings: list[ShmRing | None],      # [dest] -> this rank's outgoing ring
        recv_rings: list[ShmRing | None],      # [source] -> incoming ring
        control: Connection,
        barrier,
    ):
        self.rank = rank
        self.size = size
        self._send_conns = send_conns
        self._recv_conns = recv_conns
        self._send_rings = send_rings
        self._recv_rings = recv_rings
        self._control = control
        self._barrier = barrier
        self._stash: list[Message] = []
        self._source_of = {id(conn): s for s, conn in enumerate(recv_conns) if conn}
        self._aborted = False
        # Per-destination batch of small bytes payloads awaiting one ring
        # slot.  Thresholds clamp to the ring capacity so tiny test rings
        # still batch (or degrade to per-payload slots) correctly.
        capacity = next((r.capacity for r in send_rings if r is not None), 0)
        self._batch_item_max = min(
            BATCH_ITEM_MAX, max(0, capacity - _BATCH_ITEM_OVERHEAD)
        )
        self._batch_flush_bytes = min(BATCH_FLUSH_BYTES, capacity)
        self._batch_items: list[list[tuple[int, memoryview]]] = [
            [] for _ in range(size)
        ]
        self._batch_bytes = [0] * size

    def send(self, dest: int, message: Message) -> None:
        if dest == self.rank:
            # Loopback: no process boundary to cross.
            self._stash.append(message)
            return
        payload = message.payload
        conn = self._send_conns[dest]
        assert conn is not None
        ring = self._send_rings[dest]
        if isinstance(payload, (bytes, bytearray, memoryview)):
            view = as_buffer(payload)
            length = view.nbytes
            if ring is not None and length <= self._batch_item_max:
                self._batch_add(dest, message.tag, view)
                return
            # FIFO: anything already batched for this peer goes first.
            self._flush_batch(dest)
            if ring is not None and length <= ring.capacity:
                offset = ring.write(view, JOIN_TIMEOUT)
                conn.send_bytes(
                    WIRE_HEADER.pack(_KIND_RING, FMT_RAW, self.rank,
                                     message.tag, _RING_REF.size)
                    + _RING_REF.pack(offset, length)
                )
                return
            # Larger than the ring: raw bytes ride the pipe frame itself.
            conn.send_bytes(b"".join([
                WIRE_HEADER.pack(_KIND_INLINE, FMT_RAW, self.rank,
                                 message.tag, length),
                view,
            ]))
            return
        self._flush_batch(dest)
        fmt, parts, total = encode_payload(payload)
        conn.send_bytes(b"".join([
            WIRE_HEADER.pack(_KIND_INLINE, fmt, self.rank,
                             message.tag, total),
            *parts,
        ]))

    # -- sender-side batching --------------------------------------------------

    def _batch_add(self, dest: int, tag: int, view: memoryview) -> None:
        cost = _BATCH_ITEM_OVERHEAD + view.nbytes
        items = self._batch_items[dest]
        ring = self._send_rings[dest]
        assert ring is not None
        if items and self._batch_bytes[dest] + cost > ring.capacity:
            self._flush_batch(dest)
            items = self._batch_items[dest]
        items.append((tag, view))
        self._batch_bytes[dest] += cost
        if self._batch_bytes[dest] >= self._batch_flush_bytes:
            self._flush_batch(dest)

    def _flush_batch(self, dest: int) -> None:
        items = self._batch_items[dest]
        if not items:
            return
        data = encode_batch(items)
        self._batch_items[dest] = []
        self._batch_bytes[dest] = 0
        ring = self._send_rings[dest]
        conn = self._send_conns[dest]
        assert ring is not None and conn is not None
        offset = ring.write(data, JOIN_TIMEOUT)
        conn.send_bytes(
            WIRE_HEADER.pack(_KIND_BATCH, FMT_BATCH, self.rank, 0,
                             _RING_REF.size)
            + _RING_REF.pack(offset, len(data))
        )

    def flush_sends(self) -> None:
        """Push every pending batch out — called before any blocking
        operation and when the rank finishes, so no peer can wait on a
        payload parked in a local batch."""
        for dest, items in enumerate(self._batch_items):
            if items:
                self._flush_batch(dest)

    def recv(self, source: int, tag: int, timeout: float) -> Message:
        self.flush_sends()
        deadline = time.monotonic() + timeout
        while True:
            for index, message in enumerate(self._stash):
                if match(message, source, tag):
                    return self._stash.pop(index)
            if self._aborted:
                # A poison *symptom*, not a cause: raise the dedicated
                # class so the collector prefers the original rank error
                # (same rule as the thread and tcp backends).
                raise _PoisonedError(
                    f"rank {self.rank} aborted: a peer rank failed"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MPIError(
                    f"recv timed out after {timeout}s waiting for "
                    f"source={source} tag={tag}"
                )
            self._poll(remaining)

    def _poll(self, timeout: float) -> None:
        """Drain every readable connection into the stash (ring payloads are
        copied out immediately so ring space frees in order).

        Batched slots are read out of the ring once and split into
        read-only ``memoryview`` slices — one slice per message — so the
        A-side merge decodes records in place instead of copying each
        small chunk out individually.
        """
        conns = [c for c in self._recv_conns if c is not None] + [self._control]
        ready = connection_wait(conns, timeout)
        for conn in ready:
            if conn is self._control:
                self._control.recv_bytes()
                self._aborted = True
                continue
            source = self._source_of[id(conn)]
            raw = conn.recv_bytes()
            try:
                kind, fmt, _source, tag, length = WIRE_HEADER.unpack_from(raw)
            except struct.error as exc:
                raise MPIError(f"corrupt shm descriptor: {exc}") from exc
            body = memoryview(raw)[WIRE_HEADER.size:]
            if body.nbytes != length:
                raise MPIError(
                    f"corrupt shm descriptor: header claims {length} "
                    f"bytes, frame carries {body.nbytes}"
                )
            if kind == _KIND_RING:
                offset, size = _RING_REF.unpack(body)
                ring = self._recv_rings[source]
                assert ring is not None
                self._stash.append(Message(source, tag, ring.read(offset, size)))
            elif kind == _KIND_BATCH:
                offset, size = _RING_REF.unpack(body)
                ring = self._recv_rings[source]
                assert ring is not None
                for item_tag, payload in decode_batch(ring.read(offset, size)):
                    self._stash.append(Message(source, item_tag, payload))
            elif kind == _KIND_INLINE:
                payload: Any = decode_payload(fmt, body)
                self._stash.append(Message(source, tag, payload))
            else:
                raise MPIError(f"unknown shm descriptor kind {kind}")

    def barrier(self, timeout: float) -> None:
        self.flush_sends()
        try:
            self._barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError("barrier broken (peer died or timed out)") from exc

    def abort(self) -> None:
        self._barrier.abort()


def _destroy_rings(rings: list[list[ShmRing | None]]) -> None:
    """Close and unlink every ring, unconditionally.

    Unlink must not depend on a clean close: if ``close`` raises (e.g. a
    buffer still exported somewhere after an abort), skipping ``unlink``
    would leak the kernel object until reboot.  Each ring is destroyed
    independently so one bad ring cannot shadow the rest.
    """
    for row in rings:
        for ring in row:
            if ring is None:
                continue
            try:
                ring.close()
            except Exception:  # noqa: BLE001 - cleanup must reach unlink
                pass
            try:
                ring.unlink()
            except Exception:  # noqa: BLE001 - one bad ring must not
                pass           # shadow the rest (or the real rank error)


@register_transport
class ShmTransport(Transport):
    """Fork one process per rank; move chunks through shared-memory rings."""

    name = "shm"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES, fault_plan=None):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise MPIError(
                "shm transport needs the fork start method (unavailable on "
                "this platform); use the thread transport instead"
            )
        from repro.mpi import faultinject

        self.ring_bytes = ring_bytes
        # Ranks are real processes: kill rules hard-exit the child and
        # the parent reports "died without reporting a result" (fail
        # fast — only the tcp transport rebuilds worlds).
        self.fault_plan = faultinject.parse_fault_plan(fault_plan)
        self._ctx = multiprocessing.get_context("fork")

    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        from repro.mpi.comm import Comm

        if world_size < 1:
            raise MPIError(f"world size must be >= 1, got {world_size}")
        ctx = self._ctx

        # Fabric: rings[s][d] and data pipes carry s -> d traffic.  All of
        # it is built *inside* the try below: a failure mid-construction
        # (shared-memory space or file descriptors exhausted) must still
        # unlink every segment already created, or the kernel keeps them
        # until reboot and the resource tracker complains at exit.
        rings: list[list[ShmRing | None]] = []
        data_readers: list[list[Connection | None]] = [
            [None] * world_size for _ in range(world_size)
        ]
        data_writers: list[list[Connection | None]] = [
            [None] * world_size for _ in range(world_size)
        ]
        control_pipes: list[tuple[Connection, Connection]] = []
        result_pipes: list[tuple[Connection, Connection]] = []
        processes: list[Any] = []

        def child(rank: int) -> None:
            from repro.mpi import faultinject

            faultinject.install(self.fault_plan)
            faultinject.mark_killable()
            endpoint = ShmEndpoint(
                rank=rank,
                size=world_size,
                send_conns=[data_writers[rank][d] for d in range(world_size)],
                recv_conns=[data_readers[s][rank] for s in range(world_size)],
                send_rings=rings[rank],
                recv_rings=[rings[s][rank] for s in range(world_size)],
                control=control_pipes[rank][0],
                barrier=barrier,
            )
            comm = Comm.from_endpoint(endpoint)
            result_conn = result_pipes[rank][1]
            try:
                faultinject.fire("rendezvous", rank=rank)
                result = main(comm, *args)
                # Anything still parked in a send batch must reach its
                # peer before this rank reports success and exits.
                endpoint.flush_sends()
                outcome = ("ok", result)
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                barrier.abort()
                outcome = ("err", exc)
            try:
                result_conn.send(outcome)
            except Exception:
                # Unpicklable result or exception: degrade to its repr.
                result_conn.send(("err", MPIError(f"rank {rank}: {outcome[1]!r}")))

        try:
            for s in range(world_size):
                row: list[ShmRing | None] = []
                rings.append(row)  # appended first: a failed row still cleans up
                for d in range(world_size):
                    row.append(ShmRing(ctx, self.ring_bytes) if s != d else None)
            for s in range(world_size):
                for d in range(world_size):
                    if s == d:
                        continue
                    reader, writer = ctx.Pipe(duplex=False)
                    data_readers[s][d] = reader  # read end, owned by rank d
                    data_writers[s][d] = writer  # write end, owned by rank s
            control_pipes.extend(ctx.Pipe(duplex=False) for _ in range(world_size))
            result_pipes.extend(ctx.Pipe(duplex=False) for _ in range(world_size))
            barrier = ctx.Barrier(world_size)
            processes.extend(
                ctx.Process(target=child, args=(rank,),
                            name=f"mpi-rank-{rank}", daemon=True)
                for rank in range(world_size)
            )
            for process in processes:
                process.start()
            results, errors = self._collect(
                [conn for conn, _ in result_pipes],
                [writer for _, writer in control_pipes],
                processes,
                barrier,
                timeout,
            )
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(5.0)
            _destroy_rings(rings)
            for grid in (data_readers, data_writers):
                for row in grid:
                    for conn in row:
                        if conn is not None:
                            conn.close()
            for reader, writer in control_pipes + result_pipes:
                reader.close()
                writer.close()
        # Poison-induced errors are symptoms of another rank's death;
        # report the original failure when one exists.
        real = [
            (rank, exc)
            for rank, exc in errors
            if not isinstance(exc, _PoisonedError)
        ]
        raise_rank_errors(real or errors)
        return results

    @staticmethod
    def _collect(result_conns, control_writers, processes, barrier, timeout):
        """Gather per-rank outcomes; on first failure poison every rank.

        Watches each child's process sentinel alongside its result pipe:
        every child inherits every pipe's write end, so a hard-killed rank
        never EOFs its pipe — only the sentinel reveals the death.
        """
        world_size = len(result_conns)
        results: list[Any] = [None] * world_size
        errors: list[tuple[int, BaseException]] = []
        rank_of = {id(conn): rank for rank, conn in enumerate(result_conns)}
        rank_of_sentinel = {
            process.sentinel: rank for rank, process in enumerate(processes)
        }
        pending = set(result_conns)
        poisoned = False

        def record(rank: int, status: str, value: Any) -> None:
            nonlocal poisoned
            pending.discard(result_conns[rank])
            if status == "ok":
                results[rank] = value
                return
            errors.append((rank, value))
            if not poisoned:
                poisoned = True
                barrier.abort()
                for writer in control_writers:
                    try:
                        writer.send_bytes(_CTRL_ABORT)
                    except (BrokenPipeError, OSError):
                        pass

        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                stuck = sorted(rank_of[id(conn)] for conn in pending)
                raise MPIError(f"ranks {stuck} did not finish in {timeout}s")
            sentinels = [
                processes[rank_of[id(conn)]].sentinel for conn in pending
            ]
            ready = connection_wait(list(pending) + sentinels, remaining)
            for item in ready:
                if item in rank_of_sentinel:
                    rank = rank_of_sentinel[item]
                    conn = result_conns[rank]
                    if conn not in pending:
                        continue
                    # The child exited: take a result it managed to send,
                    # otherwise report the death instead of waiting for an
                    # EOF that can never come.
                    if conn.poll(0):
                        status, value = conn.recv()
                    else:
                        status, value = "err", MPIError(
                            f"rank {rank} died without reporting a result "
                            f"(exit code {processes[rank].exitcode})"
                        )
                    record(rank, status, value)
                    continue
                if item not in pending:
                    continue  # already handled via its sentinel this round
                rank = rank_of[id(item)]
                try:
                    status, value = item.recv()
                except EOFError:
                    status, value = "err", MPIError(
                        f"rank {rank} died without reporting a result"
                    )
                record(rank, status, value)
        return results, errors

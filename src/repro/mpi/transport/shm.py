"""Shared-memory transport: ranks are OS processes, payloads ride rings.

This backend removes the GIL from the hot path the paper is about.  Each
rank is a forked process (fork, not spawn, so task closures need no
pickling); every ordered (sender, receiver) pair gets

* a **ring buffer** in one ``multiprocessing.shared_memory`` segment for
  ``bytes`` payloads — the encoded key-value chunks DataMPI moves — so
  bulk data crosses the process boundary with one copy in and one copy
  out, never through a pickle of the descriptor pipe;
* a descriptor **pipe** carrying ``(tag, where-is-the-payload)`` tuples,
  which doubles as the channel for small or non-bytes payloads
  (collectives' Python objects, EOF markers).

The single-producer/single-consumer ring keeps MPI's per-(source,
destination) non-overtaking guarantee for free: descriptors leave the
pipe in send order, and ring space is reclaimed in the same order.
"""

from __future__ import annotations

import multiprocessing
import struct
import threading
import time
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable

from repro.common.errors import MPIError
from repro.mpi.transport.base import (
    JOIN_TIMEOUT,
    Endpoint,
    Message,
    Transport,
    match,
    raise_rank_errors,
    register_transport,
)
from repro.mpi.transport.thread import _PoisonedError

#: Per-(sender, receiver) ring capacity for chunk payloads.
DEFAULT_RING_BYTES = 1 << 20

#: ``bytes`` payloads at least this large travel through the ring; smaller
#: ones (and non-bytes objects) are cheaper pickled straight down the pipe.
RING_MIN_BYTES = 256

_HEADER = struct.Struct(">QQ")  # monotonic (head, tail) byte counters

_KIND_INLINE = 0
_KIND_RING = 1
_CTRL_ABORT = "abort"


class ShmRing:
    """SPSC byte ring over one shared-memory segment.

    ``head``/``tail`` are monotonically increasing counters stored in the
    segment header and guarded by a fork-shared condition; payloads are
    contiguous (a write that would straddle the end skips to offset 0).
    """

    def __init__(self, ctx, capacity: int):
        if capacity < 1:
            raise MPIError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HEADER.size + capacity
        )
        self._shm.buf[: _HEADER.size] = _HEADER.pack(0, 0)
        self._cond = ctx.Condition()

    # -- header helpers (call with the condition held) -------------------------

    def _counters(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self._shm.buf, 0)

    def _store(self, head: int, tail: int) -> None:
        self._shm.buf[: _HEADER.size] = _HEADER.pack(head, tail)

    # -- producer --------------------------------------------------------------

    def write(self, data: bytes, timeout: float) -> int:
        """Copy ``data`` into the ring; returns its offset.  Blocks until the
        consumer has freed enough space; raises MPIError past ``timeout``."""
        length = len(data)
        if length > self.capacity:
            raise MPIError(
                f"payload of {length} bytes exceeds ring capacity {self.capacity}"
            )
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                head, tail = self._counters()
                position = head % self.capacity
                # A payload never wraps: skip the tail-end remainder if short.
                skip = 0 if length <= self.capacity - position else self.capacity - position
                if head + skip + length - tail <= self.capacity:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    raise MPIError(
                        f"ring write stalled {timeout}s waiting for "
                        f"{length} free bytes (receiver not draining?)"
                    )
            head += skip
            position = head % self.capacity
            start = _HEADER.size + position
            self._shm.buf[start : start + length] = data
            self._store(head + length, tail)
            return position

    # -- consumer --------------------------------------------------------------

    def read(self, position: int, length: int) -> bytes:
        """Copy one payload out and release its space (consumption happens in
        descriptor order, which equals allocation order for an SPSC ring)."""
        start = _HEADER.size + position
        data = bytes(self._shm.buf[start : start + length])
        with self._cond:
            head, tail = self._counters()
            tail_position = tail % self.capacity
            if tail_position != position:
                # The producer skipped the tail-end remainder to keep the
                # payload contiguous; release that dead space too.
                tail += self.capacity - tail_position
            self._store(head, tail + length)
            self._cond.notify_all()
        return data

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmEndpoint(Endpoint):
    """One rank's process-local handle on the pipes-and-rings fabric."""

    def __init__(
        self,
        rank: int,
        size: int,
        send_conns: list[Connection | None],   # [dest] -> writer end
        recv_conns: list[Connection | None],   # [source] -> reader end
        send_rings: list[ShmRing | None],      # [dest] -> this rank's outgoing ring
        recv_rings: list[ShmRing | None],      # [source] -> incoming ring
        control: Connection,
        barrier,
    ):
        self.rank = rank
        self.size = size
        self._send_conns = send_conns
        self._recv_conns = recv_conns
        self._send_rings = send_rings
        self._recv_rings = recv_rings
        self._control = control
        self._barrier = barrier
        self._stash: list[Message] = []
        self._source_of = {id(conn): s for s, conn in enumerate(recv_conns) if conn}
        self._aborted = False

    def send(self, dest: int, message: Message) -> None:
        if dest == self.rank:
            # Loopback: no process boundary to cross.
            self._stash.append(message)
            return
        payload = message.payload
        conn = self._send_conns[dest]
        assert conn is not None
        ring = self._send_rings[dest]
        if isinstance(payload, (bytearray, memoryview)):
            # Normalise to bytes up front: len(memoryview) counts items, not
            # bytes, and a memoryview cannot be pickled down the inline path.
            payload = bytes(payload)
        if (
            ring is not None
            and isinstance(payload, bytes)
            and RING_MIN_BYTES <= len(payload) <= ring.capacity
        ):
            position = ring.write(payload, JOIN_TIMEOUT)
            conn.send((_KIND_RING, message.tag, position, len(payload)))
        else:
            conn.send((_KIND_INLINE, message.tag, payload))

    def recv(self, source: int, tag: int, timeout: float) -> Message:
        deadline = time.monotonic() + timeout
        while True:
            for index, message in enumerate(self._stash):
                if match(message, source, tag):
                    return self._stash.pop(index)
            if self._aborted:
                # A poison *symptom*, not a cause: raise the dedicated
                # class so the collector prefers the original rank error
                # (same rule as the thread and tcp backends).
                raise _PoisonedError(
                    f"rank {self.rank} aborted: a peer rank failed"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MPIError(
                    f"recv timed out after {timeout}s waiting for "
                    f"source={source} tag={tag}"
                )
            self._poll(remaining)

    def _poll(self, timeout: float) -> None:
        """Drain every readable connection into the stash (ring payloads are
        copied out immediately so ring space frees in order)."""
        conns = [c for c in self._recv_conns if c is not None] + [self._control]
        ready = connection_wait(conns, timeout)
        for conn in ready:
            if conn is self._control:
                self._control.recv()
                self._aborted = True
                continue
            source = self._source_of[id(conn)]
            descriptor = conn.recv()
            kind = descriptor[0]
            if kind == _KIND_RING:
                _, tag, position, length = descriptor
                ring = self._recv_rings[source]
                assert ring is not None
                payload: Any = ring.read(position, length)
            else:
                _, tag, payload = descriptor
            self._stash.append(Message(source, tag, payload))

    def barrier(self, timeout: float) -> None:
        try:
            self._barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError("barrier broken (peer died or timed out)") from exc

    def abort(self) -> None:
        self._barrier.abort()


def _destroy_rings(rings: list[list[ShmRing | None]]) -> None:
    """Close and unlink every ring, unconditionally.

    Unlink must not depend on a clean close: if ``close`` raises (e.g. a
    buffer still exported somewhere after an abort), skipping ``unlink``
    would leak the kernel object until reboot.  Each ring is destroyed
    independently so one bad ring cannot shadow the rest.
    """
    for row in rings:
        for ring in row:
            if ring is None:
                continue
            try:
                ring.close()
            except Exception:  # noqa: BLE001 - cleanup must reach unlink
                pass
            try:
                ring.unlink()
            except Exception:  # noqa: BLE001 - one bad ring must not
                pass           # shadow the rest (or the real rank error)


@register_transport
class ShmTransport(Transport):
    """Fork one process per rank; move chunks through shared-memory rings."""

    name = "shm"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise MPIError(
                "shm transport needs the fork start method (unavailable on "
                "this platform); use the thread transport instead"
            )
        self.ring_bytes = ring_bytes
        self._ctx = multiprocessing.get_context("fork")

    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        from repro.mpi.comm import Comm

        if world_size < 1:
            raise MPIError(f"world size must be >= 1, got {world_size}")
        ctx = self._ctx

        # Fabric: rings[s][d] and data pipes carry s -> d traffic.  All of
        # it is built *inside* the try below: a failure mid-construction
        # (shared-memory space or file descriptors exhausted) must still
        # unlink every segment already created, or the kernel keeps them
        # until reboot and the resource tracker complains at exit.
        rings: list[list[ShmRing | None]] = []
        data_readers: list[list[Connection | None]] = [
            [None] * world_size for _ in range(world_size)
        ]
        data_writers: list[list[Connection | None]] = [
            [None] * world_size for _ in range(world_size)
        ]
        control_pipes: list[tuple[Connection, Connection]] = []
        result_pipes: list[tuple[Connection, Connection]] = []
        processes: list[Any] = []

        def child(rank: int) -> None:
            endpoint = ShmEndpoint(
                rank=rank,
                size=world_size,
                send_conns=[data_writers[rank][d] for d in range(world_size)],
                recv_conns=[data_readers[s][rank] for s in range(world_size)],
                send_rings=rings[rank],
                recv_rings=[rings[s][rank] for s in range(world_size)],
                control=control_pipes[rank][0],
                barrier=barrier,
            )
            comm = Comm.from_endpoint(endpoint)
            result_conn = result_pipes[rank][1]
            try:
                outcome = ("ok", main(comm, *args))
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                barrier.abort()
                outcome = ("err", exc)
            try:
                result_conn.send(outcome)
            except Exception:
                # Unpicklable result or exception: degrade to its repr.
                result_conn.send(("err", MPIError(f"rank {rank}: {outcome[1]!r}")))

        try:
            for s in range(world_size):
                row: list[ShmRing | None] = []
                rings.append(row)  # appended first: a failed row still cleans up
                for d in range(world_size):
                    row.append(ShmRing(ctx, self.ring_bytes) if s != d else None)
            for s in range(world_size):
                for d in range(world_size):
                    if s == d:
                        continue
                    reader, writer = ctx.Pipe(duplex=False)
                    data_readers[s][d] = reader  # read end, owned by rank d
                    data_writers[s][d] = writer  # write end, owned by rank s
            control_pipes.extend(ctx.Pipe(duplex=False) for _ in range(world_size))
            result_pipes.extend(ctx.Pipe(duplex=False) for _ in range(world_size))
            barrier = ctx.Barrier(world_size)
            processes.extend(
                ctx.Process(target=child, args=(rank,),
                            name=f"mpi-rank-{rank}", daemon=True)
                for rank in range(world_size)
            )
            for process in processes:
                process.start()
            results, errors = self._collect(
                [conn for conn, _ in result_pipes],
                [writer for _, writer in control_pipes],
                processes,
                barrier,
                timeout,
            )
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(5.0)
            _destroy_rings(rings)
            for grid in (data_readers, data_writers):
                for row in grid:
                    for conn in row:
                        if conn is not None:
                            conn.close()
            for reader, writer in control_pipes + result_pipes:
                reader.close()
                writer.close()
        # Poison-induced errors are symptoms of another rank's death;
        # report the original failure when one exists.
        real = [
            (rank, exc)
            for rank, exc in errors
            if not isinstance(exc, _PoisonedError)
        ]
        raise_rank_errors(real or errors)
        return results

    @staticmethod
    def _collect(result_conns, control_writers, processes, barrier, timeout):
        """Gather per-rank outcomes; on first failure poison every rank.

        Watches each child's process sentinel alongside its result pipe:
        every child inherits every pipe's write end, so a hard-killed rank
        never EOFs its pipe — only the sentinel reveals the death.
        """
        world_size = len(result_conns)
        results: list[Any] = [None] * world_size
        errors: list[tuple[int, BaseException]] = []
        rank_of = {id(conn): rank for rank, conn in enumerate(result_conns)}
        rank_of_sentinel = {
            process.sentinel: rank for rank, process in enumerate(processes)
        }
        pending = set(result_conns)
        poisoned = False

        def record(rank: int, status: str, value: Any) -> None:
            nonlocal poisoned
            pending.discard(result_conns[rank])
            if status == "ok":
                results[rank] = value
                return
            errors.append((rank, value))
            if not poisoned:
                poisoned = True
                barrier.abort()
                for writer in control_writers:
                    try:
                        writer.send(_CTRL_ABORT)
                    except (BrokenPipeError, OSError):
                        pass

        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                stuck = sorted(rank_of[id(conn)] for conn in pending)
                raise MPIError(f"ranks {stuck} did not finish in {timeout}s")
            sentinels = [
                processes[rank_of[id(conn)]].sentinel for conn in pending
            ]
            ready = connection_wait(list(pending) + sentinels, remaining)
            for item in ready:
                if item in rank_of_sentinel:
                    rank = rank_of_sentinel[item]
                    conn = result_conns[rank]
                    if conn not in pending:
                        continue
                    # The child exited: take a result it managed to send,
                    # otherwise report the death instead of waiting for an
                    # EOF that can never come.
                    if conn.poll(0):
                        status, value = conn.recv()
                    else:
                        status, value = "err", MPIError(
                            f"rank {rank} died without reporting a result "
                            f"(exit code {processes[rank].exitcode})"
                        )
                    record(rank, status, value)
                    continue
                if item not in pending:
                    continue  # already handled via its sentinel this round
                rank = rank_of[id(item)]
                try:
                    status, value = item.recv()
                except EOFError:
                    status, value = "err", MPIError(
                        f"rank {rank} died without reporting a result"
                    )
                record(rank, status, value)
        return results, errors

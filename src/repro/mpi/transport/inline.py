"""Inline transport: deterministic cooperative scheduling for unit tests.

Ranks still get real call stacks (each runs on its own thread so blocking
``recv``/``barrier`` calls work unchanged), but a scheduler enforces that
exactly **one** rank executes at any moment and hands control off at
blocking points only, always resuming the lowest-numbered runnable rank.
Two consequences make this the right backend for tests:

* runs are fully deterministic — message arrival order, collective
  ordering, and interleavings never vary between executions;
* deadlock is detected *immediately* (no runnable rank left) instead of
  after ``RECV_TIMEOUT``, so a hanging test fails in milliseconds.

Like the thread backend, payloads move by reference (nothing is framed
or pickled); :meth:`repro.mpi.comm.Comm.send` snapshots mutable byte
buffers up front, so delivered payloads are immutable here too.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.common.errors import MPIError
from repro.mpi.transport.base import (
    JOIN_TIMEOUT,
    Endpoint,
    Message,
    Transport,
    match,
    raise_rank_errors,
    register_transport,
)

_START = "start"
_RUNNING = "running"
_RECV = "recv"
_BARRIER = "barrier"
_DONE = "done"
_ERROR = "error"


class _RankState:
    def __init__(self) -> None:
        self.state = _START
        self.want: tuple[int, int] | None = None  # (source, tag) when in recv
        self.arrived_gen = -1  # barrier generation this rank is waiting on
        self.gate = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.poison_error = False  # error was injected by deadlock poisoning


class _InlineWorld:
    """Shared scheduler state: mailboxes, rank states, the hand-off token."""

    def __init__(self, size: int):
        self.size = size
        self.mailboxes: list[list[Message]] = [[] for _ in range(size)]
        self.ranks = [_RankState() for _ in range(size)]
        self.sched_wake = threading.Event()
        self.barrier_gen = 0
        self.poisoned = False

    # -- called from rank threads (which hold the execution token) ------------

    def yield_to_scheduler(self, rank: int, state: str) -> None:
        """Block this rank and pass the token back; raises if poisoned."""
        record = self.ranks[rank]
        record.state = state
        record.gate.clear()
        self.sched_wake.set()
        record.gate.wait()
        record.state = _RUNNING
        if self.poisoned:
            record.poison_error = True
            raise MPIError(
                f"deadlock: rank {rank} blocked with no runnable peer "
                "(peer died or every rank is waiting)"
            )

    def take_match(self, rank: int, source: int, tag: int) -> Message | None:
        mailbox = self.mailboxes[rank]
        for index, message in enumerate(mailbox):
            if match(message, source, tag):
                return mailbox.pop(index)
        return None

    # -- called from the scheduler (caller) thread -----------------------------

    def runnable(self, rank: int) -> bool:
        record = self.ranks[rank]
        if record.state == _START:
            return True
        if record.state == _RECV:
            assert record.want is not None
            source, tag = record.want
            if self.poisoned:
                return True
            return any(match(m, source, tag) for m in self.mailboxes[rank])
        if record.state == _BARRIER:
            return self.poisoned or record.arrived_gen < self.barrier_gen
        return False

    def finished(self) -> bool:
        return all(r.state in (_DONE, _ERROR) for r in self.ranks)

    def maybe_release_barrier(self) -> None:
        arrived = sum(
            1
            for r in self.ranks
            if r.state == _BARRIER and r.arrived_gen == self.barrier_gen
        )
        if arrived == self.size:
            self.barrier_gen += 1


class InlineEndpoint(Endpoint):
    """One rank's cooperative handle; blocking ops yield to the scheduler."""

    def __init__(self, world: _InlineWorld, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size

    def send(self, dest: int, message: Message) -> None:
        # Non-blocking: the sender keeps the token, delivery order is the
        # (deterministic) program order of sends.
        self.world.mailboxes[dest].append(message)

    def recv(self, source: int, tag: int, timeout: float) -> Message:
        record = self.world.ranks[self.rank]
        while True:
            message = self.world.take_match(self.rank, source, tag)
            if message is not None:
                return message
            record.want = (source, tag)
            self.world.yield_to_scheduler(self.rank, _RECV)

    def barrier(self, timeout: float) -> None:
        record = self.world.ranks[self.rank]
        record.arrived_gen = self.world.barrier_gen
        self.world.yield_to_scheduler(self.rank, _BARRIER)

    def abort(self) -> None:
        self.world.poisoned = True


@register_transport
class InlineTransport(Transport):
    """Run ranks one at a time under a deterministic rank-order scheduler."""

    name = "inline"

    def __init__(self, fault_plan=None):
        from repro.mpi import faultinject

        # In-process ranks: like the thread backend, injected kills
        # degrade to a FaultInjected raise (deterministic fail-fast).
        self.fault_plan = faultinject.parse_fault_plan(fault_plan)

    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        from repro.mpi import faultinject
        from repro.mpi.comm import Comm

        if world_size < 1:
            raise MPIError(f"world size must be >= 1, got {world_size}")
        if self.fault_plan is not None:
            faultinject.install(self.fault_plan)
        world = _InlineWorld(world_size)

        def runner(rank: int) -> None:
            record = world.ranks[rank]
            record.gate.wait()  # first grant from the scheduler
            comm = Comm.from_endpoint(InlineEndpoint(world, rank))
            try:
                faultinject.fire("rendezvous", rank=rank)
                record.result = main(comm, *args)
                record.state = _DONE
            except BaseException as exc:  # noqa: BLE001 - re-raised in caller
                record.error = exc
                record.state = _ERROR
            finally:
                world.sched_wake.set()

        threads = [
            threading.Thread(
                target=runner, args=(rank,), name=f"inline-rank-{rank}", daemon=True
            )
            for rank in range(world_size)
        ]
        for thread in threads:
            thread.start()

        try:
            self._schedule(world, timeout)
        finally:
            if self.fault_plan is not None:
                faultinject.clear()

        for thread in threads:
            thread.join(timeout)
            if thread.is_alive():
                raise MPIError(f"rank thread {thread.name} did not finish in {timeout}s")

        errors = [
            (rank, record.error)
            for rank, record in enumerate(world.ranks)
            if record.error is not None
        ]
        # Poison-injected MPIErrors are a symptom; prefer the original cause.
        real = [
            (rank, error)
            for rank, error in errors
            if not world.ranks[rank].poison_error
        ]
        raise_rank_errors(real or errors)
        return [record.result for record in world.ranks]

    @staticmethod
    def _schedule(world: _InlineWorld, timeout: float) -> None:
        while not world.finished():
            world.maybe_release_barrier()
            chosen = next(
                (rank for rank in range(world.size) if world.runnable(rank)), None
            )
            if chosen is None:
                if world.poisoned:
                    raise MPIError("inline scheduler wedged after poisoning")
                # Every unfinished rank is blocked on something that can
                # never happen: deadlock.  Poison so blocked ranks raise.
                world.poisoned = True
                continue
            world.sched_wake.clear()
            world.ranks[chosen].gate.set()
            if not world.sched_wake.wait(timeout):
                raise MPIError(
                    f"inline rank {chosen} did not yield within {timeout}s"
                )

"""Typed binary data-plane codec shared by the tcp and shm transports.

The paper's DataMPI wins come from a lean communication layer, so the
data plane here must not tax every chunk with a serializer.  This module
defines one wire format for both process transports:

* a struct-packed **frame header** — ``kind / fmt / source / tag /
  payload length`` (:data:`WIRE_HEADER`) — so framing never depends on a
  serializer and a reader can always resynchronise a stream by length;
* three **payload formats**:

  - :data:`FMT_RAW` — the payload *is* the bytes, verbatim.  ``bytes``
    chunk payloads (the encoded key-value chunks DataMPI moves) travel
    this way and never pass through ``pickle`` in either direction;
  - :data:`FMT_PICKLE` — control-plane objects (collective payloads,
    EOF markers, outcome tuples) as a pickle protocol-5 body with
    out-of-band buffers carried as raw trailers, so even buffer-bearing
    control objects keep their bulk outside the pickle stream;
  - :data:`FMT_BATCH` — several small ``(tag, payload)`` items packed
    into one frame/ring slot (:func:`encode_batch`), decoded back into
    zero-copy ``memoryview`` slices (:func:`decode_batch`).

* **vectored socket writes** (:func:`sendmsg_all`): a frame goes out as
  header + raw buffer parts via ``socket.sendmsg``, with no
  header+payload concatenation copy on the hot path.

Security note: :data:`FMT_RAW` payloads are returned as inert ``bytes``
— a crafted frame whose body happens to contain pickle opcodes is simply
delivered as those bytes, never unpickled.  :data:`FMT_PICKLE` frames do
unpickle, so sockets must be authenticated before they reach the frame
layer (see :mod:`repro.mpi.transport.tcp`).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Iterable

from repro.common.errors import MPIError

#: One pickle protocol everywhere (control plane, checkpoints, modes).
#: Protocol 5 is required for the out-of-band buffer path.
PICKLE_PROTOCOL = 5

#: Frame header: kind (u8), payload format (u8), source rank (i32, -1
#: when not meaningful), tag (i64), payload length (u64).
WIRE_HEADER = struct.Struct(">BBiqQ")

#: Hard cap on a single frame's payload.  Honest peers never approach it
#: (the shm backend chunks at kilobytes); its job is to stop a hostile or
#: corrupt length field from demanding a multi-gigabyte allocation — and,
#: symmetrically, to refuse an oversized frame at *send* time with a
#: clear local error instead of a corrupt-stream error on the peer.
MAX_FRAME_BYTES = 1 << 30

FMT_RAW = 0     #: payload is the bytes, verbatim (never pickled)
FMT_PICKLE = 1  #: pickle-5 body + out-of-band buffer trailers
FMT_BATCH = 2   #: packed (tag, payload) items (see encode_batch)

_OOB_COUNT = struct.Struct(">I")   # number of out-of-band buffers
_OOB_LEN = struct.Struct(">Q")     # body / per-buffer length
_BATCH_ITEM = struct.Struct(">qI")  # per-item tag (i64), length (u32)

#: Largest single item allowed in a batch (the u32 length field's range).
BATCH_ITEM_LIMIT = (1 << 32) - 1


def as_buffer(data: Any) -> memoryview:
    """A C-contiguous 1-D byte view of any bytes-like object."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.format != "B" or view.ndim != 1:
        if not view.contiguous:
            view = memoryview(bytes(view))
        view = view.cast("B")
    return view


# -- payload encoding ----------------------------------------------------------


def encode_payload(payload: Any) -> tuple[int, list[Any], int]:
    """Encode one payload as ``(fmt, parts, total_length)``.

    ``parts`` is a list of buffer objects to be written back-to-back;
    bytes-like payloads come back as a single :data:`FMT_RAW` part (the
    caller's buffer itself — zero-copy, never pickled), anything else as
    a :data:`FMT_PICKLE` body plus raw out-of-band buffer trailers.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        view = as_buffer(payload)
        return FMT_RAW, [view], view.nbytes
    buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(payload, protocol=PICKLE_PROTOCOL,
                        buffer_callback=buffers.append)
    parts: list[Any] = [_OOB_COUNT.pack(len(buffers)),
                   _OOB_LEN.pack(len(body)), body]
    total = _OOB_COUNT.size + _OOB_LEN.size + len(body)
    for buf in buffers:
        raw = buf.raw()
        parts.append(_OOB_LEN.pack(raw.nbytes))
        parts.append(raw)
        total += _OOB_LEN.size + raw.nbytes
    return FMT_PICKLE, parts, total


def decode_payload(fmt: int, data: Any) -> Any:
    """Invert :func:`encode_payload` for one received payload body.

    :data:`FMT_RAW` bodies come back as ``bytes`` without interpretation;
    :data:`FMT_PICKLE` bodies are unpickled with their out-of-band
    buffers.  Truncated or trailing bytes raise :class:`MPIError` — a
    framing layer that silently tolerated either would be hiding exactly
    the desync bugs this codec exists to surface.
    """
    if fmt == FMT_RAW:
        return data if isinstance(data, bytes) else bytes(data)
    if fmt != FMT_PICKLE:
        raise MPIError(f"unknown payload format {fmt} (corrupt stream?)")
    view = as_buffer(data)
    try:
        (nbufs,) = _OOB_COUNT.unpack_from(view, 0)
        offset = _OOB_COUNT.size
        (body_len,) = _OOB_LEN.unpack_from(view, offset)
    except struct.error as exc:
        raise MPIError(f"truncated control payload: {exc}") from exc
    offset += _OOB_LEN.size
    body = view[offset:offset + body_len]
    if body.nbytes != body_len:
        raise MPIError("truncated control payload (body cut short)")
    offset += body_len
    buffers: list[memoryview] = []
    for _ in range(nbufs):
        try:
            (length,) = _OOB_LEN.unpack_from(view, offset)
        except struct.error as exc:
            raise MPIError(f"truncated out-of-band buffer table: {exc}") from exc
        offset += _OOB_LEN.size
        buf = view[offset:offset + length]
        if buf.nbytes != length:
            raise MPIError("truncated out-of-band buffer (cut short)")
        buffers.append(buf)
        offset += length
    if offset != view.nbytes:
        raise MPIError(
            f"control payload carries {view.nbytes - offset} trailing "
            f"byte(s) (corrupt stream?)"
        )
    return pickle.loads(body, buffers=buffers)


# -- small-payload batching ----------------------------------------------------


def encode_batch(items: Iterable[tuple[int, Any]]) -> bytearray:
    """Pack ``(tag, payload)`` items into one :data:`FMT_BATCH` body.

    Each item is a tag/length header plus the payload bytes verbatim, in
    order — so a batch preserves per-pair FIFO by construction.
    """
    out = bytearray()
    for tag, payload in items:
        view = as_buffer(payload)
        if view.nbytes > BATCH_ITEM_LIMIT:
            raise MPIError(
                f"batch item of {view.nbytes} bytes exceeds the u32 "
                f"length field"
            )
        out += _BATCH_ITEM.pack(tag, view.nbytes)
        out += view
    return out


def decode_batch(data: Any) -> list[tuple[int, memoryview]]:
    """Unpack one batch body into ``(tag, payload_view)`` items.

    The views are read-only zero-copy slices of ``data`` — the receive
    path hands them straight to the merge so records decode in place.
    """
    view = as_buffer(data)
    if not view.readonly:
        view = view.toreadonly()
    items: list[tuple[int, memoryview]] = []
    offset = 0
    while offset < view.nbytes:
        try:
            tag, length = _BATCH_ITEM.unpack_from(view, offset)
        except struct.error as exc:
            raise MPIError(f"truncated batch item header: {exc}") from exc
        offset += _BATCH_ITEM.size
        payload = view[offset:offset + length]
        if payload.nbytes != length:
            raise MPIError(
                f"corrupt batch: item claims {length} bytes, "
                f"{payload.nbytes} remain"
            )
        items.append((tag, payload))
        offset += length
    return items


# -- socket framing ------------------------------------------------------------


def recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Read exactly ``length`` bytes; ``None`` on clean EOF at a read
    boundary; raises :class:`MPIError` on EOF mid-read.

    A ``socket.timeout`` with zero bytes consumed propagates unchanged —
    that is a bounded read electing to give up, the stream is still
    aligned.  A timeout *after* partial bytes raises :class:`MPIError`
    instead: the unread remainder would make every subsequent read parse
    garbage as a header, so the connection must be treated as torn.
    """
    if length == 0:
        return b""
    parts: list[bytes] = []
    received = 0
    while received < length:
        try:
            data = sock.recv(min(1 << 16, length - received))
        except socket.timeout:
            if received:
                raise MPIError(
                    f"connection torn: timed out after {received} of "
                    f"{length} bytes (stream misaligned)"
                ) from None
            raise
        except OSError as exc:
            raise MPIError(f"connection lost mid-frame: {exc}") from exc
        if not data:
            if received == 0:
                return None
            raise MPIError("connection closed mid-frame (truncated message)")
        parts.append(data)
        received += len(data)
    return parts[0] if len(parts) == 1 else b"".join(parts)


def sendmsg_all(sock: socket.socket, parts: Iterable[Any]) -> None:
    """Write every buffer in ``parts`` back-to-back (vectored, no concat).

    Uses ``socket.sendmsg`` with a partial-write retry loop; falls back
    to ``sendall`` on sockets without ``sendmsg``.
    """
    views = [v for v in (as_buffer(p) for p in parts) if v.nbytes]
    if not views:
        return
    sender = getattr(sock, "sendmsg", None)
    if sender is None:
        sock.sendall(b"".join(views))
        return
    while views:
        sent = sender(views)
        while views and sent >= views[0].nbytes:
            sent -= views[0].nbytes
            views.pop(0)
        if views and sent:
            views[0] = views[0][sent:]


def send_frame(
    sock: socket.socket,
    kind: int,
    tag: int = 0,
    obj: Any = None,
    payload: Any = None,
    *,
    source: int = -1,
    max_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Send one frame: header + payload parts, as one vectored write.

    ``payload`` (bytes-like) goes out verbatim as :data:`FMT_RAW`;
    otherwise ``obj`` is encoded via :func:`encode_payload` (bytes-like
    objects still go raw).  Oversized frames raise :class:`MPIError`
    locally *before* any byte is written, so the stream stays aligned
    and the error lands on the sender, not as peer-side corruption.
    """
    if payload is not None:
        view = as_buffer(payload)
        fmt, parts, total = FMT_RAW, [view], view.nbytes
    else:
        fmt, parts, total = encode_payload(obj)
    if total > max_bytes:
        raise MPIError(
            f"refusing to send a {total}-byte frame: exceeds the "
            f"{max_bytes}-byte frame cap (split the payload)"
        )
    header = WIRE_HEADER.pack(kind, fmt, source, tag, total)
    sendmsg_all(sock, [header, *parts])


def recv_frame(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[int, int, Any] | None:
    """Receive one frame as ``(kind, tag, obj)``; ``None`` on clean EOF.

    :data:`FMT_RAW` payloads come back as inert ``bytes``;
    :data:`FMT_PICKLE` payloads unpickle, so callers must only hand this
    sockets that have cleared the authentication handshake first.  Any
    timeout past the first header byte marks the stream torn
    (:class:`MPIError`), because a partially consumed frame can never be
    re-synchronised.
    """
    header = recv_exact(sock, WIRE_HEADER.size)
    if header is None:
        return None
    kind, fmt, _source, tag, length = WIRE_HEADER.unpack(header)
    if length > max_bytes:
        raise MPIError(
            f"frame length {length} exceeds the {max_bytes}-byte cap "
            f"(corrupt stream or hostile peer)"
        )
    try:
        body = recv_exact(sock, length)
    except socket.timeout:
        raise MPIError(
            "connection torn: timed out between a frame's header and its "
            "payload (stream misaligned)"
        ) from None
    if body is None:
        raise MPIError("connection closed mid-frame (missing payload)")
    return kind, tag, decode_payload(fmt, body)

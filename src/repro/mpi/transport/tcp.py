"""TCP transport: ranks as separate processes — or separate machines —
joined by one socket pair per rank pair.

The paper's DataMPI moves key-value chunks *between cluster nodes* over
MVAPICH2; every other backend here (``thread``, ``shm``, ``inline``) is
single-machine.  This backend keeps the exact :class:`Endpoint` /
:class:`Transport` contract but carries :class:`Message` frames over TCP,
so ranks can live in separate processes on one host (the CI path) or in
separate processes on separate hosts (the paper's cluster shape).

Wire design
-----------

* **Rendezvous** — every rank opens its own peer-listener socket, then
  connects to one well-known rendezvous address and registers
  ``(rank, host, port)``.  Once the whole world has registered, the
  rendezvous broadcasts the address map and each pair ``(i, j)`` with
  ``j > i`` establishes one socket: ``j`` connects to ``i``'s listener.
  The rendezvous connection stays open as the rank's *control* channel
  (outcome reporting, abort broadcast, shutdown).
* **Framing** — every message is one length-prefixed frame using the
  typed binary codec (:mod:`repro.mpi.transport.codec`): a
  ``kind / fmt / source / tag / length`` header followed by the payload
  bytes, written as one vectored ``sendmsg`` (no header+payload concat
  copy), so a reader never depends on TCP segment boundaries.  ``bytes``
  chunk payloads travel verbatim (``FMT_RAW``) and never pass through
  pickle; only control-plane objects (collectives, outcomes, the
  rendezvous protocol) use the pickle-5 out-of-band format.
* **Demux** — each rank runs one demux thread ``select``-ing over all of
  its peer sockets plus the control channel, parsing frames into the same
  tag/source-matched :class:`~repro.mpi.transport.thread.Mailbox` the
  thread backend uses — selective receive semantics are shared by
  construction.
* **Fail-fast abort** — a failing rank sends poison (``ABORT``) frames to
  every peer before reporting its error; the launcher re-broadcasts abort
  over the control channels when a rank dies without a word (hard kill —
  the kernel closes its sockets, so peers *also* see EOF and poison
  locally).  Blocked receives raise immediately instead of waiting out
  their timeout, exactly like the shm control pipe and the thread
  backend's mailbox poisoning.

:class:`TcpTransport` (``get_transport("tcp", hosts=..., port=...)``)
forks one local process per rank — closures need no pickling, which is
what the equivalence suite runs.  For ranks on *other* machines, the
serving side runs :class:`TcpWorldServer` and each remote process calls
:func:`join_world` with the rendezvous address; the wire protocol is
identical (the localhost spawn is just ``join_world`` with fork instead
of ssh).

Security
--------

Data-plane (``FMT_RAW``) payloads are delivered as inert bytes, but
control-plane frames still unpickle, and unpickling attacker-controlled
bytes is arbitrary code execution — so **no socket ever reaches the
frame layer unauthenticated**.  Every accepted connection (rendezvous, peer pair,
and the experiment matrix's worker protocol, which reuses this framing)
must first clear an HMAC-SHA256 challenge-response over a per-world
shared secret (:func:`deliver_challenge` / :func:`answer_challenge`,
the ``multiprocessing.connection`` scheme with mutual proof) before a
single frame byte is read.  Strays that cannot answer — port scans,
health checks, probes — are dropped without deserialising anything, and
frame lengths are capped at :data:`MAX_FRAME_BYTES` so a hostile header
cannot demand a multi-gigabyte buffer.

The secret comes from (in priority order) an explicit ``authkey=``
argument, the key segment of an address token (``HOST:PORT/KEY`` — what
:class:`TcpWorldServer` prints when it generated the key itself), or the
``REPRO_TCP_AUTHKEY`` environment variable.  :class:`TcpTransport`
generates a random key per run; forked ranks inherit it.  The handshake
authenticates, but the wire is not encrypted — treat the address token
as a credential and run on networks where eavesdropping is acceptable.
"""

from __future__ import annotations

import hmac
import multiprocessing
import os
import secrets
import selectors
import socket
import struct
import threading
import time
from typing import Any, Callable, Sequence

from repro.common.errors import MPIError
from repro.mpi import faultinject
from repro.mpi.transport.base import (
    JOIN_TIMEOUT,
    Endpoint,
    Message,
    Transport,
    raise_rank_errors,
    register_transport,
)
from repro.mpi.transport.codec import (
    MAX_FRAME_BYTES,
    PICKLE_PROTOCOL,  # noqa: F401 - canonical home is codec; re-exported here
    WIRE_HEADER,
    recv_exact,
    recv_frame,
    send_frame,
)
from repro.mpi.transport.thread import Mailbox, _PoisonedError

#: Frame header (kind / fmt / source / tag / length) — shared with the
#: shm descriptor pipes; kept under its historical name here.
FRAME_HEADER = WIRE_HEADER

#: Environment variable supplying the world's shared secret when the
#: address token does not carry one (e.g. CI pinning a fixed port).
AUTHKEY_ENV_VAR = "REPRO_TCP_AUTHKEY"

#: Size of the handshake nonce and of each HMAC-SHA256 digest.
AUTH_NONCE_BYTES = 32

#: Peer-connection preamble: the connecting rank announces itself.
_HELLO = struct.Struct(">I")

# -- frame kinds (one byte; 16+ is reserved for higher-level protocols
#    that reuse this framing, e.g. the distributed matrix workers) -------------
KIND_DATA = 1      #: point-to-point payload (tag = message tag)
KIND_ABORT = 2     #: poison: a peer rank failed, blocked receives must raise
KIND_REGISTER = 3  #: rank -> rendezvous: (rank | None, host, port)
KIND_ADDRS = 4     #: rendezvous -> rank: {"rank": r, "addrs": [(host, port)]}
KIND_OUTCOME = 5   #: rank -> launcher: (rank, "ok" | "err", value)
KIND_SHUTDOWN = 6  #: launcher -> rank: world complete, tear down
KIND_RESTART = 7   #: launcher -> rank: world restarting, re-register

#: Barrier control messages ride ordinary frames in a tag range far above
#: anything user code (tags >= 0) or the collectives (1<<20 + seq*8) use.
_BARRIER_TAG_BASE = 1 << 40

#: Seconds a finished rank waits for the launcher's shutdown frame before
#: tearing down unilaterally.
_SHUTDOWN_GRACE = 30.0

#: Seconds the rendezvous waits for an accepted connection's registration
#: frame.  Real ranks register immediately after connecting; this bounds
#: how long one silent stray connection can stall the (serial) accept
#: loop without letting it eat the whole world-formation deadline.
_REGISTER_TIMEOUT = 2.0

_CONTROL = -1  # demux selector key for the control channel


class _WorldFormationError(_PoisonedError):
    """World formation failed because a peer (or the launcher) vanished.

    A symptom of another rank's death, like mailbox poison: the
    supervisor may elect to rebuild the world instead of aborting it, and
    error reporting prefers the real failure over this echo.
    """


class _PeerLostError(_PoisonedError):
    """A send hit a torn peer socket: that rank is gone.

    Classified as poison so the dead rank's death — not this echo of it —
    is what the launcher reports, and so the supervisor can tell
    recoverable rank loss from a genuine task failure.
    """


# -- framing helpers (implemented in codec.py, shared with the distributed
#    matrix protocol; re-exported here under their historical names) -----------

_recv_exact = recv_exact


# -- authentication ------------------------------------------------------------


def _coerce_authkey(authkey: str | bytes) -> bytes:
    if isinstance(authkey, str):
        return authkey.encode("utf-8")
    return bytes(authkey)


def resolve_authkey(
    explicit: str | bytes | None, env_var: str = AUTHKEY_ENV_VAR
) -> tuple[bytes, str | None]:
    """Pick a world's shared secret: explicit argument, then the
    environment, then a fresh random key.

    Returns ``(key_bytes, token)`` where ``token`` is the printable form
    to embed in address tokens — set only for *generated* keys, so a
    secret the operator supplied out-of-band is never echoed back into
    printed addresses or logs.
    """
    if explicit is not None:
        return _coerce_authkey(explicit), None
    env = os.environ.get(env_var, "")
    if env:
        return env.encode("utf-8"), None
    token = secrets.token_hex(16)
    return token.encode("utf-8"), token


def _auth_digest(authkey: bytes, role: bytes, nonce: bytes) -> bytes:
    return hmac.new(authkey, role + nonce, "sha256").digest()


def deliver_challenge(sock: socket.socket, authkey: str | bytes) -> None:
    """Server half of the pre-pickle handshake: nonce out, client digest
    in, server proof out.  Raises :class:`MPIError` when the peer cannot
    authenticate — the caller must drop the connection *before* any
    frame is read, because frames unpickle."""
    authkey = _coerce_authkey(authkey)
    nonce = secrets.token_bytes(AUTH_NONCE_BYTES)
    sock.sendall(nonce)
    digest = _recv_exact(sock, AUTH_NONCE_BYTES)
    if digest is None or not hmac.compare_digest(
        digest, _auth_digest(authkey, b"client:", nonce)
    ):
        raise MPIError(
            "tcp handshake failed: peer could not authenticate "
            "(wrong or missing authkey)"
        )
    sock.sendall(_auth_digest(authkey, b"server:", nonce))


def answer_challenge(sock: socket.socket, authkey: str | bytes) -> bool:
    """Client half of the handshake.  ``False`` when the server hung up
    before issuing a challenge (it is gone, not hostile); raises
    :class:`MPIError` when the server rejects the key — the mutual proof
    also stops this side from unpickling frames from an impostor."""
    authkey = _coerce_authkey(authkey)
    try:
        nonce = _recv_exact(sock, AUTH_NONCE_BYTES)
        if nonce is None:
            return False
        sock.sendall(_auth_digest(authkey, b"client:", nonce))
    except socket.timeout:
        raise  # a bounded handshake electing to give up, not a dead server
    except (MPIError, OSError):
        return False  # reset mid-challenge: the server is gone
    try:
        proof = _recv_exact(sock, AUTH_NONCE_BYTES)
    except socket.timeout:
        raise
    except (MPIError, OSError):
        # A server that rejected the digest closes without a word; the
        # client sees EOF or a reset exactly here.
        proof = None
    if proof is None or not hmac.compare_digest(
        proof, _auth_digest(authkey, b"server:", nonce)
    ):
        raise MPIError(
            "handshake rejected: authkey mismatch — the two sides are "
            "not sharing the same secret (join with the exact address "
            "token the server printed, or align the authkey environment "
            "variable on both sides)"
        )
    return True


# -- address specs -------------------------------------------------------------


def parse_hosts(hosts: str | Sequence[str] | None) -> list[str]:
    """Normalise a hosts spec: ``None`` (localhost), a comma-separated
    string, or a sequence of host names/addresses.  Ranks are assigned
    round-robin over the list."""
    if hosts is None:
        return ["127.0.0.1"]
    entries = [h.strip() for h in hosts.split(",")] if isinstance(hosts, str) \
        else [str(h).strip() for h in hosts]
    entries = [h for h in entries if h]
    if not entries:
        raise MPIError(f"empty hosts spec {hosts!r}")
    return entries


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` or ``"host:port/key"`` (or an already-split tuple)
    -> ``(host, port)``.  The key segment, if any, is read separately by
    :func:`parse_authkey`."""
    if isinstance(address, (tuple, list)):
        host, port = address
    else:
        hostport, _sep, _key = str(address).partition("/")
        host, sep, port = hostport.rpartition(":")
        if not sep or not host:
            raise MPIError(f"address must be HOST:PORT, got {address!r}")
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise MPIError(f"bad port in address {address!r}") from None
    if not 0 <= port <= 65535:
        raise MPIError(f"port out of range in address {address!r}")
    return host, port


def parse_authkey(address: str | tuple[str, int]) -> str | None:
    """The key segment of a ``HOST:PORT/KEY`` address token, or None."""
    if isinstance(address, (tuple, list)):
        return None
    _hostport, sep, key = str(address).partition("/")
    return key if sep and key else None


def format_address(address: tuple[str, int], token: str | None = None) -> str:
    base = f"{address[0]}:{address[1]}"
    return f"{base}/{token}" if token else base


# -- the endpoint --------------------------------------------------------------


class TcpEndpoint(Endpoint):
    """One rank's handle on the socket fabric.

    Sends happen on the rank's main thread only (one writer per socket —
    no locking needed); a single demux thread drains every peer socket
    plus the control channel into the mailbox.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        peers: list[socket.socket | None],
        control: socket.socket,
        generation: int = 0,
    ):
        self.rank = rank
        self.size = size
        self.generation = generation
        self._peers = peers
        self._control = control
        self._mailbox = Mailbox()
        self._barrier_gen = 0
        self._stop = threading.Event()
        self.shutdown_received = threading.Event()
        self.restart_received = threading.Event()
        self._demux = threading.Thread(
            target=self._demux_loop, name=f"tcp-demux-{rank}", daemon=True
        )
        self._demux.start()

    # -- Endpoint contract -----------------------------------------------------

    def send(self, dest: int, message: Message) -> None:
        if dest == self.rank:
            self._mailbox.put(message)  # loopback: no wire to cross
            return
        sock = self._peers[dest]
        assert sock is not None
        try:
            # bytes-like payloads go out verbatim (FMT_RAW, no pickle);
            # objects ride the pickle-5 out-of-band control format.
            send_frame(sock, KIND_DATA, tag=message.tag,
                       obj=message.payload, source=self.rank)
        except OSError as exc:
            raise _PeerLostError(
                f"send to rank {dest} failed: peer unreachable ({exc})"
            ) from exc

    def recv(self, source: int, tag: int, timeout: float) -> Message:
        return self._mailbox.get(source, tag, timeout)

    def barrier(self, timeout: float) -> None:
        """Centralised barrier over ordinary frames: everyone reports to
        rank 0, rank 0 releases everyone.  SPMD code executes barriers in
        the same order on all ranks, so a per-endpoint generation counter
        sequences them without negotiation."""
        generation = self._barrier_gen
        self._barrier_gen += 1
        tag = _BARRIER_TAG_BASE + generation
        if self.rank == 0:
            for source in range(1, self.size):
                self.recv(source, tag, timeout)  # arrivals
            for dest in range(1, self.size):
                self.send(dest, Message(0, tag, None))  # release
        else:
            self.send(0, Message(self.rank, tag, None))
            self.recv(0, tag, timeout)

    def abort(self) -> None:
        """Poison local receives and tell every peer to do the same."""
        self.poison_peers()
        self._mailbox.poison()

    # -- lifecycle -------------------------------------------------------------

    def poison_peers(self) -> None:
        """Best-effort ABORT frame to every peer (dead peers are skipped)."""
        for sock in self._peers:
            if sock is None:
                continue
            try:
                send_frame(sock, KIND_ABORT)
            except OSError:
                pass

    def sever(self) -> None:
        """Tear every live connection down mid-protocol (fault injection).

        Registered as this rank's fault dropper: a ``drop`` rule calls it
        so peers and the launcher observe abrupt EOFs exactly where a
        yanked cable would produce them.
        """
        for sock in (self._control, *self._peers):
            if sock is None:
                continue
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def close(self) -> None:
        self._stop.set()
        self._demux.join(2.0)
        for sock in self._peers:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    # -- demux -----------------------------------------------------------------

    def _demux_loop(self) -> None:
        selector = selectors.DefaultSelector()
        for peer_rank, sock in enumerate(self._peers):
            if sock is not None:
                selector.register(sock, selectors.EVENT_READ, peer_rank)
        selector.register(self._control, selectors.EVENT_READ, _CONTROL)
        with selector:
            while not self._stop.is_set():
                for key, _events in selector.select(timeout=0.1):
                    self._demux_one(selector, key.fileobj, key.data)

    def _demux_one(self, selector, sock, who: int) -> None:
        try:
            frame = recv_frame(sock)
        except (MPIError, OSError):
            frame = None  # a torn connection is a peer death
        if frame is None:
            # EOF.  A healthy world tears sockets down only after the
            # launcher's shutdown, so an early EOF means the other side
            # died without a word (hard kill) — fail blocked receives now.
            selector.unregister(sock)
            if not self.shutdown_received.is_set():
                self._mailbox.poison()
            if who == _CONTROL:
                self.shutdown_received.set()  # launcher is gone; stop waiting
            return
        kind, tag, obj = frame
        if kind == KIND_DATA:
            self._mailbox.put(Message(who, tag, obj))
        elif kind == KIND_ABORT:
            self._mailbox.poison()
        elif kind == KIND_SHUTDOWN:
            self.shutdown_received.set()
        elif kind == KIND_RESTART:
            # The launcher is rebuilding the world: release the
            # post-outcome wait and flag that this rank must re-register
            # instead of tearing down.
            self.restart_received.set()
            self.shutdown_received.set()


# -- rendezvous ----------------------------------------------------------------


class _Rendezvous:
    """Listener that forms one world: registrations in, address map out.

    The accepted connections double as per-rank control channels and are
    returned to the launcher for outcome collection.
    """

    def __init__(self, world_size: int, bind_host: str, port: int,
                 authkey: bytes):
        self.world_size = world_size
        self._authkey = authkey
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((bind_host, port))
        except OSError as exc:
            self._listener.close()
            raise MPIError(
                f"cannot bind tcp rendezvous on {bind_host}:{port}: {exc}"
            ) from exc
        self._listener.listen(world_size)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]

    def wait_for_world(
        self, deadline: float
    ) -> tuple[list[socket.socket], list[tuple[int, BaseException]]]:
        """Accept registrations until every rank is present, then broadcast
        the address map.  Returns the per-rank control sockets plus any
        failures reported *during* rendezvous (a rank that died before it
        could register its listener)."""
        controls: list[socket.socket | None] = [None] * self.world_size
        addrs: list[tuple[str, int] | None] = [None] * self.world_size
        failures: list[tuple[int, BaseException]] = []
        while any(c is None for c in controls) and not failures:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = [r for r, c in enumerate(controls) if c is None]
                raise MPIError(
                    f"tcp rendezvous incomplete: ranks {missing} never "
                    f"registered"
                )
            self._listener.settimeout(min(remaining, 1.0))
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            # Accepted sockets are blocking regardless of the listener's
            # timeout: bound the handshake + registration read too, or one
            # silent connection (port scan, health check, wedged rank)
            # pins the rendezvous past its deadline forever.
            conn.settimeout(
                max(0.1, min(_REGISTER_TIMEOUT, deadline - time.monotonic()))
            )
            try:
                # Authenticate BEFORE the first frame: frames unpickle,
                # and this port is reachable by anything on the network.
                deliver_challenge(conn, self._authkey)
                frame = recv_frame(conn)
            except Exception:  # noqa: BLE001 - timeout, bad key, torn read
                conn.close()
                continue  # not a rank; the deadline still governs the world
            conn.settimeout(None)
            if frame is None:
                conn.close()
                raise MPIError("a rank died during tcp rendezvous")
            kind, _tag, obj = frame
            if kind == KIND_OUTCOME:  # died before it could register
                rank, _status, value = obj
                failures.append((rank, value))
                conn.close()
                continue
            if kind != KIND_REGISTER:
                conn.close()
                raise MPIError(f"unexpected frame kind {kind} during rendezvous")
            rank = obj["rank"]
            if rank is None:  # external joiner without a pinned rank
                rank = next(r for r, c in enumerate(controls) if c is None)
            if not 0 <= rank < self.world_size or controls[rank] is not None:
                conn.close()
                raise MPIError(f"bad or duplicate rank {rank} at rendezvous")
            controls[rank] = conn
            addrs[rank] = (obj["host"], obj["port"])
        if failures:
            for conn in controls:
                if conn is not None:
                    try:
                        send_frame(conn, KIND_ABORT)
                        send_frame(conn, KIND_SHUTDOWN)
                    except OSError:
                        pass
            return [c for c in controls if c is not None], failures
        for rank, conn in enumerate(controls):
            try:
                send_frame(conn, KIND_ADDRS, obj={"rank": rank, "addrs": addrs})
            except OSError:
                # Registered then died: outcome collection sees the EOF
                # and decides (abort or elastic restart); peers that fail
                # to reach the dead listener poison themselves.
                pass
        return controls, []  # type: ignore[return-value]

    def reform(
        self,
        survivors: dict[int, socket.socket],
        deadline: float,
    ) -> list[socket.socket]:
        """Rebuild the world after rank deaths: survivors re-register over
        their live control sockets while freed slots are re-offered to new
        connections at the (still open) rendezvous address.  Returns the
        full control list for the next generation."""
        controls: list[socket.socket | None] = [None] * self.world_size
        addrs: list[tuple[str, int] | None] = [None] * self.world_size
        selector = selectors.DefaultSelector()
        for rank, conn in survivors.items():
            selector.register(conn, selectors.EVENT_READ, rank)
        selector.register(self._listener, selectors.EVENT_READ, None)
        self._listener.settimeout(None)
        with selector:
            while any(c is None for c in controls):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = [r for r, c in enumerate(controls) if c is None]
                    raise MPIError(
                        f"tcp world restart incomplete: slots {missing} "
                        f"were never re-filled"
                    )
                for key, _events in selector.select(min(remaining, 0.5)):
                    if key.data is None:  # a fresh joiner for a freed slot
                        conn, _peer = self._listener.accept()
                        conn.settimeout(max(0.1, min(
                            _REGISTER_TIMEOUT, deadline - time.monotonic()
                        )))
                        try:
                            deliver_challenge(conn, self._authkey)
                            frame = recv_frame(conn)
                        except Exception:  # noqa: BLE001 - stray or dead
                            conn.close()
                            continue
                        conn.settimeout(None)
                        if frame is None or frame[0] != KIND_REGISTER:
                            conn.close()
                            continue
                        obj = frame[2]
                        rank = obj["rank"]
                        if rank is None:
                            free = [r for r, c in enumerate(controls)
                                    if c is None and r not in survivors]
                            if not free:
                                conn.close()
                                continue
                            rank = free[0]
                        if (not 0 <= rank < self.world_size
                                or rank in survivors
                                or controls[rank] is not None):
                            conn.close()
                            raise MPIError(
                                f"bad or duplicate rank {rank} at restart "
                                f"rendezvous"
                            )
                    else:  # a survivor re-registering on its control socket
                        rank = key.data
                        conn = key.fileobj
                        try:
                            frame = recv_frame(conn)
                        except (MPIError, OSError):
                            frame = None
                        if frame is None:
                            raise MPIError(
                                f"rank {rank} died during world restart"
                            )
                        kind, _tag, obj = frame
                        if kind == KIND_OUTCOME:
                            continue  # stale outcome from the old generation
                        if kind != KIND_REGISTER:
                            raise MPIError(
                                f"unexpected frame kind {kind} from rank "
                                f"{rank} during world restart"
                            )
                        selector.unregister(conn)
                    controls[rank] = conn
                    addrs[rank] = (obj["host"], obj["port"])
        for rank, conn in enumerate(controls):
            try:
                send_frame(conn, KIND_ADDRS, obj={"rank": rank, "addrs": addrs})
            except OSError:
                pass  # outcome collection will see the EOF
        return controls  # type: ignore[return-value]

    def close(self) -> None:
        self._listener.close()


# -- rank side -----------------------------------------------------------------


def _build_endpoint(
    control: socket.socket,
    bind_host: str,
    rank: int | None,
    deadline: float,
    authkey: bytes,
    generation: int = 0,
) -> TcpEndpoint:
    """Register with the rendezvous and wire up the pair sockets.

    Pair direction is deterministic: rank ``j`` *connects* to every
    ``i < j`` and *accepts* from every ``j' > j``.  Connects complete
    through the listen backlog, so no ordering between ranks can deadlock.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.bind((bind_host, 0))
    except OSError as exc:
        listener.close()
        raise MPIError(
            f"rank cannot bind its peer listener on {bind_host!r}: {exc} "
            f"(hosts entries must be addresses of this machine)"
        ) from exc
    # Listen *before* registering: the moment the address map goes out,
    # higher ranks may connect, and a bound-but-not-listening socket
    # refuses them.  The world size is not known yet, so use a generous
    # fixed backlog (connects complete through it without an accept).
    listener.listen(128)
    host, port = listener.getsockname()[:2]
    send_frame(control, KIND_REGISTER,
               obj={"rank": rank, "host": host, "port": port})
    frame = recv_frame(control)
    if frame is None:
        listener.close()
        raise _WorldFormationError(
            "tcp rendezvous closed before the world formed"
        )
    kind, _tag, obj = frame
    if kind == KIND_ABORT or kind != KIND_ADDRS:
        listener.close()
        raise _WorldFormationError(
            "tcp world formation aborted (a peer rank failed)"
        )
    rank = obj["rank"]
    addrs = obj["addrs"]
    world_size = len(addrs)
    # The deterministic "die during world formation" hook: the rank is
    # assigned and registered, so its death is visible as a control EOF
    # (and a refused listener) rather than a rendezvous that never fills.
    faultinject.fire("rendezvous", rank=rank)
    peers: list[socket.socket | None] = [None] * world_size
    try:
        for lower in range(rank):
            remaining = max(0.1, deadline - time.monotonic())
            sock = socket.create_connection(addrs[lower], timeout=remaining)
            if not answer_challenge(sock, authkey):
                raise MPIError("peer hung up during tcp pair handshake")
            sock.settimeout(None)
            sock.sendall(_HELLO.pack(rank))
            peers[lower] = sock
        accepted = 0
        need = world_size - 1 - rank
        # Watch the control channel alongside the listener: if a peer dies
        # before connecting, its connect never comes — only the launcher's
        # ABORT (or its own EOF) can release this rank before the world
        # deadline, which matters enormously for recovery time.
        accept_sel = selectors.DefaultSelector()
        accept_sel.register(listener, selectors.EVENT_READ, "listener")
        accept_sel.register(control, selectors.EVENT_READ, "control")
        with accept_sel:
            while accepted < need:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout("tcp pair accept timed out")
                events = accept_sel.select(timeout=min(remaining, 0.5))
                for key, _ev in events:
                    if key.data == "control":
                        verdict = recv_frame(control)
                        if verdict is None:
                            raise _WorldFormationError(
                                "launcher vanished during tcp world "
                                "formation"
                            )
                        if verdict[0] in (KIND_ABORT, KIND_SHUTDOWN):
                            raise _WorldFormationError(
                                "tcp world formation aborted (a peer rank "
                                "failed)"
                            )
                        continue  # stray control frame; keep accepting
                    conn, _peer = listener.accept()
                    conn.settimeout(max(0.1, deadline - time.monotonic()))
                    try:
                        # Challenge before the hello: the peer listener is
                        # just as reachable by strays as the rendezvous is.
                        deliver_challenge(conn, authkey)
                    except (MPIError, OSError):
                        conn.close()  # stray; deadline still governs
                        continue
                    try:
                        hello = _recv_exact(conn, _HELLO.size)
                    except (MPIError, OSError) as exc:
                        # Past the challenge this is provably a keyed peer,
                        # so a torn read is a rank death — fail fast, don't
                        # accept-loop until the world deadline.
                        conn.close()
                        raise MPIError(
                            "peer hung up during tcp pair handshake"
                        ) from exc
                    if hello is None:
                        conn.close()
                        raise MPIError(
                            "peer hung up during tcp pair handshake"
                        )
                    peer_rank = _HELLO.unpack(hello)[0]
                    if (not rank < peer_rank < world_size
                            or peers[peer_rank] is not None):
                        conn.close()
                        continue
                    conn.settimeout(None)
                    peers[peer_rank] = conn
                    accepted += 1
    except _WorldFormationError:
        for sock in peers:
            if sock is not None:
                sock.close()
        listener.close()
        raise
    except (OSError, socket.timeout, MPIError) as exc:
        for sock in peers:
            if sock is not None:
                sock.close()
        raise _WorldFormationError(
            f"tcp pair handshake failed: {exc}"
        ) from exc
    finally:
        listener.close()
    return TcpEndpoint(rank, world_size, peers, control, generation)


def _send_outcome(
    control: socket.socket, rank: int, status: str, value: Any
) -> None:
    """Report ``(rank, status, value)``, degrading unencodable results to
    their repr.  ``send_frame`` encodes *before* writing any byte, so a
    failed first attempt leaves the stream aligned for the retry."""
    try:
        send_frame(control, KIND_OUTCOME, obj=(rank, status, value))
        return
    except OSError:
        return  # launcher is gone; EOF already tells the story
    except Exception:  # noqa: BLE001 - unpicklable closures, sockets, ...
        pass
    try:
        send_frame(control, KIND_OUTCOME,
                   obj=(rank, "err", MPIError(f"rank {rank}: {value!r}")))
    except OSError:
        pass


def _await_verdict_on_control(
    control: socket.socket, deadline: float
) -> bool:
    """After a failed world formation, wait for the launcher's verdict on
    the bare control socket (no demux thread exists).  True = restart and
    re-register; False = shut down."""
    budget = min(_SHUTDOWN_GRACE, max(0.1, deadline - time.monotonic()))
    control.settimeout(budget)
    try:
        while True:
            try:
                frame = recv_frame(control)
            except (socket.timeout, MPIError, OSError):
                return False
            if frame is None:
                return False
            if frame[0] == KIND_RESTART:
                return True
            if frame[0] == KIND_SHUTDOWN:
                return False
            # ABORT or a stray: keep waiting for the verdict.
    finally:
        try:
            control.settimeout(None)
        except OSError:
            pass


def _run_rank(
    control: socket.socket,
    bind_host: str,
    rank: int | None,
    main: Callable[..., Any],
    args: tuple,
    timeout: float,
    authkey: bytes,
) -> tuple[str, Any]:
    """One rank's full lifecycle: fabric, ``main``, outcome, shutdown.

    When the launcher answers an outcome with ``KIND_RESTART`` (elastic
    recovery after a peer died), the rank loops: it re-registers over the
    same control socket, rebuilds its fabric at the next generation, and
    runs ``main`` again — deterministic mains resume from whatever
    checkpoints they wrote, replaying the interrupted work.
    """
    from repro.mpi.comm import Comm  # local import: comm builds on this module

    deadline = time.monotonic() + timeout
    generation = 0
    while True:
        endpoint = None
        undrop = None
        try:
            endpoint = _build_endpoint(control, bind_host, rank, deadline,
                                       authkey, generation)
            rank = endpoint.rank
            # A drop rule severs precisely this generation's sockets.
            undrop = faultinject.register_dropper(endpoint.sever)
            outcome = ("ok", main(Comm.from_endpoint(endpoint), *args))
        except BaseException as exc:  # noqa: BLE001 - reported to the launcher
            if endpoint is not None:
                endpoint.poison_peers()
            outcome = ("err", exc)
        finally:
            if undrop is not None:
                undrop()
        _send_outcome(control, rank if rank is not None else -1, *outcome)
        if endpoint is None:
            # Formation failed; the launcher may still restart the world.
            if not _await_verdict_on_control(control, deadline):
                return outcome
            generation += 1
            continue
        # Keep the fabric alive until the launcher says the whole world is
        # done: peers may still be receiving, and an early close would
        # read as a death.
        endpoint.shutdown_received.wait(
            min(_SHUTDOWN_GRACE, max(0.1, deadline - time.monotonic()))
        )
        restart = endpoint.restart_received.is_set()
        endpoint.close()
        if not restart:
            return outcome
        generation += 1


# -- launcher side -------------------------------------------------------------


def _collect_outcomes(
    controls: list[socket.socket], timeout: float
) -> tuple[list[Any], list[tuple[int, BaseException]], set[int]]:
    """Gather per-rank outcomes; poison every survivor on first failure.

    A control EOF before an outcome is a hard death (the kernel closes a
    killed process's sockets), reported as such instead of hanging.  The
    hard-dead ranks come back as a separate set so a supervisor can tell
    a recoverable rank loss (respawn its slot) from a rank that failed
    and said so (a real error — abort).
    """
    world_size = len(controls)
    results: list[Any] = [None] * world_size
    errors: list[tuple[int, BaseException]] = []
    dead: set[int] = set()
    poisoned = False
    pending = set(range(world_size))
    selector = selectors.DefaultSelector()
    for rank, sock in enumerate(controls):
        selector.register(sock, selectors.EVENT_READ, rank)

    def poison_survivors() -> None:
        nonlocal poisoned
        if poisoned:
            return
        poisoned = True
        for rank in pending:
            try:
                send_frame(controls[rank], KIND_ABORT)
            except OSError:
                pass

    deadline = time.monotonic() + timeout
    with selector:
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MPIError(
                    f"ranks {sorted(pending)} did not finish in {timeout}s"
                )
            for key, _events in selector.select(timeout=min(remaining, 0.5)):
                rank = key.data
                try:
                    frame = recv_frame(key.fileobj)
                except (MPIError, OSError):
                    frame = None
                if frame is None:
                    dead.add(rank)
                    status, value = "err", MPIError(
                        f"rank {rank} died without reporting a result"
                    )
                else:
                    kind, _tag, obj = frame
                    if kind != KIND_OUTCOME:
                        continue  # stray frame; keep waiting for the outcome
                    _rank, status, value = obj
                selector.unregister(key.fileobj)
                pending.discard(rank)
                if status == "ok":
                    results[rank] = value
                else:
                    errors.append((rank, value))
                    poison_survivors()
    return results, errors, dead


def _finish_world(
    controls: list[socket.socket],
    results: list[Any],
    errors: list[tuple[int, BaseException]],
) -> list[Any]:
    """Broadcast shutdown, prefer real failures over poison symptoms."""
    for sock in controls:
        try:
            send_frame(sock, KIND_SHUTDOWN)
        except OSError:
            pass
    real = [(rank, exc) for rank, exc in errors
            if not isinstance(exc, _PoisonedError)]
    raise_rank_errors(real or errors)
    return results


def _supervise_world(
    rendezvous: _Rendezvous,
    controls: list[socket.socket],
    deadline: float,
    *,
    respawn: Callable[[int], None] | None = None,
    restarts: int = 0,
    listeners: Sequence[Callable[[int, list[int]], None]] = (),
) -> list[Any]:
    """Collect outcomes, electing to rebuild the world after rank deaths.

    The elastic core shared by :class:`TcpTransport` and
    :class:`TcpWorldServer`.  A generation ends when every control socket
    has produced an outcome or an EOF.  The world restarts — rather than
    aborting — only when ranks actually died *and* every error a
    surviving rank did report is a poison symptom (mailbox poison, torn
    sends, failed world formation): a rank that raised a real error gets
    fail-fast semantics exactly as before, because replaying a
    deterministic failure would only fail again.

    On restart the survivors get ``KIND_RESTART`` and re-register over
    their live control sockets; each dead rank's slot is re-offered at
    the rendezvous, filled by ``respawn(rank)`` when provided or by any
    external joiner.  ``controls`` is updated in place so the caller's
    cleanup always closes the current generation's sockets.
    ``listeners`` are told ``(generation, dead_ranks)`` before the
    rebuild — a serving pool uses this to fail in-flight futures whose
    requests died with the old world.
    """
    budget = restarts
    generation = 0
    while True:
        results, errors, dead = _collect_outcomes(
            controls, max(0.1, deadline - time.monotonic())
        )
        reported = [(rank, exc) for rank, exc in errors if rank not in dead]
        recoverable = (
            bool(dead)
            and budget > 0
            and all(isinstance(exc, _PoisonedError) for _, exc in reported)
        )
        if not recoverable:
            return _finish_world(controls, results, errors)
        budget -= 1
        generation += 1
        survivors: dict[int, socket.socket] = {}
        for rank, sock in enumerate(controls):
            if rank in dead:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            try:
                send_frame(sock, KIND_RESTART)
                survivors[rank] = sock
            except OSError:
                # Died between its outcome and the restart: its slot is
                # re-offered along with the others.
                dead.add(rank)
                try:
                    sock.close()
                except OSError:
                    pass
        for listener in listeners:
            try:
                listener(generation, sorted(dead))
            except Exception:  # noqa: BLE001 - observers must not kill recovery
                pass
        if respawn is not None:
            for rank in sorted(dead):
                respawn(rank)
        controls[:] = rendezvous.reform(survivors, deadline)


@register_transport
class TcpTransport(Transport):
    """Fork one process per rank; move every message over TCP sockets.

    ``hosts`` is a comma-separated spec (or sequence) naming the address
    each rank binds — ranks are assigned round-robin over the list, so
    ``hosts="10.0.0.1,10.0.0.2"`` alternates ranks across two interfaces.
    :meth:`run` spawns every rank locally (fork), which is the CI path;
    for ranks on other machines use :class:`TcpWorldServer` +
    :func:`join_world`, which speak the same wire protocol.  ``port`` is
    the rendezvous port (0 = ephemeral).
    """

    name = "tcp"

    def __init__(
        self,
        hosts: str | Sequence[str] | None = None,
        port: int = 0,
        authkey: str | bytes | None = None,
        respawns: int = 0,
        fault_plan: "faultinject.FaultPlan | str | None" = None,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise MPIError(
                "tcp transport spawn needs the fork start method "
                "(unavailable on this platform); launch ranks externally "
                "with join_world instead"
            )
        self.hosts = parse_hosts(hosts)
        if not 0 <= int(port) <= 65535:
            raise MPIError(f"rendezvous port out of range: {port}")
        self.port = int(port)
        # A fresh random secret per transport unless pinned: forked ranks
        # inherit it, and nothing else may speak to this world's ports.
        self.authkey = (_coerce_authkey(authkey) if authkey is not None
                        else secrets.token_bytes(16))
        if respawns < 0:
            raise MPIError(f"respawns must be >= 0, got {respawns}")
        #: World restarts this transport may perform after rank deaths
        #: (0 = classic fail-fast).  Each restart re-offers every dead
        #: slot and forks a clean replacement into it.
        self.respawns = int(respawns)
        self.fault_plan = faultinject.parse_fault_plan(fault_plan)
        #: Observers called with ``(generation, dead_ranks)`` on every
        #: elastic restart (e.g. a WorldPool failing in-flight futures).
        self.restart_listeners: list[Callable[[int, list[int]], None]] = []
        self._ctx = multiprocessing.get_context("fork")

    def host_for_rank(self, rank: int) -> str:
        return self.hosts[rank % len(self.hosts)]

    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        if world_size < 1:
            raise MPIError(f"world size must be >= 1, got {world_size}")
        rendezvous = _Rendezvous(world_size, self.hosts[0], self.port,
                                 self.authkey)
        address = rendezvous.address
        authkey = self.authkey

        def child(rank: int, plan: "faultinject.FaultPlan | None") -> None:
            # Forked children inherit any injector state of the parent:
            # install this rank's plan (None clears stale state) before
            # marking the process safe to hard-kill.
            faultinject.install(plan)
            faultinject.mark_killable()
            control = socket.create_connection(address, timeout=timeout)
            try:
                if not answer_challenge(control, authkey):
                    return  # rendezvous already gone; launcher reports it
                control.settimeout(None)
                _run_rank(control, self.host_for_rank(rank), rank, main,
                          args, timeout, authkey)
            finally:
                control.close()

        processes = [
            self._ctx.Process(target=child, args=(rank, self.fault_plan),
                              name=f"tcp-rank-{rank}", daemon=True)
            for rank in range(world_size)
        ]

        def respawn(rank: int) -> None:
            # Replacement ranks model fresh hardware: they carry no fault
            # plan, so a one-shot injected fault stays one-shot.
            process = self._ctx.Process(
                target=child, args=(rank, None),
                name=f"tcp-rank-{rank}-respawn", daemon=True,
            )
            processes.append(process)
            process.start()

        controls: list[socket.socket] = []
        try:
            for process in processes:
                process.start()
            deadline = time.monotonic() + timeout
            controls, early = rendezvous.wait_for_world(deadline)
            if early:
                raise_rank_errors(early)
            return _supervise_world(
                rendezvous, controls, deadline,
                respawn=respawn, restarts=self.respawns,
                listeners=self.restart_listeners,
            )
        finally:
            rendezvous.close()
            for sock in controls:
                try:
                    sock.close()
                except OSError:
                    pass
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(5.0)


class TcpWorldServer:
    """Rendezvous + outcome collection for externally launched ranks.

    The multi-machine entry point: run this where results should land,
    hand its ``address`` to ``world_size`` processes (any mix of hosts)
    that each call :func:`join_world`, then :meth:`run` blocks until the
    world completes and returns results by rank — raising the lowest
    failing rank's error exactly like every other backend.

        server = TcpWorldServer(world_size=2, bind="0.0.0.0", port=9997)
        # on each node:  join_world(server.address, main)
        results = server.run()

    Joiners must present the world's shared secret before any payload is
    exchanged (see the module's Security section).  When no ``authkey``
    is supplied — neither the argument nor ``REPRO_TCP_AUTHKEY`` — the
    server generates one and embeds it in ``address``
    (``HOST:PORT/KEY``), so the address token is the credential: share
    it only with the machines that should join.
    """

    def __init__(
        self,
        world_size: int,
        bind: str = "127.0.0.1",
        port: int = 0,
        authkey: str | bytes | None = None,
        restarts: int = 0,
        respawn: Callable[[int], None] | None = None,
    ):
        if world_size < 1:
            raise MPIError(f"world size must be >= 1, got {world_size}")
        if restarts < 0:
            raise MPIError(f"restarts must be >= 0, got {restarts}")
        self.world_size = world_size
        self.authkey, token = resolve_authkey(authkey)
        #: World restarts the server may perform after rank deaths
        #: (0 = fail-fast).  On restart every dead slot is re-offered at
        #: ``address``: ``respawn(rank)`` is invoked per lost slot when
        #: provided (spawn a replacement however the deployment likes);
        #: otherwise any process calling :func:`join_world` — even with
        #: ``rank=None`` — fills it.
        self.restarts = int(restarts)
        self._respawn = respawn
        #: Observers called with ``(generation, dead_ranks)`` per restart.
        self.restart_listeners: list[Callable[[int, list[int]], None]] = []
        self._rendezvous = _Rendezvous(world_size, bind, port, self.authkey)
        self.address = format_address(self._rendezvous.address, token)

    def run(self, timeout: float = JOIN_TIMEOUT) -> list[Any]:
        deadline = time.monotonic() + timeout
        controls: list[socket.socket] = []
        try:
            controls, early = self._rendezvous.wait_for_world(deadline)
            if early:
                raise_rank_errors(early)
            return _supervise_world(
                self._rendezvous, controls, deadline,
                respawn=self._respawn, restarts=self.restarts,
                listeners=self.restart_listeners,
            )
        finally:
            self._rendezvous.close()
            for sock in controls:
                try:
                    sock.close()
                except OSError:
                    pass


def join_world(
    address: str | tuple[str, int],
    main: Callable[..., Any],
    args: tuple = (),
    rank: int | None = None,
    bind_host: str = "127.0.0.1",
    timeout: float = JOIN_TIMEOUT,
    authkey: str | bytes | None = None,
) -> Any:
    """Join a :class:`TcpWorldServer` world as one rank and run ``main``.

    ``rank=None`` lets the rendezvous assign the next free rank;
    ``bind_host`` is the address this process's peer listener binds (it
    must be reachable by the other ranks).  The world's shared secret
    comes from ``authkey``, the address token's ``/KEY`` segment, or
    ``REPRO_TCP_AUTHKEY`` — one of them is required, because every world
    is authenticated.  Returns this rank's result; raises the local
    failure if ``main`` raised here.
    """
    host, port = parse_address(address)
    # A joiner is a dedicated rank process: a fault plan (usually from
    # REPRO_FAULT_PLAN in its environment) may hard-kill it.
    faultinject.mark_killable()
    if authkey is None:
        authkey = parse_authkey(address) or os.environ.get(AUTHKEY_ENV_VAR)
    if authkey is None:
        raise MPIError(
            "joining a tcp world requires its authkey: use the full "
            "address token the server printed (HOST:PORT/KEY), pass "
            f"authkey=, or set {AUTHKEY_ENV_VAR}"
        )
    key = _coerce_authkey(authkey)
    control = socket.create_connection((host, port), timeout=timeout)
    try:
        if not answer_challenge(control, key):
            raise MPIError(
                f"tcp world at {format_address((host, port))} hung up "
                f"before the handshake (server gone?)"
            )
        control.settimeout(None)
        status, value = _run_rank(control, bind_host, rank, main, args,
                                  timeout, key)
    finally:
        control.close()
    if status == "err":
        if isinstance(value, MPIError) or not isinstance(value, Exception):
            raise value
        raise MPIError(f"joined rank failed: {value!r}") from value
    return value

"""Transport abstraction: how ranks execute and exchange messages.

The paper attributes DataMPI's wins to its communication layer (bipartite
key-value movement over MVAPICH2).  This package makes the runtime's
communication substrate *pluggable* so the same ``Comm`` programming
interface (send/recv/collectives) can run over interchangeable backends:

* ``thread`` — ranks are threads in one process (the original substrate;
  cheap, but the GIL serialises the hot path);
* ``shm``    — ranks are OS processes exchanging chunk payloads through
  ``multiprocessing.shared_memory`` ring buffers (true parallelism);
* ``inline`` — ranks are cooperatively scheduled one at a time in
  deterministic rank order (reproducible unit testing);
* ``tcp``    — ranks are processes exchanging length-prefixed message
  frames over one socket pair per rank pair, on one host or many.

A backend provides two things: a :class:`Transport` that launches one
callable per rank and collects results, and per-rank :class:`Endpoint`
objects implementing point-to-point delivery with MPI's per-(source,
destination) non-overtaking guarantee.  ``Comm`` builds every collective
on top of the endpoint primitives, so all backends share one semantics.
"""

from __future__ import annotations

import inspect
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import MPIError

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking receive waits before declaring deadlock.
RECV_TIMEOUT = 120.0

#: Hard limit on a single SPMD run; generous for in-process workloads.
JOIN_TIMEOUT = 300.0

#: Environment variable overriding the default backend name.
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"

DEFAULT_TRANSPORT = "thread"


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    source: int
    tag: int
    payload: Any


def match(message: Message, source: int, tag: int) -> bool:
    """Does ``message`` satisfy a selective receive for (source, tag)?"""
    if source not in (ANY_SOURCE, message.source):
        return False
    if tag not in (ANY_TAG, message.tag):
        return False
    return True


class Endpoint(ABC):
    """One rank's handle on a transport: point-to-point plus barrier.

    Implementations must preserve FIFO delivery per (source, destination)
    pair — MPI's non-overtaking guarantee — and support selective receive
    by (source, tag) with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards.
    """

    rank: int
    size: int

    @abstractmethod
    def send(self, dest: int, message: Message) -> None:
        """Deliver ``message`` to ``dest`` (asynchronous, buffered)."""

    @abstractmethod
    def recv(self, source: int, tag: int, timeout: float) -> Message:
        """Block until a matching message arrives; raise MPIError on timeout."""

    @abstractmethod
    def barrier(self, timeout: float) -> None:
        """Wait until every rank in the world reaches the barrier."""

    def flush_sends(self) -> None:
        """Push any locally coalesced sends to their destinations.

        Backends that batch small payloads (shm) override this and call
        it before every blocking operation and at rank finish, so a
        buffered message can never deadlock a waiting peer.  For the
        rest every send is already in flight: the default is a no-op.
        """

    def abort(self) -> None:
        """Break collectives so peers fail fast after this rank dies."""


class WorldHandle:
    """A world running in the background — the reusable-world primitive.

    ``Transport.run`` builds a world, executes one callable per rank, and
    tears everything down before returning: the right lifecycle for batch
    jobs, and exactly the wrong one for serving, where world construction
    (fork, rendezvous, ring/socket setup) must be paid once and amortized
    over a stream of submissions.  ``Transport.launch`` runs the same
    ``run`` on a background thread and returns this handle; the caller
    keeps talking to the live ranks through whatever channel it set up
    before launching (e.g. pipes inherited across the fork) and joins the
    handle when the ranks' main functions return.
    """

    def __init__(self, thread: threading.Thread):
        self._thread = thread
        self._results: list[Any] | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Has the world finished (successfully or not)?"""
        return not self._thread.is_alive()

    @property
    def error(self) -> BaseException | None:
        """The world's failure, if it has failed (None while running/ok)."""
        return self._error

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the world to finish; returns False on timeout."""
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def result(self, timeout: float | None = None) -> list[Any]:
        """Per-rank results, blocking until the world finishes.

        Re-raises the world's failure (the same :class:`MPIError` surface
        ``Transport.run`` presents) if any rank failed.
        """
        if not self.join(timeout):
            raise MPIError("world is still running")
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results


class Transport(ABC):
    """Factory/launcher for one backend: runs ``main`` on every rank."""

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        """Run ``main(comm, *args)`` on ``world_size`` ranks; results by rank.

        If any rank raises, the lowest-rank exception is re-raised in the
        caller (wrapped in :class:`MPIError` unless it already is one)
        after every rank has been reaped, so no rank leaks.
        """

    def launch(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> WorldHandle:
        """Run the world on a background thread; returns a :class:`WorldHandle`.

        ``timeout`` bounds the world's whole lifetime (it is ``run``'s
        timeout), so long-lived worlds — serving pools — must pass a
        budget covering their expected service window, not a per-job
        bound.  Fork-based backends fork from the background thread, so
        any file descriptors (pipes) the caller created before ``launch``
        are inherited by the ranks — that is the supported way to feed a
        live world work.
        """
        handle: WorldHandle

        def world_main() -> None:
            try:
                handle._results = self.run(world_size, main, args, timeout)
            except BaseException as exc:  # noqa: BLE001 - surfaced via result()
                handle._error = exc

        thread = threading.Thread(
            target=world_main, name=f"{self.name}-world", daemon=True
        )
        handle = WorldHandle(thread)
        thread.start()
        return handle


_REGISTRY: dict[str, type[Transport]] = {}


def register_transport(cls: type[Transport]) -> type[Transport]:
    """Class decorator adding a backend to the registry (by ``cls.name``)."""
    if not cls.name:
        raise MPIError(f"transport class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def available_transports() -> tuple[str, ...]:
    """Registered backend names, sorted for stable CLI help/choices."""
    return tuple(sorted(_REGISTRY))


def default_transport_name() -> str:
    """Backend used when none is requested (``REPRO_TRANSPORT`` or thread)."""
    return os.environ.get(TRANSPORT_ENV_VAR, DEFAULT_TRANSPORT)


def get_transport(spec: str | Transport | None = None, **kwargs: Any) -> Transport:
    """Resolve a backend: an instance passes through, a name is constructed,
    ``None`` means the default.

    This is the transport layer's connect entry point — everything that
    launches ranks (``mpi_run``, the job drivers) goes through it.

    Backend options (e.g. the tcp backend's ``hosts=``/``port=``) pass
    through as keyword arguments; an option the chosen backend does not
    accept raises :class:`MPIError` naming both, instead of silently
    dropping it or surfacing a bare ``TypeError``.

    Examples:
        >>> from repro.mpi.transport import available_transports, get_transport
        >>> available_transports()
        ('inline', 'shm', 'tcp', 'thread')
        >>> get_transport("inline").name
        'inline'
        >>> transport = get_transport("inline")
        >>> get_transport(transport) is transport  # instances pass through
        True
        >>> get_transport("thread", hosts="a,b")
        Traceback (most recent call last):
            ...
        repro.common.errors.MPIError: transport 'thread' does not accept option(s) 'hosts'; accepted option(s): fault_plan
    """
    if isinstance(spec, Transport):
        if kwargs:
            raise MPIError(
                f"transport options {sorted(kwargs)} cannot be applied to an "
                f"already-constructed {spec.name!r} transport instance"
            )
        return spec
    name = spec or default_transport_name()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise MPIError(
            f"unknown transport {name!r}; available: {available_transports()}"
        ) from None
    _check_transport_kwargs(name, cls, kwargs)
    return cls(**kwargs)


def _check_transport_kwargs(
    name: str, cls: type[Transport], kwargs: dict[str, Any]
) -> None:
    """Reject options the backend's constructor does not accept, by name."""
    if not kwargs:
        return
    if cls.__init__ is object.__init__:  # backend defines no constructor
        raise MPIError(
            f"transport {name!r} does not accept option(s) "
            f"{', '.join(repr(k) for k in sorted(kwargs))}; it takes no options"
        )
    parameters = inspect.signature(cls.__init__).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return
    accepted = [
        param for param, spec in parameters.items()
        if param != "self" and spec.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    ]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        takes = (
            f"accepted option(s): {', '.join(sorted(accepted))}"
            if accepted else "it takes no options"
        )
        raise MPIError(
            f"transport {name!r} does not accept option(s) "
            f"{', '.join(repr(k) for k in unknown)}; {takes}"
        )


def world_generation(comm: Any) -> int:
    """Which incarnation of the world ``comm`` belongs to (0 = original).

    Transports that support elastic recovery (tcp) bump their endpoints'
    ``generation`` each time the world is re-formed after a rank death;
    every other backend has no such attribute and reports 0.  Rank code
    uses this to detect "I am re-running after a restart" and resume from
    its last checkpoint instead of its initial state.
    """
    return int(getattr(getattr(comm, "endpoint", None), "generation", 0))


def raise_rank_errors(errors: list[tuple[int, BaseException]]) -> None:
    """Re-raise the lowest-rank failure, MPIError-wrapped (shared by backends)."""
    if not errors:
        return
    rank, cause = min(errors, key=lambda item: item[0])
    if isinstance(cause, MPIError) or not isinstance(cause, Exception):
        raise cause
    raise MPIError(f"rank {rank} failed: {cause!r}") from cause

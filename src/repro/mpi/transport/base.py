"""Transport abstraction: how ranks execute and exchange messages.

The paper attributes DataMPI's wins to its communication layer (bipartite
key-value movement over MVAPICH2).  This package makes the runtime's
communication substrate *pluggable* so the same ``Comm`` programming
interface (send/recv/collectives) can run over interchangeable backends:

* ``thread`` — ranks are threads in one process (the original substrate;
  cheap, but the GIL serialises the hot path);
* ``shm``    — ranks are OS processes exchanging chunk payloads through
  ``multiprocessing.shared_memory`` ring buffers (true parallelism);
* ``inline`` — ranks are cooperatively scheduled one at a time in
  deterministic rank order (reproducible unit testing).

A backend provides two things: a :class:`Transport` that launches one
callable per rank and collects results, and per-rank :class:`Endpoint`
objects implementing point-to-point delivery with MPI's per-(source,
destination) non-overtaking guarantee.  ``Comm`` builds every collective
on top of the endpoint primitives, so all backends share one semantics.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import MPIError

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking receive waits before declaring deadlock.
RECV_TIMEOUT = 120.0

#: Hard limit on a single SPMD run; generous for in-process workloads.
JOIN_TIMEOUT = 300.0

#: Environment variable overriding the default backend name.
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"

DEFAULT_TRANSPORT = "thread"


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    source: int
    tag: int
    payload: Any


def match(message: Message, source: int, tag: int) -> bool:
    """Does ``message`` satisfy a selective receive for (source, tag)?"""
    if source not in (ANY_SOURCE, message.source):
        return False
    if tag not in (ANY_TAG, message.tag):
        return False
    return True


class Endpoint(ABC):
    """One rank's handle on a transport: point-to-point plus barrier.

    Implementations must preserve FIFO delivery per (source, destination)
    pair — MPI's non-overtaking guarantee — and support selective receive
    by (source, tag) with ``ANY_SOURCE`` / ``ANY_TAG`` wildcards.
    """

    rank: int
    size: int

    @abstractmethod
    def send(self, dest: int, message: Message) -> None:
        """Deliver ``message`` to ``dest`` (asynchronous, buffered)."""

    @abstractmethod
    def recv(self, source: int, tag: int, timeout: float) -> Message:
        """Block until a matching message arrives; raise MPIError on timeout."""

    @abstractmethod
    def barrier(self, timeout: float) -> None:
        """Wait until every rank in the world reaches the barrier."""

    def abort(self) -> None:
        """Break collectives so peers fail fast after this rank dies."""


class Transport(ABC):
    """Factory/launcher for one backend: runs ``main`` on every rank."""

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        """Run ``main(comm, *args)`` on ``world_size`` ranks; results by rank.

        If any rank raises, the lowest-rank exception is re-raised in the
        caller (wrapped in :class:`MPIError` unless it already is one)
        after every rank has been reaped, so no rank leaks.
        """


_REGISTRY: dict[str, type[Transport]] = {}


def register_transport(cls: type[Transport]) -> type[Transport]:
    """Class decorator adding a backend to the registry (by ``cls.name``)."""
    if not cls.name:
        raise MPIError(f"transport class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def available_transports() -> tuple[str, ...]:
    """Registered backend names, sorted for stable CLI help/choices."""
    return tuple(sorted(_REGISTRY))


def default_transport_name() -> str:
    """Backend used when none is requested (``REPRO_TRANSPORT`` or thread)."""
    return os.environ.get(TRANSPORT_ENV_VAR, DEFAULT_TRANSPORT)


def get_transport(spec: str | Transport | None = None, **kwargs: Any) -> Transport:
    """Resolve a backend: an instance passes through, a name is constructed,
    ``None`` means the default.

    This is the transport layer's connect entry point — everything that
    launches ranks (``mpi_run``, the job drivers) goes through it.

    Examples:
        >>> from repro.mpi.transport import available_transports, get_transport
        >>> available_transports()
        ('inline', 'shm', 'thread')
        >>> get_transport("inline").name
        'inline'
        >>> transport = get_transport("inline")
        >>> get_transport(transport) is transport  # instances pass through
        True
    """
    if isinstance(spec, Transport):
        return spec
    name = spec or default_transport_name()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise MPIError(
            f"unknown transport {name!r}; available: {available_transports()}"
        ) from None
    return cls(**kwargs)


def raise_rank_errors(errors: list[tuple[int, BaseException]]) -> None:
    """Re-raise the lowest-rank failure, MPIError-wrapped (shared by backends)."""
    if not errors:
        return
    rank, cause = min(errors, key=lambda item: item[0])
    if isinstance(cause, MPIError) or not isinstance(cause, Exception):
        raise cause
    raise MPIError(f"rank {rank} failed: {cause!r}") from cause

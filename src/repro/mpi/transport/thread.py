"""Threaded transport: ranks are threads in one process (the original
substrate).

This is the default backend: startup is free and payloads are passed by
reference, but the GIL serialises Python-level compute across ranks —
which is exactly the limitation the ``shm`` backend removes.

Reference passing is safe under the data-plane contract because
:meth:`repro.mpi.comm.Comm.send` snapshots mutable byte buffers before
they reach any endpoint: what lands in a mailbox is immutable, so the
zero-serialization hot path here needs no defensive copy of its own.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.common.errors import MPIError
from repro.mpi.transport.base import (
    JOIN_TIMEOUT,
    Endpoint,
    Message,
    Transport,
    match,
    raise_rank_errors,
    register_transport,
)


class _PoisonedError(MPIError):
    """A blocked receive was woken because a peer rank died.

    A symptom, not a cause: the transport prefers any *real* rank error
    over these when reporting the run's failure.
    """


class Mailbox:
    """Thread-safe mailbox with selective (source, tag) receive."""

    def __init__(self) -> None:
        self._items: list[Message] = []  #: guarded-by _cond
        self._cond = threading.Condition()
        self._poisoned = False  #: guarded-by _cond

    def put(self, message: Message) -> None:
        with self._cond:
            self._items.append(message)
            self._cond.notify_all()

    def poison(self) -> None:
        """Fail the owning rank's next unmatched receive immediately.

        Called when a peer dies: a rank blocked on a message that can now
        never arrive must raise right away instead of waiting out the
        receive timeout (the shm backend's control pipe and the inline
        scheduler's deadlock poisoning already behave this way; this
        brings the thread backend's rank lifecycle in line).
        """
        with self._cond:
            self._poisoned = True
            self._cond.notify_all()

    def get(self, source: int, tag: int, timeout: float) -> Message:
        def find() -> int | None:
            for index, message in enumerate(self._items):
                if match(message, source, tag):
                    return index
            return None

        with self._cond:
            index = find()
            while index is None:
                if self._poisoned:
                    raise _PoisonedError(
                        "recv aborted: a peer rank failed while waiting for "
                        f"source={source} tag={tag}"
                    )
                if not self._cond.wait(timeout):
                    raise MPIError(
                        f"recv timed out after {timeout}s waiting for "
                        f"source={source} tag={tag}"
                    )
                index = find()
            return self._items.pop(index)

    def pending(self) -> int:
        with self._cond:
            return len(self._items)


class World:
    """Shared state of one threaded MPI world: mailboxes and a barrier."""

    def __init__(self, size: int):
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.mailboxes = [Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)

    def abort(self) -> None:
        """Poison every rank's blocking points after a rank death."""
        self.barrier.abort()
        for mailbox in self.mailboxes:
            mailbox.poison()


class ThreadEndpoint(Endpoint):
    """One rank's view of a threaded :class:`World`."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size

    def send(self, dest: int, message: Message) -> None:
        self.world.mailboxes[dest].put(message)

    def recv(self, source: int, tag: int, timeout: float) -> Message:
        return self.world.mailboxes[self.rank].get(source, tag, timeout)

    def barrier(self, timeout: float) -> None:
        try:
            self.world.barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError("barrier broken (peer died or timed out)") from exc

    def abort(self) -> None:
        # Break the barrier and poison mailboxes so peers blocked in
        # collectives or receives fail fast instead of timing out.
        self.world.abort()


@register_transport
class ThreadTransport(Transport):
    """Run every rank as a daemon thread sharing one :class:`World`.

    Ranks share the host interpreter, so a ``kill`` fault-plan rule
    cannot take one down without taking everything: injected kills
    degrade to an in-rank :class:`~repro.mpi.faultinject.FaultInjected`
    raise, exercising the same fail-fast abort path a real rank error
    takes.
    """

    name = "thread"

    def __init__(self, fault_plan=None):
        from repro.mpi import faultinject

        self.fault_plan = faultinject.parse_fault_plan(fault_plan)

    def run(
        self,
        world_size: int,
        main: Callable[..., Any],
        args: tuple = (),
        timeout: float = JOIN_TIMEOUT,
    ) -> list[Any]:
        from repro.mpi import faultinject
        from repro.mpi.comm import Comm  # local import: comm builds on this module

        if self.fault_plan is not None:
            # In-process ranks: the plan lives (and degrades kills to
            # raises) in the host interpreter for the duration of the run.
            faultinject.install(self.fault_plan)
        world = World(world_size)
        results: list[Any] = [None] * world_size
        errors: list[tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def runner(rank: int) -> None:
            comm = Comm(world, rank)
            try:
                faultinject.fire("rendezvous", rank=rank)
                results[rank] = main(comm, *args)
            except BaseException as exc:  # noqa: BLE001 - re-raised in caller
                with errors_lock:
                    errors.append((rank, exc))
                comm.endpoint.abort()

        threads = [
            threading.Thread(
                target=runner, args=(rank,), name=f"mpi-rank-{rank}", daemon=True
            )
            for rank in range(world_size)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout)
                if thread.is_alive():
                    raise MPIError(
                        f"rank thread {thread.name} did not finish in {timeout}s"
                    )
        finally:
            if self.fault_plan is not None:
                faultinject.clear()
        # Poison-induced errors are symptoms of another rank's death;
        # report the original failure when one exists.
        real = [
            (rank, exc)
            for rank, exc in errors
            if not isinstance(exc, _PoisonedError)
        ]
        raise_rank_errors(real or errors)
        return results

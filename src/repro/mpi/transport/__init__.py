"""Pluggable IPC transports for the MPI substrate.

Importing this package registers the built-in backends:

* ``thread`` — ranks as threads in one process (default);
* ``shm``    — ranks as forked processes, chunk payloads through
  ``multiprocessing.shared_memory`` ring buffers;
* ``inline`` — deterministic cooperative scheduling for unit tests;
* ``tcp``    — ranks as processes (or machines) joined by socket pairs,
  with a rendezvous step so ranks can live anywhere reachable.
"""

from repro.mpi.transport.base import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_TRANSPORT,
    JOIN_TIMEOUT,
    RECV_TIMEOUT,
    TRANSPORT_ENV_VAR,
    Endpoint,
    Message,
    Transport,
    WorldHandle,
    available_transports,
    default_transport_name,
    get_transport,
    register_transport,
    world_generation,
)
from repro.mpi.transport.codec import (
    FMT_BATCH,
    FMT_PICKLE,
    FMT_RAW,
    PICKLE_PROTOCOL,
    WIRE_HEADER,
    decode_batch,
    decode_payload,
    encode_batch,
    encode_payload,
)
from repro.mpi.transport.inline import InlineEndpoint, InlineTransport
from repro.mpi.transport.shm import (
    BATCH_FLUSH_BYTES,
    BATCH_ITEM_MAX,
    DEFAULT_RING_BYTES,
    ShmEndpoint,
    ShmRing,
    ShmTransport,
)
from repro.mpi.transport.tcp import (
    AUTHKEY_ENV_VAR,
    MAX_FRAME_BYTES,
    TcpEndpoint,
    TcpTransport,
    TcpWorldServer,
    answer_challenge,
    deliver_challenge,
    join_world,
    parse_address,
    parse_authkey,
    parse_hosts,
    resolve_authkey,
)
from repro.mpi.transport.thread import (
    Mailbox,
    ThreadEndpoint,
    ThreadTransport,
    World,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AUTHKEY_ENV_VAR",
    "BATCH_FLUSH_BYTES",
    "BATCH_ITEM_MAX",
    "DEFAULT_TRANSPORT",
    "DEFAULT_RING_BYTES",
    "FMT_BATCH",
    "FMT_PICKLE",
    "FMT_RAW",
    "JOIN_TIMEOUT",
    "MAX_FRAME_BYTES",
    "PICKLE_PROTOCOL",
    "RECV_TIMEOUT",
    "TRANSPORT_ENV_VAR",
    "WIRE_HEADER",
    "Endpoint",
    "InlineEndpoint",
    "InlineTransport",
    "Mailbox",
    "Message",
    "ShmEndpoint",
    "ShmRing",
    "ShmTransport",
    "TcpEndpoint",
    "TcpTransport",
    "TcpWorldServer",
    "ThreadEndpoint",
    "ThreadTransport",
    "Transport",
    "World",
    "WorldHandle",
    "answer_challenge",
    "available_transports",
    "decode_batch",
    "decode_payload",
    "default_transport_name",
    "deliver_challenge",
    "encode_batch",
    "encode_payload",
    "get_transport",
    "join_world",
    "parse_address",
    "parse_authkey",
    "parse_hosts",
    "register_transport",
    "resolve_authkey",
    "world_generation",
]

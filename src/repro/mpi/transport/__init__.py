"""Pluggable IPC transports for the MPI substrate.

Importing this package registers the built-in backends:

* ``thread`` — ranks as threads in one process (default);
* ``shm``    — ranks as forked processes, chunk payloads through
  ``multiprocessing.shared_memory`` ring buffers;
* ``inline`` — deterministic cooperative scheduling for unit tests;
* ``tcp``    — ranks as processes (or machines) joined by socket pairs,
  with a rendezvous step so ranks can live anywhere reachable.
"""

from repro.mpi.transport.base import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_TRANSPORT,
    JOIN_TIMEOUT,
    RECV_TIMEOUT,
    TRANSPORT_ENV_VAR,
    Endpoint,
    Message,
    Transport,
    available_transports,
    default_transport_name,
    get_transport,
    register_transport,
)
from repro.mpi.transport.inline import InlineEndpoint, InlineTransport
from repro.mpi.transport.shm import (
    DEFAULT_RING_BYTES,
    RING_MIN_BYTES,
    ShmEndpoint,
    ShmRing,
    ShmTransport,
)
from repro.mpi.transport.tcp import (
    AUTHKEY_ENV_VAR,
    MAX_FRAME_BYTES,
    TcpEndpoint,
    TcpTransport,
    TcpWorldServer,
    answer_challenge,
    deliver_challenge,
    join_world,
    parse_address,
    parse_authkey,
    parse_hosts,
    resolve_authkey,
)
from repro.mpi.transport.thread import (
    Mailbox,
    ThreadEndpoint,
    ThreadTransport,
    World,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AUTHKEY_ENV_VAR",
    "DEFAULT_TRANSPORT",
    "DEFAULT_RING_BYTES",
    "JOIN_TIMEOUT",
    "MAX_FRAME_BYTES",
    "RECV_TIMEOUT",
    "RING_MIN_BYTES",
    "TRANSPORT_ENV_VAR",
    "Endpoint",
    "InlineEndpoint",
    "InlineTransport",
    "Mailbox",
    "Message",
    "ShmEndpoint",
    "ShmRing",
    "ShmTransport",
    "TcpEndpoint",
    "TcpTransport",
    "TcpWorldServer",
    "ThreadEndpoint",
    "ThreadTransport",
    "Transport",
    "World",
    "answer_challenge",
    "available_transports",
    "default_transport_name",
    "deliver_challenge",
    "get_transport",
    "join_world",
    "parse_address",
    "parse_authkey",
    "parse_hosts",
    "register_transport",
    "resolve_authkey",
]

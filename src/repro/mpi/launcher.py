"""SPMD launcher: run one function on every rank of an in-process world.

``mpi_run`` is the moral equivalent of ``mpirun -np N``: it spawns N
threads, hands each a :class:`~repro.mpi.comm.Comm`, and collects per-rank
return values.  If any rank raises, the first exception is re-raised in
the caller (wrapped in :class:`~repro.common.errors.MPIError`) after all
threads have been joined, so no rank leaks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.common.errors import MPIError
from repro.mpi.comm import Comm, World

#: Hard limit on a single SPMD run; generous for in-process workloads.
JOIN_TIMEOUT = 300.0


def mpi_run(
    world_size: int,
    main: Callable[..., Any],
    args: tuple = (),
    timeout: float = JOIN_TIMEOUT,
) -> list[Any]:
    """Run ``main(comm, *args)`` on ``world_size`` ranks; returns results by rank."""
    world = World(world_size)
    results: list[Any] = [None] * world_size
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Comm(world, rank)
        try:
            results[rank] = main(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            with errors_lock:
                errors.append((rank, exc))
            # Break the barrier so peers blocked in collectives fail fast
            # instead of timing out.
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
        for rank in range(world_size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            raise MPIError(f"rank thread {thread.name} did not finish in {timeout}s")
    if errors:
        rank, cause = min(errors, key=lambda item: item[0])
        if isinstance(cause, MPIError) or not isinstance(cause, Exception):
            raise cause
        raise MPIError(f"rank {rank} failed: {cause!r}") from cause
    return results

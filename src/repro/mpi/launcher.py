"""SPMD launcher: run one function on every rank over a chosen transport.

``mpi_run`` is the moral equivalent of ``mpirun -np N``: it resolves a
transport backend (threads, forked shared-memory processes, the
deterministic inline scheduler, or TCP socket pairs), spawns N ranks,
hands each a
:class:`~repro.mpi.comm.Comm`, and collects per-rank return values.  If
any rank raises, the first exception is re-raised in the caller (wrapped
in :class:`~repro.common.errors.MPIError`) after all ranks have been
reaped, so no rank leaks.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.transport import (  # noqa: F401 - JOIN_TIMEOUT re-exported for compat
    JOIN_TIMEOUT,
    Transport,
    get_transport,
)


def mpi_run(
    world_size: int,
    main: Callable[..., Any],
    args: tuple = (),
    timeout: float = JOIN_TIMEOUT,
    transport: str | Transport | None = None,
) -> list[Any]:
    """Run ``main(comm, *args)`` on ``world_size`` ranks; returns results by rank.

    ``transport`` is a backend name (``thread``, ``shm``, ``inline``,
    ``tcp``), a
    :class:`Transport` instance, or ``None`` for the default (``thread``,
    overridable via the ``REPRO_TRANSPORT`` environment variable).

    Examples:
        Every rank contributes to an allreduce-style sum via gather:

        >>> from repro.mpi import mpi_run
        >>> def main(comm):
        ...     gathered = comm.gather(comm.rank, root=0)
        ...     return sum(gathered) if comm.rank == 0 else None
        >>> mpi_run(4, main, transport="inline")
        [6, None, None, None]
    """
    return get_transport(transport).run(world_size, main, args, timeout)

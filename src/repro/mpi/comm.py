"""The MPI programming interface (stands in for MVAPICH2's API surface).

The paper runs DataMPI over MVAPICH2-2.0b.  This module provides the MPI
subset DataMPI needs — point-to-point send/receive with source and tag
matching, barrier, and a handful of collectives.  *How* ranks execute and
how bytes cross between them is delegated to a pluggable transport
endpoint (see :mod:`repro.mpi.transport`): threads in one process, forked
processes over shared-memory rings, or a deterministic inline scheduler.
Whatever the backend, message delivery is FIFO per (source, destination)
pair, matching MPI's non-overtaking guarantee.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import MPIError
from repro.mpi.transport.base import (
    ANY_SOURCE,
    ANY_TAG,
    RECV_TIMEOUT,
    Endpoint,
    Message,
)
from repro.mpi.transport.thread import Mailbox as _Mailbox  # noqa: F401 - compat
from repro.mpi.transport.thread import ThreadEndpoint, World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "RECV_TIMEOUT",
    "Comm",
    "Message",
    "World",
]


class Comm:
    """One rank's handle on the world — the object user code programs against.

    ``Comm(world, rank)`` builds the classic threaded-world handle;
    :meth:`from_endpoint` wraps any transport endpoint.  Every collective
    is built from the endpoint's send/recv/barrier primitives, so all
    backends share one semantics.
    """

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise MPIError(f"rank {rank} out of range for world of {world.size}")
        self.world: World | None = world
        self.endpoint: Endpoint = ThreadEndpoint(world, rank)
        self.rank = rank
        self._collective_seq = 0

    @classmethod
    def from_endpoint(cls, endpoint: Endpoint) -> "Comm":
        comm = object.__new__(cls)
        comm.world = getattr(endpoint, "world", None)
        comm.endpoint = endpoint
        comm.rank = endpoint.rank
        comm._collective_seq = 0
        return comm

    @property
    def size(self) -> int:
        return self.endpoint.size

    # -- point to point -------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (asynchronous, buffered).

        Mutable byte buffers are snapshotted here: every backend then
        delivers the bytes as they were at the moment of the send, even
        when the transport passes payloads by reference (thread, inline)
        or coalesces them into a later batch (shm).
        """
        if not 0 <= dest < self.size:
            raise MPIError(f"send to invalid rank {dest}")
        if tag < 0:
            raise MPIError(f"tag must be non-negative, got {tag}")
        if isinstance(payload, bytearray):
            payload = bytes(payload)
        self.endpoint.send(dest, Message(self.rank, tag, payload))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float = RECV_TIMEOUT,
        *,
        buffer: bool = False,
    ) -> Message:
        """Block until a matching message arrives; returns the full message.

        Byte payloads arrive as ``bytes`` regardless of backend.  Pass
        ``buffer=True`` to accept read-only ``memoryview`` payloads where
        the transport can skip a copy (the shm batch path slices one
        buffer per ring slot instead of copying each small chunk out
        individually).  The views are backed by a private snapshot and
        safe to hold, but they do not pickle — code that returns payloads
        from ``main`` or stores them across process boundaries should use
        the default.
        """
        message = self.endpoint.recv(source, tag, timeout)
        if not buffer and isinstance(message.payload, memoryview):
            message = Message(message.source, message.tag,
                              bytes(message.payload))
        return message

    # -- collectives ----------------------------------------------------------

    def barrier(self, timeout: float = RECV_TIMEOUT) -> None:
        """Wait until every rank in the world reaches the barrier."""
        self.endpoint.barrier(timeout)

    _COLLECTIVE_TAG_BASE = 1 << 20

    def _collective_tag(self, kind: int) -> int:
        """Unique tag per collective *call*, agreed upon by every rank.

        SPMD code executes collectives in the same order on all ranks, so a
        per-``Comm`` call counter sequences them: without it, a fast rank's
        message for collective N+1 could satisfy a slow rank's pending
        receive for collective N of the same kind.
        """
        sequence = self._collective_seq
        self._collective_seq += 1
        return self._COLLECTIVE_TAG_BASE + sequence * 8 + kind

    def bcast(self, payload: Any, root: int = 0,
              timeout: float = RECV_TIMEOUT) -> Any:
        """Broadcast ``payload`` from ``root``; every rank returns it.

        ``timeout`` bounds how long a non-root rank waits for the root's
        message.  Control loops that legitimately idle between rounds — a
        serving world parked at its job announcement — pass their idle
        budget here instead of inheriting the point-to-point default.
        """
        tag = self._collective_tag(1)
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(dest, payload, tag)
            return payload
        return self.recv(source=root, tag=tag, timeout=timeout).payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one value from every rank at ``root`` (rank order)."""
        tag = self._collective_tag(2)
        if self.rank == root:
            values: list[Any] = [None] * self.size
            values[root] = payload
            for _ in range(self.size - 1):
                message = self.recv(tag=tag)
                values[message.source] = message.payload
            return values
        self.send(root, payload, tag)
        return None

    def allgather(self, payload: Any) -> list[Any]:
        """Gather at rank 0 then broadcast: every rank gets the full list."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, chunks: list[Any]) -> list[Any]:
        """Exchange ``chunks[i]`` with rank ``i``; returns received chunks
        indexed by source rank."""
        if len(chunks) != self.size:
            raise MPIError(
                f"alltoall needs {self.size} chunks, got {len(chunks)}"
            )
        tag = self._collective_tag(3)
        for dest in range(self.size):
            if dest != self.rank:
                self.send(dest, chunks[dest], tag)
        received: list[Any] = [None] * self.size
        received[self.rank] = chunks[self.rank]
        for _ in range(self.size - 1):
            message = self.recv(tag=tag)
            received[message.source] = message.payload
        return received

    def allreduce(self, value: Any, op=None) -> Any:
        """Reduce a value across ranks (default: sum) and share the result."""
        values = self.allgather(value)
        if op is None:
            result = values[0]
            for item in values[1:]:
                result = result + item
            return result
        result = values[0]
        for item in values[1:]:
            result = op(result, item)
        return result

"""In-process message-passing substrate (stands in for MVAPICH2).

The paper runs DataMPI over MVAPICH2-2.0b.  This module provides the MPI
subset DataMPI needs — point-to-point send/receive with source and tag
matching, barrier, and a handful of collectives — with ranks running as
threads inside one Python process.  Message delivery is FIFO per
(source, destination) pair, matching MPI's non-overtaking guarantee.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.common.errors import MPIError

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking receive waits before declaring deadlock.
RECV_TIMEOUT = 120.0


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    source: int
    tag: int
    payload: Any


class _Mailbox:
    """Thread-safe mailbox with selective (source, tag) receive."""

    def __init__(self) -> None:
        self._items: list[Message] = []
        self._cond = threading.Condition()

    def put(self, message: Message) -> None:
        with self._cond:
            self._items.append(message)
            self._cond.notify_all()

    def get(self, source: int, tag: int, timeout: float) -> Message:
        def find() -> int | None:
            for index, message in enumerate(self._items):
                if source not in (ANY_SOURCE, message.source):
                    continue
                if tag not in (ANY_TAG, message.tag):
                    continue
                return index
            return None

        with self._cond:
            index = find()
            while index is None:
                if not self._cond.wait(timeout):
                    raise MPIError(
                        f"recv timed out after {timeout}s waiting for "
                        f"source={source} tag={tag}"
                    )
                index = find()
            return self._items.pop(index)

    def pending(self) -> int:
        with self._cond:
            return len(self._items)


class World:
    """Shared state of one MPI world: mailboxes and a barrier."""

    def __init__(self, size: int):
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)


class Comm:
    """One rank's handle on the world — the object user code programs against."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise MPIError(f"rank {rank} out of range for world of {world.size}")
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point -------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"send to invalid rank {dest}")
        if tag < 0:
            raise MPIError(f"tag must be non-negative, got {tag}")
        self.world.mailboxes[dest].put(Message(self.rank, tag, payload))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float = RECV_TIMEOUT,
    ) -> Message:
        """Block until a matching message arrives; returns the full message."""
        return self.world.mailboxes[self.rank].get(source, tag, timeout)

    # -- collectives ----------------------------------------------------------

    def barrier(self, timeout: float = RECV_TIMEOUT) -> None:
        """Wait until every rank in the world reaches the barrier."""
        try:
            self.world.barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError("barrier broken (peer died or timed out)") from exc

    _COLLECTIVE_TAG_BASE = 1 << 20

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        tag = self._COLLECTIVE_TAG_BASE + 1
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(dest, payload, tag)
            return payload
        return self.recv(source=root, tag=tag).payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one value from every rank at ``root`` (rank order)."""
        tag = self._COLLECTIVE_TAG_BASE + 2
        if self.rank == root:
            values: list[Any] = [None] * self.size
            values[root] = payload
            for _ in range(self.size - 1):
                message = self.recv(tag=tag)
                values[message.source] = message.payload
            return values
        self.send(root, payload, tag)
        return None

    def allgather(self, payload: Any) -> list[Any]:
        """Gather at rank 0 then broadcast: every rank gets the full list."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, chunks: list[Any]) -> list[Any]:
        """Exchange ``chunks[i]`` with rank ``i``; returns received chunks
        indexed by source rank."""
        if len(chunks) != self.size:
            raise MPIError(
                f"alltoall needs {self.size} chunks, got {len(chunks)}"
            )
        tag = self._COLLECTIVE_TAG_BASE + 3
        for dest in range(self.size):
            if dest != self.rank:
                self.send(dest, chunks[dest], tag)
        received: list[Any] = [None] * self.size
        received[self.rank] = chunks[self.rank]
        for _ in range(self.size - 1):
            message = self.recv(tag=tag)
            received[message.source] = message.payload
        return received

    def allreduce(self, value: Any, op=None) -> Any:
        """Reduce a value across ranks (default: sum) and share the result."""
        values = self.allgather(value)
        if op is None:
            result = values[0]
            for item in values[1:]:
                result = result + item
            return result
        result = values[0]
        for item in values[1:]:
            result = op(result, item)
        return result

"""Deterministic fault injection for transports, jobs, and pools.

Recovery code is only trustworthy if its failure modes can be reproduced
on demand.  This module provides that reproduction: a :class:`FaultPlan`
is a list of rules, each naming an *action* (kill the rank, drop its
sockets, delay a receive, raise an error) and a *point* — a named
location inside the runtime (``rendezvous``, ``before-superstep``,
``shuffle``, ...) where instrumented code calls :func:`fire`.  The plan
travels with the job (via ``DataMPIConf.fault_plan``, transport kwargs,
or the ``REPRO_FAULT_PLAN`` environment variable) and fires *inside* the
rank at the exact instrumented point, so tests never sleep, poll, or
send signals from the outside.

Plan syntax (one rule per ``;``-separated clause)::

    action@point[:key=value]...

    kill@o-phase:rank=1:superstep=2
    drop@shuffle:rank=2
    delay@a-phase:rank=0:delay=0.05:count=3

Keys: ``rank`` (only fire on this rank; default any), ``superstep``
(only on this superstep; default any), ``count`` (fire at most N times
per process; default 1), ``delay`` (seconds, for the ``delay`` action).

Action semantics depend on where the rank runs:

- ``kill`` — in a dedicated rank *process* (shm / tcp children, external
  ``join_world`` ranks) the process hard-exits via ``os._exit`` without
  reporting an outcome, exactly like a machine loss.  In-process ranks
  (thread / inline transports) cannot be hard-killed without taking the
  whole interpreter down, so the action degrades to raising
  :class:`FaultInjected` — the transports' fail-fast abort path.
- ``drop`` — severs the rank's registered connections (tcp endpoints
  register a dropper that closes their control + peer sockets, so peers
  observe EOF mid-protocol) and then behaves like ``kill``.  Without a
  registered dropper it degrades to ``kill`` directly.
- ``delay`` — sleeps ``delay`` seconds inside the rank, then continues.
- ``raise`` — raises :class:`FaultInjected` (a deterministic task-style
  failure that every transport must fail fast on).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.common.errors import MPIError

__all__ = [
    "ACTIONS",
    "FAULT_PLAN_ENV",
    "KILL_EXIT_CODE",
    "POINTS",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "clear",
    "fire",
    "install",
    "installed",
    "mark_killable",
    "parse_fault_plan",
    "register_dropper",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a rank hard-killed by a ``kill``/``drop`` rule.  Chosen
#: high and unusual so supervisors can tell an injected death from a
#: genuine crash in tests, without any code treating it specially.
KILL_EXIT_CODE = 170

#: Every named location instrumented with a :func:`fire` call.
POINTS = frozenset(
    {
        "rendezvous",        # world formation (all transports)
        "before-superstep",  # rank loop, before running superstep N
        "after-superstep",   # rank loop, after superstep N completed
        "checkpoint-write",  # root rank, just before persisting iteration state
        "o-phase",           # inside an O task invocation
        "a-phase",           # inside an A task invocation
        "shuffle",           # O-side send path, mid chunk scatter
        "pool-submit",       # WorldPool serving loop, job received
    }
)

ACTIONS = frozenset({"kill", "drop", "delay", "raise"})


class FaultInjected(MPIError):
    """Raised (or reported) when a fault-plan rule fires in-process."""


@dataclass
class FaultRule:
    """One ``action@point`` clause of a fault plan."""

    action: str
    point: str
    rank: int | None = None
    superstep: int | None = None
    count: int = 1
    delay: float = 0.0
    # Remaining firings in *this* process; never encoded on the wire.
    remaining: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise MPIError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {sorted(ACTIONS)})"
            )
        if self.point not in POINTS:
            raise MPIError(
                f"unknown fault point {self.point!r} "
                f"(expected one of {sorted(POINTS)})"
            )
        if self.count < 1:
            raise MPIError(f"fault rule count must be >= 1, got {self.count}")
        if self.delay < 0:
            raise MPIError(f"fault rule delay must be >= 0, got {self.delay}")
        if self.action == "delay" and self.delay == 0.0:
            raise MPIError("delay action needs delay=<seconds> > 0")
        if self.remaining < 0:
            self.remaining = self.count

    def matches(self, point: str, rank: int | None,
                superstep: int | None) -> bool:
        if self.remaining <= 0 or point != self.point:
            return False
        if self.rank is not None and rank != self.rank:
            return False
        if self.superstep is not None and superstep != self.superstep:
            return False
        return True

    def encode(self) -> str:
        parts = [f"{self.action}@{self.point}"]
        if self.rank is not None:
            parts.append(f"rank={self.rank}")
        if self.superstep is not None:
            parts.append(f"superstep={self.superstep}")
        if self.count != 1:
            parts.append(f"count={self.count}")
        if self.delay:
            parts.append(f"delay={self.delay:g}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules, portable across process boundaries."""

    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        rules: list[FaultRule] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            head, _, tail = clause.partition(":")
            action, sep, point = head.partition("@")
            if not sep or not action or not point:
                raise MPIError(
                    f"bad fault clause {clause!r}: expected action@point[...]"
                )
            kwargs: dict[str, Any] = {}
            if tail:
                for pair in tail.split(":"):
                    key, sep, value = pair.partition("=")
                    key = key.strip()
                    if not sep or key not in {
                        "rank", "superstep", "count", "delay",
                    }:
                        raise MPIError(
                            f"bad fault option {pair!r} in {clause!r}"
                        )
                    try:
                        kwargs[key] = (
                            float(value) if key == "delay" else int(value)
                        )
                    except ValueError:
                        raise MPIError(
                            f"bad fault option value {pair!r} in {clause!r}"
                        ) from None
            rules.append(
                FaultRule(action=action.strip(), point=point.strip(), **kwargs)
            )
        return cls(rules=tuple(rules))

    def encode(self) -> str:
        return ";".join(rule.encode() for rule in self.rules)

    def fresh(self) -> "FaultPlan":
        """A copy with every rule's firing budget reset."""
        return FaultPlan(
            rules=tuple(replace(r, remaining=r.count) for r in self.rules)
        )


def parse_fault_plan(spec: "FaultPlan | str | None") -> FaultPlan | None:
    """Coerce a plan spec (plan object, DSL string, or None) to a plan."""
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        plan = FaultPlan.parse(spec)
        return plan if plan.rules else None
    raise MPIError(f"not a fault plan: {spec!r}")


# -- per-process injector state -----------------------------------------------

_plan: FaultPlan | None = None
_env_checked = False
_killable = False
_droppers: list[Callable[[], None]] = []
# Thread-transport ranks share one plan: matching + budget decrement must
# be atomic so a count=1 rule cannot fire on two racing ranks.
_fire_lock = threading.Lock()


def install(spec: "FaultPlan | str | None") -> FaultPlan | None:
    """Install ``spec`` as this process's active plan (None clears it).

    Each install gets a fresh copy so firing budgets never leak between
    runs that share one plan object.
    """
    global _plan, _env_checked
    plan = parse_fault_plan(spec)
    _plan = plan.fresh() if plan is not None else None
    _env_checked = True  # an explicit install wins over the environment
    return _plan


def installed() -> FaultPlan | None:
    """The active plan, consulting ``REPRO_FAULT_PLAN`` once if unset."""
    global _plan, _env_checked
    if not _env_checked:
        _env_checked = True
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if text and _plan is None:
            _plan = FaultPlan.parse(text).fresh()
    return _plan


def clear() -> None:
    """Remove the active plan, droppers, and the killable mark."""
    global _plan, _env_checked, _killable
    _plan = None
    _env_checked = True
    _killable = False
    _droppers.clear()


def mark_killable() -> None:
    """Declare this process a dedicated rank process, safe to hard-exit.

    Transports call this in their forked children (and ``join_world``
    calls it for external ranks).  Without the mark, ``kill`` rules
    degrade to raising :class:`FaultInjected` so a thread- or
    inline-transport rank never takes the host interpreter down.
    """
    global _killable
    _killable = True


def register_dropper(dropper: Callable[[], None]) -> Callable[[], None]:
    """Register a callable that severs this rank's live connections.

    Returns an unregister callable.  TCP endpoints register one closing
    their control and peer sockets so a ``drop`` rule produces real
    mid-protocol EOFs on every peer.
    """
    _droppers.append(dropper)

    def unregister() -> None:
        try:
            _droppers.remove(dropper)
        except ValueError:
            pass

    return unregister


def fire(point: str, *, rank: int | None = None,
         superstep: int | None = None) -> None:
    """Trigger any matching rules at an instrumented point.

    Near-free when no plan is installed.  ``kill``/``drop`` either
    hard-exit the process or raise :class:`FaultInjected`; ``delay``
    sleeps and returns; ``raise`` raises.
    """
    plan = _plan if _env_checked else installed()
    if plan is None:
        return
    matched: list[FaultRule] = []
    with _fire_lock:
        for rule in plan.rules:
            if not rule.matches(point, rank, superstep):
                continue
            rule.remaining -= 1
            matched.append(rule)
    for rule in matched:
        _execute(rule, point, rank)


def _execute(rule: FaultRule, point: str, rank: int | None) -> None:
    who = f"rank {rank}" if rank is not None else "this rank"
    if rule.action == "delay":
        time.sleep(rule.delay)
        return
    if rule.action == "raise":
        raise FaultInjected(
            f"fault plan raised at {point} on {who}"
        )
    if rule.action == "drop":
        for dropper in list(_droppers):
            try:
                dropper()
            except Exception:
                pass
    # kill, and drop's aftermath: die without reporting an outcome.
    if _killable:
        os._exit(KILL_EXIT_CODE)
    raise FaultInjected(
        f"fault plan killed {who} at {point} "
        "(in-process transport: degraded to fail-fast abort)"
    )

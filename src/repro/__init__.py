"""repro — reproduction of "Performance Benefits of DataMPI: A Case Study
with BigDataBench" (Liang, Feng, Lu, Xu; 2014).

The package rebuilds, in pure Python, every system the paper touches:

* :mod:`repro.datampi` — the DataMPI key-value communication library
  (bipartite O/A communicators) that is the paper's subject;
* :mod:`repro.hadoop` / :mod:`repro.spark` — functional mini-engines for
  the two baselines;
* :mod:`repro.bigdatabench` — the workload data generators;
* :mod:`repro.workloads` — Sort, WordCount, Grep, K-means, Naive Bayes on
  all three engines;
* :mod:`repro.simulate` / :mod:`repro.cluster` / :mod:`repro.hdfs` /
  :mod:`repro.perfmodels` — the discrete-event performance model of the
  paper's 8-node testbed;
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of the evaluation.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

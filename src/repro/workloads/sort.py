"""Sort on all three engines — Text Sort and Normal Sort variants.

"Sort sorts the records of input files based on the value of keys.  We
use two input data sets ... Normal Sort with compressed sequence input
data, the other is Text Sort with uncompressed text input data"
(Section 3.1).  Text Sort keys are the text lines themselves; Normal
Sort first decompresses ToSeqFile output (key = value = line).  All
implementations are *total-order* sorts: a range partitioner routes keys
so that concatenating the output partitions in order yields the globally
sorted data.
"""

from __future__ import annotations

from typing import Sequence

from repro.bigdatabench.toseqfile import SequenceFile
from repro.common.errors import WorkloadError
from repro.common.rng import substream
from repro.datampi import DataMPIConf, DataMPIJob, RangePartitioner, StorageConfig
from repro.hadoop import HadoopConf, MapReduceJob
from repro.spark import SparkContext
from repro.workloads.base import check_engine, split_round_robin


def sort_reference(lines: Sequence[str]) -> list[str]:
    return sorted(lines)


def _sample_keys(lines: Sequence[str], sample_size: int = 256, seed: int = 0) -> list[str]:
    """Key sample for the range partitioner (TotalOrderPartitioner's
    input sampler)."""
    if not lines:
        raise WorkloadError("cannot sort empty input")
    if len(lines) <= sample_size:
        return list(lines)
    rng = substream(seed, "sort-sample")
    return rng.sample(list(lines), sample_size)


def text_sort_hadoop_result(lines: Sequence[str], parallelism: int = 4):
    """Text Sort on the functional MapReduce engine, with its counters."""
    partitioner = RangePartitioner(_sample_keys(lines), parallelism)

    def mapper(_offset, line):
        yield line, None

    def reducer(line, values):
        for _ in values:
            yield line, None

    job = MapReduceJob(
        mapper, reducer,
        HadoopConf(num_reduces=parallelism, partitioner=partitioner, job_name="sort"),
    )
    return job.run(split_round_robin(list(enumerate(lines)), parallelism))


def text_sort_hadoop(lines: Sequence[str], parallelism: int = 4) -> list[str]:
    result = text_sort_hadoop_result(lines, parallelism)
    return [kv.key for kv in result.merged_outputs()]


def text_sort_spark(lines: Sequence[str], parallelism: int = 4,
                    ctx: SparkContext | None = None) -> list[str]:
    ctx = ctx or SparkContext(default_parallelism=parallelism)
    pairs = ctx.text_file(lines, parallelism).map(lambda line: (line, None))
    return [key for key, _ in pairs.sort_by_key(parallelism).collect()]


def text_sort_datampi_job(sample_lines: Sequence[str], parallelism: int = 4,
                          transport: str | None = None,
                          storage: StorageConfig | None = None) -> DataMPIJob:
    """The Text Sort O/A job, for cold runs and warm pools alike.

    The range partitioner is sampled from ``sample_lines`` at job
    construction — a pooled job therefore routes every submission with
    the partitioner sampled from the lines it was registered with, just
    as TotalOrderPartitioner fixes its boundaries before a job runs.
    """
    partitioner = RangePartitioner(_sample_keys(sample_lines), parallelism)

    def o_task(ctx, split):
        for line in split:
            ctx.send(line, None)

    def a_task(ctx):
        return [kv.key for kv in ctx]

    return DataMPIJob(
        o_task, a_task,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    partitioner=partitioner, job_name="text-sort",
                    transport=transport,
                    storage=storage),
    )


def text_sort_datampi_result(lines: Sequence[str], parallelism: int = 4,
                             transport: str | None = None,
                             storage: StorageConfig | None = None):
    """Text Sort as a DataMPI O/A job, with its counters."""
    job = text_sort_datampi_job(lines, parallelism, transport=transport,
                                storage=storage)
    return job.run(split_round_robin(list(lines), parallelism))


def text_sort_datampi(lines: Sequence[str], parallelism: int = 4,
                      transport: str | None = None) -> list[str]:
    result = text_sort_datampi_result(lines, parallelism, transport=transport)
    return [line for output in result.outputs for line in output]


def run_text_sort(engine: str, lines: Sequence[str], parallelism: int = 4,
                  transport: str | None = None,
                  storage: StorageConfig | None = None) -> list[str]:
    """Dispatch Text Sort to one of the three engines.

    ``storage`` applies to the datampi engine only.
    """
    check_engine(engine)
    if engine == "hadoop":
        return text_sort_hadoop(lines, parallelism)
    if engine == "spark":
        return text_sort_spark(lines, parallelism)
    result = text_sort_datampi_result(lines, parallelism, transport=transport,
                                      storage=storage)
    return [line for output in result.outputs for line in output]


def run_normal_sort(engine: str, seqfile: SequenceFile, parallelism: int = 4,
                    transport: str | None = None) -> list[str]:
    """Normal Sort: decompress the sequence file, then sort by key.

    The paper's Spark baseline cannot run this workload at cluster scale
    (OutOfMemoryError); the functional engine can at test scale — the OOM
    behaviour at the paper's sizes lives in the performance model.
    """
    check_engine(engine)
    lines = [key for key, _value in seqfile.records()]
    return run_text_sort(engine, lines, parallelism, transport=transport)


def normal_sort_datampi_result(seqfile: SequenceFile, parallelism: int = 4,
                               transport: str | None = None,
                               storage: StorageConfig | None = None):
    """Normal Sort as a DataMPI O/A job (decompress + total-order sort),
    with its counters."""
    lines = [key for key, _value in seqfile.records()]
    return text_sort_datampi_result(lines, parallelism, transport=transport,
                                    storage=storage)


def normal_sort_hadoop_result(seqfile: SequenceFile, parallelism: int = 4):
    """Normal Sort on the functional MapReduce engine, with its counters."""
    lines = [key for key, _value in seqfile.records()]
    return text_sort_hadoop_result(lines, parallelism)


def normal_sort_spark(seqfile: SequenceFile, parallelism: int = 4,
                      ctx: SparkContext | None = None) -> list[str]:
    """Normal Sort on the functional RDD engine."""
    lines = [key for key, _value in seqfile.records()]
    return text_sort_spark(lines, parallelism, ctx=ctx)

"""Shared helpers for running workloads on the three engines."""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.errors import WorkloadError

ENGINES = ("hadoop", "spark", "datampi")


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise WorkloadError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def split_round_robin(items: Sequence[Any], num_splits: int) -> list[list[Any]]:
    """Round-robin split used to feed Hadoop/DataMPI input splits."""
    if num_splits < 1:
        raise WorkloadError(f"num_splits must be >= 1, got {num_splits}")
    splits: list[list[Any]] = [[] for _ in range(num_splits)]
    for index, item in enumerate(items):
        splits[index % num_splits].append(item)
    return splits

"""Shared helpers for running workloads on the three engines."""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.errors import WorkloadError
from repro.storage import StorageConfig

ENGINES = ("hadoop", "spark", "datampi")


def resolve_storage(
    storage: StorageConfig | None, cache_bytes: int | None
) -> StorageConfig | None:
    """Fold the legacy ``cache_bytes`` convenience parameter into a
    :class:`StorageConfig` so drivers never forward the deprecated
    ``DataMPIConf(cache_bytes=...)`` kwarg (RPL005)."""
    if cache_bytes is None:
        return storage
    if storage is None:
        return StorageConfig(cache_bytes=cache_bytes)
    if storage.cache_bytes != cache_bytes:
        raise WorkloadError(
            f"cache_bytes={cache_bytes} disagrees with "
            f"storage.cache_bytes={storage.cache_bytes}; set one"
        )
    return storage


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise WorkloadError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def split_round_robin(items: Sequence[Any], num_splits: int) -> list[list[Any]]:
    """Round-robin split used to feed Hadoop/DataMPI input splits."""
    if num_splits < 1:
        raise WorkloadError(f"num_splits must be >= 1, got {num_splits}")
    splits: list[list[Any]] = [[] for _ in range(num_splits)]
    for index, item in enumerate(items):
        splits[index % num_splits].append(item)
    return splits

"""K-means on all three engines (Mahout's iterative MapReduce structure).

Section 4.6: "Each iterative execution in Mahout is a MapReduce job.  In
one job, Map tasks read the initial or previous cluster centroids from
HDFS, afterwards, assign the input vectors to appropriate clusters
according to the distance calculation and train the new centroids
independently. ... Reduce tasks receive and update the centroids for
next iteration."  The paper also notes "most of K-means calculation
happens in Map phase, and few intermediate data is generated" — with a
combiner, each map task emits at most ``k`` partial sums.

All three engines run the same assignment/update math, so they converge
to identical centroids from identical seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bigdatabench.vectors import SparseVector, mean_vector
from repro.common.errors import WorkloadError
from repro.common.rng import substream
from repro.datampi import DataMPIConf, DataMPIJob, IterativeJob, IterativeResult, StorageConfig
from repro.hadoop import HadoopConf, MapReduceJob
from repro.spark import SparkContext
from repro.workloads.base import check_engine, resolve_storage, split_round_robin

#: Convergence threshold on centroid movement (Mahout's default-ish).
DEFAULT_EPSILON = 1e-3


@dataclass
class KMeansResult:
    """Final clustering state."""

    centroids: list[SparseVector]
    iterations: int
    converged: bool

    def assign(self, vector: SparseVector) -> int:
        """Nearest-centroid assignment for one vector."""
        return min(
            range(len(self.centroids)),
            key=lambda index: vector.squared_distance(self.centroids[index]),
        )


def initial_centroids(vectors: Sequence[SparseVector], k: int, seed: int = 0) -> list[SparseVector]:
    """Sample k distinct starting centroids (Mahout's random seeding)."""
    if k < 1:
        raise WorkloadError(f"k must be >= 1, got {k}")
    if len(vectors) < k:
        raise WorkloadError(f"need >= {k} vectors, got {len(vectors)}")
    rng = substream(seed, "kmeans-init")
    return [SparseVector(dict(v.weights)) for v in rng.sample(list(vectors), k)]


def _nearest(vector: SparseVector, centroids: Sequence[SparseVector]) -> int:
    return min(
        range(len(centroids)),
        key=lambda index: vector.squared_distance(centroids[index]),
    )


def _max_shift(old: Sequence[SparseVector], new: Sequence[SparseVector]) -> float:
    return max(
        math.sqrt(o.squared_distance(n)) for o, n in zip(old, new)
    )


def _merge_partials(a: tuple[dict, int], b: tuple[dict, int]) -> tuple[dict, int]:
    """Merge two (weight-sum dict, count) partial aggregates."""
    weights = dict(a[0])
    for dim, weight in b[0].items():
        weights[dim] = weights.get(dim, 0.0) + weight
    return weights, a[1] + b[1]


def _centroid_of(partial: tuple[dict, int]) -> SparseVector:
    weights, count = partial
    if count == 0:
        raise WorkloadError("empty cluster partial")
    return SparseVector({dim: w / count for dim, w in weights.items()})


def kmeans_reference(
    vectors: Sequence[SparseVector], k: int, max_iterations: int = 10,
    epsilon: float = DEFAULT_EPSILON, seed: int = 0,
) -> KMeansResult:
    """Single-threaded reference implementation."""
    centroids = initial_centroids(vectors, k, seed)
    for iteration in range(1, max_iterations + 1):
        buckets: dict[int, list[SparseVector]] = {}
        for vector in vectors:
            buckets.setdefault(_nearest(vector, centroids), []).append(vector)
        updated = [
            mean_vector(buckets[index]) if index in buckets else centroids[index]
            for index in range(k)
        ]
        shift = _max_shift(centroids, updated)
        centroids = updated
        if shift < epsilon:
            return KMeansResult(centroids, iteration, True)
    return KMeansResult(centroids, max_iterations, False)


def _iterate_engine(engine: str, vectors, k, max_iterations, epsilon, seed,
                    parallelism, transport=None,
                    spark_ctx: SparkContext | None = None):
    """Shared iteration driver; ``one_round`` differs per engine."""
    centroids = initial_centroids(vectors, k, seed)
    cached_rdd = None
    if engine == "spark":
        spark_ctx = spark_ctx or SparkContext(default_parallelism=parallelism,
                                              memory_capacity=1 << 30)
        cached_rdd = spark_ctx.parallelize(
            [(index, vector) for index, vector in enumerate(vectors)], parallelism
        ).cache()

    for iteration in range(1, max_iterations + 1):
        if engine == "hadoop":
            partials = _round_hadoop(vectors, centroids, parallelism)
        elif engine == "spark":
            partials = _round_spark(cached_rdd, centroids, parallelism)
        else:
            partials = _round_datampi(vectors, centroids, parallelism, transport)
        updated = [
            _centroid_of(partials[index]) if index in partials else centroids[index]
            for index in range(k)
        ]
        shift = _max_shift(centroids, updated)
        centroids = updated
        if shift < epsilon:
            return KMeansResult(centroids, iteration, True)
    return KMeansResult(centroids, max_iterations, False)


def _round_hadoop(vectors, centroids, parallelism) -> dict[int, tuple[dict, int]]:
    def mapper(_index, vector):
        cluster = _nearest(vector, centroids)
        yield cluster, (dict(vector.weights), 1)

    def reducer(cluster, partials):
        merged = partials[0]
        for partial in partials[1:]:
            merged = _merge_partials(merged, partial)
        yield cluster, merged

    job = MapReduceJob(
        mapper, reducer,
        HadoopConf(
            num_reduces=parallelism,
            combiner=lambda cluster, partials: _reduce_partial_list(partials),
            job_name="kmeans-iteration",
        ),
    )
    splits = split_round_robin(list(enumerate(vectors)), parallelism)
    result = job.run(splits)
    return {kv.key: kv.value for kv in result.merged_outputs()}


def _reduce_partial_list(partials: list[tuple[dict, int]]) -> tuple[dict, int]:
    merged = partials[0]
    for partial in partials[1:]:
        merged = _merge_partials(merged, partial)
    return merged


def _round_spark(cached_rdd, centroids, parallelism) -> dict[int, tuple[dict, int]]:
    assignments = cached_rdd.map(
        lambda pair: (_nearest(pair[1], centroids), (dict(pair[1].weights), 1))
    )
    reduced = assignments.reduce_by_key(_merge_partials, parallelism)
    return dict(reduced.collect())


def _round_datampi(vectors, centroids, parallelism,
                   transport=None) -> dict[int, tuple[dict, int]]:
    def o_task(ctx, split):
        for vector in split:
            ctx.send(_nearest(vector, centroids), (dict(vector.weights), 1))

    def a_task(ctx):
        return [
            (cluster, _reduce_partial_list(values))
            for cluster, values in ctx.grouped()
        ]

    job = DataMPIJob(
        o_task, a_task,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda cluster, values: _reduce_partial_list(values),
                    job_name="kmeans-iteration",
                    transport=transport),
    )
    result = job.run(split_round_robin(list(vectors), parallelism))
    return dict(result.merged_outputs())


def kmeans_iterative_job(
    vectors: Sequence[SparseVector],
    k: int,
    max_iterations: int = 10,
    epsilon: float = DEFAULT_EPSILON,
    seed: int = 0,
    parallelism: int = 4,
    transport: str | None = None,
    mode: str = "iteration",
    cache_bytes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    storage: StorageConfig | None = None,
) -> tuple[KMeansResult, IterativeResult]:
    """K-means as a DataMPI superstep job (Iteration mode or its Common
    baseline).

    Same math, partitioning, buffers and merge order as the run-once
    loop, so the centroids are byte-identical across modes — but with
    ``mode="iteration"`` the input vectors cross the comm layer once and
    are served from the per-rank cache thereafter.  Returns both the
    workload-level :class:`KMeansResult` and the driver-level
    :class:`IterativeResult` (per-iteration byte counters and timings).
    """
    if max_iterations < 1:
        raise WorkloadError("max_iterations must be >= 1")

    def o_task(ctx, split, centroids):
        for vector in split:
            ctx.send(_nearest(vector, centroids), (dict(vector.weights), 1))

    def a_task(ctx, _centroids):
        return [
            (cluster, _reduce_partial_list(values))
            for cluster, values in ctx.grouped()
        ]

    def update(centroids, merged, _iteration):
        partials = dict(merged)
        updated = [
            _centroid_of(partials[index]) if index in partials else centroids[index]
            for index in range(k)
        ]
        return updated, _max_shift(centroids, updated) < epsilon

    job = IterativeJob(
        o_task, a_task, update,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda cluster, values: _reduce_partial_list(values),
                    job_name="kmeans-iterative", transport=transport,
                    mode=mode, checkpoint_dir=checkpoint_dir,
                    storage=resolve_storage(storage, cache_bytes)),
        max_iterations=max_iterations,
    )
    result = job.run(
        split_round_robin(list(vectors), parallelism),
        initial_centroids(vectors, k, seed),
        resume=resume,
    )
    return (
        KMeansResult(result.state, result.iterations, result.converged),
        result,
    )


def run_kmeans(
    engine: str,
    vectors: Sequence[SparseVector],
    k: int,
    max_iterations: int = 10,
    epsilon: float = DEFAULT_EPSILON,
    seed: int = 0,
    parallelism: int = 4,
    transport: str | None = None,
    mode: str = "common",
    cache_bytes: int | None = None,
    spark_ctx: SparkContext | None = None,
) -> KMeansResult:
    """Run Mahout-style iterative K-means on one of the three engines.

    ``mode="iteration"`` (DataMPI engine only) keeps ranks alive across
    iterations and serves the input from the cross-iteration KV cache;
    the default ``"common"`` re-launches one job per iteration on every
    engine, as the paper's setup does.  ``spark_ctx`` lets callers pass
    an instrumented :class:`~repro.spark.SparkContext` (the experiment
    matrix reads its ``shuffle_bytes`` counter after the run).
    """
    check_engine(engine)
    if max_iterations < 1:
        raise WorkloadError("max_iterations must be >= 1")
    if mode != "common":
        if engine != "datampi":
            raise WorkloadError(
                f"execution mode {mode!r} needs the datampi engine, got {engine!r}"
            )
        if mode != "iteration":
            raise WorkloadError(f"K-means supports modes 'common' and 'iteration', got {mode!r}")
        result, _stats = kmeans_iterative_job(
            vectors, k, max_iterations, epsilon, seed, parallelism,
            transport=transport, cache_bytes=cache_bytes,
        )
        return result
    return _iterate_engine(engine, vectors, k, max_iterations, epsilon, seed,
                           parallelism, transport, spark_ctx=spark_ctx)

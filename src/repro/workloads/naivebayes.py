"""Naive Bayes on Hadoop and DataMPI (Mahout's multi-job pipeline).

Section 4.6: "The procedure of Naive Bayes mainly contains two steps,
including converting sequence files to sparse vectors and training the
Naive Bayes model. ... The main operation in steps above is counting,
including term counting and document counting."  The paper compares only
Hadoop and DataMPI because "the latest BigDataBench lacks the
implementation of Naive Bayes in Spark" — this module mirrors that:
``run_naive_bayes`` accepts ``engine in {"hadoop", "datampi"}``.

The pipeline runs three counting jobs (term frequency per class, document
frequency, per-class document counts) and then trains a multinomial model
with Laplace smoothing.  Both engines produce bit-identical models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bigdatabench.seedmodels import all_amazon_models
from repro.common.errors import WorkloadError
from repro.common.rng import substream
from repro.datampi import DataMPIConf, DataMPIJob, IterativeJob, IterativeResult, StorageConfig
from repro.hadoop import HadoopConf, JobPipeline, MapReduceJob
from repro.workloads.base import resolve_storage, split_round_robin


@dataclass(frozen=True)
class LabeledDocument:
    """One training/test document."""

    doc_id: int
    label: str
    tokens: tuple[str, ...]


def generate_labeled_documents(
    num_docs: int, words_per_doc: int = 30, seed: int = 0
) -> list[LabeledDocument]:
    """Documents drawn from the five amazon seed models, labels balanced.

    "By default, these documents are classified into five categories
    according to their dependent seed models, e.g. amazon1-amazon5."
    """
    if num_docs < 1:
        raise WorkloadError(f"need >= 1 document, got {num_docs}")
    models = all_amazon_models()
    documents = []
    for doc_id in range(num_docs):
        model = models[doc_id % len(models)]
        rng = substream(seed, "nbgen", doc_id)
        tokens = tuple(model.sample_sentence(rng, words_per_doc).split())
        documents.append(LabeledDocument(doc_id, model.name, tokens))
    return documents


@dataclass
class NaiveBayesModel:
    """Multinomial Naive Bayes with Laplace smoothing."""

    class_term_counts: dict[str, dict[str, int]]
    class_doc_counts: dict[str, int]
    vocabulary: set[str]
    alpha: float = 1.0

    def log_prior(self, label: str) -> float:
        total_docs = sum(self.class_doc_counts.values())
        return math.log(self.class_doc_counts[label] / total_docs)

    def log_likelihood(self, label: str, token: str) -> float:
        counts = self.class_term_counts[label]
        total = sum(counts.values())
        smoothed = counts.get(token, 0) + self.alpha
        return math.log(smoothed / (total + self.alpha * len(self.vocabulary)))

    def classify(self, tokens: Sequence[str]) -> str:
        """Most probable class for a token sequence."""
        best_label, best_score = None, -math.inf
        for label in sorted(self.class_doc_counts):
            score = self.log_prior(label)
            for token in tokens:
                score += self.log_likelihood(label, token)
            if score > best_score:
                best_label, best_score = label, score
        assert best_label is not None
        return best_label

    def accuracy(self, documents: Sequence[LabeledDocument]) -> float:
        if not documents:
            raise WorkloadError("accuracy over zero documents")
        correct = sum(
            1 for doc in documents if self.classify(doc.tokens) == doc.label
        )
        return correct / len(documents)


def train_reference(documents: Sequence[LabeledDocument], alpha: float = 1.0) -> NaiveBayesModel:
    """Direct single-pass trainer (verification oracle)."""
    term_counts: dict[str, dict[str, int]] = {}
    doc_counts: dict[str, int] = {}
    vocabulary: set[str] = set()
    for doc in documents:
        doc_counts[doc.label] = doc_counts.get(doc.label, 0) + 1
        table = term_counts.setdefault(doc.label, {})
        for token in doc.tokens:
            table[token] = table.get(token, 0) + 1
            vocabulary.add(token)
    return NaiveBayesModel(term_counts, doc_counts, vocabulary, alpha)


def _assemble(term_rows, doc_rows, vocab_rows, alpha) -> NaiveBayesModel:
    """Build the model from the three counting jobs' outputs."""
    term_counts: dict[str, dict[str, int]] = {}
    for (label, token), count in term_rows:
        term_counts.setdefault(label, {})[token] = count
    doc_counts = dict(doc_rows)
    vocabulary = {token for token, _count in vocab_rows}
    return NaiveBayesModel(term_counts, doc_counts, vocabulary, alpha)


def train_hadoop_result(
    documents: Sequence[LabeledDocument], parallelism: int = 4,
    alpha: float = 1.0,
) -> tuple[NaiveBayesModel, dict[str, int]]:
    """Mahout-on-Hadoop: three chained counting MapReduce jobs.

    Returns the trained model together with the pipeline's summed
    counters (``shuffle_bytes`` etc. across all three jobs), so the
    experiment matrix can report the bytes the chained-job structure
    moves.
    """
    pipeline = JobPipeline(num_splits=parallelism)
    splits = split_round_robin([(d.doc_id, d) for d in documents], parallelism)

    def tf_mapper(_doc_id, doc):
        for token in doc.tokens:
            yield (doc.label, token), 1

    def sum_reducer(key, values):
        yield key, sum(values)

    term_job = MapReduceJob(
        tf_mapper, sum_reducer,
        HadoopConf(num_reduces=parallelism, combiner=lambda k, vs: sum(vs),
                   job_name="nb-termcount"),
    )
    term_result = pipeline.run_job(term_job, splits)

    def df_mapper(_doc_id, doc):
        for token in set(doc.tokens):
            yield token, 1

    df_job = MapReduceJob(
        df_mapper, sum_reducer,
        HadoopConf(num_reduces=parallelism, combiner=lambda k, vs: sum(vs),
                   job_name="nb-docfreq"),
    )
    df_result = pipeline.run_job(df_job, splits)

    def label_mapper(_doc_id, doc):
        yield doc.label, 1

    label_job = MapReduceJob(
        label_mapper, sum_reducer,
        HadoopConf(num_reduces=parallelism, combiner=lambda k, vs: sum(vs),
                   job_name="nb-classcount"),
    )
    label_result = pipeline.run_job(label_job, splits)

    model = _assemble(
        [(kv.key, kv.value) for kv in term_result.merged_outputs()],
        [(kv.key, kv.value) for kv in label_result.merged_outputs()],
        [(kv.key, kv.value) for kv in df_result.merged_outputs()],
        alpha,
    )
    return model, pipeline.total_counters


def train_hadoop(documents: Sequence[LabeledDocument], parallelism: int = 4,
                 alpha: float = 1.0) -> NaiveBayesModel:
    """Mahout-on-Hadoop: three chained counting MapReduce jobs."""
    model, _counters = train_hadoop_result(documents, parallelism, alpha)
    return model


def train_datampi_result(
    documents: Sequence[LabeledDocument], parallelism: int = 4,
    alpha: float = 1.0, transport: str | None = None,
    storage: StorageConfig | None = None,
) -> tuple[NaiveBayesModel, dict[str, int]]:
    """The same three counting passes as chained DataMPI jobs.

    Returns the trained model plus the three jobs' summed counters
    (``o.bytes_sent`` etc.), the Common-mode cost the Iteration-mode
    variant exists to undercut.
    """
    splits = split_round_robin(list(documents), parallelism)
    conf = DataMPIConf(num_o=parallelism, num_a=parallelism,
                       combiner=lambda key, values: sum(values),
                       job_name="nb-count",
                       transport=transport,
                       storage=storage)

    def sum_a_task(ctx):
        return [(key, sum(values)) for key, values in ctx.grouped()]

    def term_o(ctx, split):
        for doc in split:
            for token in doc.tokens:
                ctx.send((doc.label, token), 1)

    def df_o(ctx, split):
        for doc in split:
            for token in set(doc.tokens):
                ctx.send(token, 1)

    def label_o(ctx, split):
        for doc in split:
            ctx.send(doc.label, 1)

    totals: dict[str, int] = {}

    def run_pass(o_task):
        result = DataMPIJob(o_task, sum_a_task, conf).run(splits)
        for name, value in result.counters.items():
            totals[name] = totals.get(name, 0) + value
        return result.merged_outputs()

    term_rows = run_pass(term_o)
    df_rows = run_pass(df_o)
    label_rows = run_pass(label_o)
    return _assemble(term_rows, label_rows, df_rows, alpha), totals


def train_datampi(documents: Sequence[LabeledDocument], parallelism: int = 4,
                  alpha: float = 1.0, transport: str | None = None) -> NaiveBayesModel:
    """The same three counting passes as chained DataMPI jobs."""
    model, _counters = train_datampi_result(documents, parallelism, alpha,
                                            transport=transport)
    return model


#: Counting passes of the Mahout pipeline, run as one superstep each in
#: Iteration mode (the per-iteration "state" is simply which pass runs).
_NB_PHASES = ("term", "df", "label")


def train_datampi_iterative(
    documents: Sequence[LabeledDocument], parallelism: int = 4,
    alpha: float = 1.0, transport: str | None = None,
    mode: str = "iteration", cache_bytes: int | None = None,
    storage: StorageConfig | None = None,
) -> tuple[NaiveBayesModel, IterativeResult]:
    """The three counting passes as supersteps of one kept-alive world.

    The documents are scattered once and pinned in the O-side cache; the
    document-frequency and class-count passes read them locally instead
    of re-partitioning — the chained-job redundancy Common mode pays
    three times.  Counting math matches :func:`train_datampi` exactly, so
    the model is bit-identical.  Returns the model plus the driver-level
    per-superstep counters.
    """

    def o_task(ctx, split, state):
        phase = state["phase"]
        for doc in split:
            if phase == "term":
                for token in doc.tokens:
                    ctx.send((doc.label, token), 1)
            elif phase == "df":
                for token in set(doc.tokens):
                    ctx.send(token, 1)
            else:
                ctx.send(doc.label, 1)

    def a_task(ctx, _state):
        return [(key, sum(values)) for key, values in ctx.grouped()]

    def update(state, merged, _iteration):
        rows = dict(state["rows"])
        rows[state["phase"]] = merged
        done = len(rows) == len(_NB_PHASES)
        next_phase = state["phase"] if done else _NB_PHASES[len(rows)]
        return {"phase": next_phase, "rows": rows}, done

    job = IterativeJob(
        o_task, a_task, update,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda key, values: sum(values),
                    job_name="nb-iterative", transport=transport,
                    mode=mode, storage=resolve_storage(storage, cache_bytes)),
        max_iterations=len(_NB_PHASES),
    )
    result = job.run(
        split_round_robin(list(documents), parallelism),
        {"phase": _NB_PHASES[0], "rows": {}},
    )
    rows = result.state["rows"]
    model = _assemble(rows["term"], rows["label"], rows["df"], alpha)
    return model, result


def run_naive_bayes(engine: str, documents: Sequence[LabeledDocument],
                    parallelism: int = 4, alpha: float = 1.0,
                    transport: str | None = None,
                    mode: str = "common",
                    cache_bytes: int | None = None) -> NaiveBayesModel:
    """Train Naive Bayes on ``hadoop`` or ``datampi`` (no Spark — the paper's
    BigDataBench release lacks it, Section 4.6).

    ``mode="iteration"`` (DataMPI engine only) chains the three counting
    passes over one kept-alive world with the documents cached per rank.
    """
    if mode not in ("common", "iteration"):
        raise WorkloadError(
            f"Naive Bayes supports modes 'common' and 'iteration', got {mode!r}"
        )
    if mode == "iteration":
        if engine != "datampi":
            raise WorkloadError(
                f"execution mode {mode!r} needs the datampi engine, got {engine!r}"
            )
        model, _stats = train_datampi_iterative(
            documents, parallelism, alpha, transport=transport,
            cache_bytes=cache_bytes,
        )
        return model
    if engine == "hadoop":
        return train_hadoop(documents, parallelism, alpha)
    if engine == "datampi":
        return train_datampi(documents, parallelism, alpha, transport=transport)
    raise WorkloadError(
        f"Naive Bayes supports engines 'hadoop' and 'datampi', got {engine!r}"
    )

"""The five BigDataBench workloads (Table 1) on the three engines."""

from repro.workloads.base import ENGINES, check_engine, split_round_robin
from repro.workloads.grep import (
    grep_datampi,
    grep_hadoop,
    grep_reference,
    grep_spark,
    run_grep,
)
from repro.workloads.kmeans import (
    DEFAULT_EPSILON,
    KMeansResult,
    initial_centroids,
    kmeans_iterative_job,
    kmeans_reference,
    run_kmeans,
)
from repro.workloads.naivebayes import (
    LabeledDocument,
    NaiveBayesModel,
    generate_labeled_documents,
    run_naive_bayes,
    train_datampi,
    train_datampi_iterative,
    train_hadoop,
    train_reference,
)
from repro.workloads.streaming import (
    chunk_lines,
    grep_streaming,
    merge_window_counts,
    wordcount_streaming,
)
from repro.workloads.sort import (
    run_normal_sort,
    run_text_sort,
    sort_reference,
    text_sort_datampi,
    text_sort_hadoop,
    text_sort_spark,
)
from repro.workloads.wordcount import (
    run_wordcount,
    wordcount_datampi,
    wordcount_hadoop,
    wordcount_reference,
    wordcount_spark,
)

__all__ = [
    "ENGINES",
    "check_engine",
    "split_round_robin",
    "grep_datampi",
    "grep_hadoop",
    "grep_reference",
    "grep_spark",
    "run_grep",
    "DEFAULT_EPSILON",
    "KMeansResult",
    "initial_centroids",
    "kmeans_iterative_job",
    "kmeans_reference",
    "run_kmeans",
    "LabeledDocument",
    "NaiveBayesModel",
    "generate_labeled_documents",
    "run_naive_bayes",
    "train_datampi",
    "train_datampi_iterative",
    "train_hadoop",
    "train_reference",
    "chunk_lines",
    "grep_streaming",
    "merge_window_counts",
    "wordcount_streaming",
    "run_normal_sort",
    "run_text_sort",
    "sort_reference",
    "text_sort_datampi",
    "text_sort_hadoop",
    "text_sort_spark",
    "run_wordcount",
    "wordcount_datampi",
    "wordcount_hadoop",
    "wordcount_reference",
    "wordcount_spark",
]

"""WordCount on all three engines.

"WordCount counts the number of each word occurrences in a collection of
documents" (Section 3.1).  All three implementations use a combiner /
map-side combine — the configuration BigDataBench ships — which is why
the paper sees tiny intermediate data for this workload (Section 4.4:
"the word dictionary of the input files is small and few intermediate
data is generated").
"""

from __future__ import annotations

from typing import Sequence

from repro.datampi import DataMPIConf, DataMPIJob, StorageConfig
from repro.hadoop import HadoopConf, MapReduceJob
from repro.spark import SparkContext
from repro.workloads.base import check_engine, split_round_robin


def wordcount_reference(lines: Sequence[str]) -> dict[str, int]:
    """Plain-Python reference against which every engine is verified."""
    counts: dict[str, int] = {}
    for line in lines:
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def wordcount_hadoop_result(lines: Sequence[str], parallelism: int = 4):
    """WordCount on the functional MapReduce engine, with its counters.

    Returns the raw :class:`~repro.hadoop.mapreduce.HadoopResult` so
    callers (e.g. the experiment matrix) can read ``shuffle_bytes`` and
    the other stage counters alongside the outputs.
    """
    def mapper(_offset, line):
        for word in line.split():
            yield word, 1

    def reducer(word, counts):
        yield word, sum(counts)

    job = MapReduceJob(
        mapper, reducer,
        HadoopConf(num_reduces=parallelism, combiner=lambda word, counts: sum(counts),
                   job_name="wordcount"),
    )
    splits = split_round_robin(list(enumerate(lines)), parallelism)
    return job.run(splits)


def wordcount_hadoop(lines: Sequence[str], parallelism: int = 4) -> dict[str, int]:
    result = wordcount_hadoop_result(lines, parallelism)
    return {kv.key: kv.value for kv in result.merged_outputs()}


def wordcount_spark(lines: Sequence[str], parallelism: int = 4,
                    ctx: SparkContext | None = None) -> dict[str, int]:
    ctx = ctx or SparkContext(default_parallelism=parallelism)
    counts = (
        ctx.text_file(lines, parallelism)
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .reduce_by_key(lambda a, b: a + b, parallelism)
    )
    return dict(counts.collect())


def wordcount_datampi_job(parallelism: int = 4,
                          transport: str | None = None,
                          storage: StorageConfig | None = None) -> DataMPIJob:
    """The WordCount O/A job itself, for cold runs *and* warm pools.

    ``wordcount_datampi_result`` runs it on a fresh world; a serving
    :class:`~repro.serving.pool.WorldPool` registers the same job and
    submits inputs against an already-formed world — one definition, so
    the two paths cannot diverge.
    """
    def o_task(ctx, split):
        for line in split:
            for word in line.split():
                ctx.send(word, 1)

    def a_task(ctx):
        return [(word, sum(values)) for word, values in ctx.grouped()]

    return DataMPIJob(
        o_task, a_task,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda word, values: sum(values),
                    job_name="wordcount",
                    transport=transport,
                    storage=storage),
    )


def wordcount_datampi_result(lines: Sequence[str], parallelism: int = 4,
                             transport: str | None = None,
                             storage: StorageConfig | None = None):
    """WordCount as a DataMPI O/A job, with its counters.

    Returns the raw :class:`~repro.datampi.job.JobResult` so callers can
    read ``o.bytes_sent`` and friends alongside the outputs.
    """
    job = wordcount_datampi_job(parallelism, transport=transport, storage=storage)
    return job.run(split_round_robin(list(lines), parallelism))


def wordcount_datampi(lines: Sequence[str], parallelism: int = 4,
                      transport: str | None = None) -> dict[str, int]:
    return dict(wordcount_datampi_result(lines, parallelism,
                                         transport=transport).merged_outputs())


def run_wordcount(engine: str, lines: Sequence[str], parallelism: int = 4,
                  transport: str | None = None,
                  storage: StorageConfig | None = None) -> dict[str, int]:
    """Dispatch WordCount to one of the three engines.

    ``storage`` applies to the datampi engine only (the others have no
    spill store).
    """
    check_engine(engine)
    if engine == "hadoop":
        return wordcount_hadoop(lines, parallelism)
    if engine == "spark":
        return wordcount_spark(lines, parallelism)
    return dict(wordcount_datampi_result(
        lines, parallelism, transport=transport, storage=storage
    ).merged_outputs())

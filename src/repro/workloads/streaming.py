"""Streaming-mode workload variants: grep and wordcount over unbounded input.

BigDataBench's text workloads are batch jobs; these variants feed the
same O/A tasks an (in principle unbounded) line stream through
:class:`~repro.datampi.modes.StreamingJob`.  Lines are chunked into
splits, admitted window by window, and each window's counts are flushed
with a watermark.  Summing the per-window counts reproduces the batch
result exactly — asserted by the transport-equivalence suite — so the
streaming pipeline is a pure latency/footprint trade, not a different
answer.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.common.errors import WorkloadError
from repro.datampi import DataMPIConf, StorageConfig, StreamingJob, StreamResult


def chunk_lines(lines: Iterable[str], lines_per_split: int) -> Iterator[list[str]]:
    """Group a line stream into splits of at most ``lines_per_split``."""
    if lines_per_split < 1:
        raise WorkloadError(f"lines_per_split must be >= 1, got {lines_per_split}")
    batch: list[str] = []
    for line in lines:
        batch.append(line)
        if len(batch) >= lines_per_split:
            yield batch
            batch = []
    if batch:
        yield batch


def merge_window_counts(result: StreamResult) -> dict[str, int]:
    """Fold per-window ``(key, count)`` outputs into stream totals."""
    totals: dict[str, int] = {}
    for key, count in result.merged_outputs():
        totals[key] = totals.get(key, 0) + count
    return totals


def _streaming_count_job(o_task, job_name: str, parallelism: int,
                         transport: str | None,
                         window_splits: int | None,
                         storage: StorageConfig | None = None) -> StreamingJob:
    def a_task(ctx):
        return [(key, sum(values)) for key, values in ctx.grouped()]

    return StreamingJob(
        o_task, a_task,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda key, values: sum(values),
                    job_name=job_name, mode="streaming", transport=transport,
                    storage=storage),
        window_splits=window_splits,
    )


def wordcount_streaming(
    lines: Iterable[str],
    parallelism: int = 4,
    lines_per_split: int = 50,
    window_splits: int | None = None,
    transport: str | None = None,
    storage: StorageConfig | None = None,
) -> StreamResult:
    """WordCount in Streaming mode: per-window counts with watermarks."""

    def o_task(ctx, split):
        for line in split:
            for word in line.split():
                ctx.send(word, 1)

    job = _streaming_count_job(
        o_task, "wordcount-stream", parallelism, transport, window_splits,
        storage=storage,
    )
    return job.run(chunk_lines(lines, lines_per_split))


def grep_streaming(
    lines: Iterable[str],
    pattern: str,
    parallelism: int = 4,
    lines_per_split: int = 50,
    window_splits: int | None = None,
    transport: str | None = None,
    storage: StorageConfig | None = None,
) -> StreamResult:
    """Grep in Streaming mode: per-window match counts with watermarks."""
    compiled = re.compile(pattern)

    def o_task(ctx, split):
        for line in split:
            for match in compiled.findall(line):
                ctx.send(match, 1)

    job = _streaming_count_job(
        o_task, "grep-stream", parallelism, transport, window_splits,
        storage=storage,
    )
    return job.run(chunk_lines(lines, lines_per_split))

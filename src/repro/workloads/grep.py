"""Grep on all three engines.

"Grep searches strings conforming to a certain pattern in the input
documents and counts the number of the occurrence of the matched
strings" (Section 3.1).  Output is ``{matched string: occurrences}`` —
the per-matched-string counting Hadoop's grep example produces.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.datampi import DataMPIConf, DataMPIJob, StorageConfig
from repro.hadoop import HadoopConf, MapReduceJob
from repro.spark import SparkContext
from repro.workloads.base import check_engine, split_round_robin


def grep_reference(lines: Sequence[str], pattern: str) -> dict[str, int]:
    compiled = re.compile(pattern)
    counts: dict[str, int] = {}
    for line in lines:
        for match in compiled.findall(line):
            counts[match] = counts.get(match, 0) + 1
    return counts


def grep_hadoop_result(lines: Sequence[str], pattern: str, parallelism: int = 4):
    """Grep on the functional MapReduce engine, with its counters."""
    compiled = re.compile(pattern)

    def mapper(_offset, line):
        for match in compiled.findall(line):
            yield match, 1

    def reducer(match, counts):
        yield match, sum(counts)

    job = MapReduceJob(
        mapper, reducer,
        HadoopConf(num_reduces=parallelism, combiner=lambda m, cs: sum(cs),
                   job_name="grep"),
    )
    return job.run(split_round_robin(list(enumerate(lines)), parallelism))


def grep_hadoop(lines: Sequence[str], pattern: str, parallelism: int = 4) -> dict[str, int]:
    result = grep_hadoop_result(lines, pattern, parallelism)
    return {kv.key: kv.value for kv in result.merged_outputs()}


def grep_spark(lines: Sequence[str], pattern: str, parallelism: int = 4,
               ctx: SparkContext | None = None) -> dict[str, int]:
    ctx = ctx or SparkContext(default_parallelism=parallelism)
    compiled = re.compile(pattern)
    counts = (
        ctx.text_file(lines, parallelism)
        .flat_map(compiled.findall)
        .map(lambda match: (match, 1))
        .reduce_by_key(lambda a, b: a + b, parallelism)
    )
    return dict(counts.collect())


def grep_datampi_job(pattern: str, parallelism: int = 4,
                     transport: str | None = None,
                     storage: StorageConfig | None = None) -> DataMPIJob:
    """The Grep O/A job for ``pattern``, for cold runs and warm pools."""
    compiled = re.compile(pattern)

    def o_task(ctx, split):
        for line in split:
            for match in compiled.findall(line):
                ctx.send(match, 1)

    def a_task(ctx):
        return [(match, sum(values)) for match, values in ctx.grouped()]

    return DataMPIJob(
        o_task, a_task,
        DataMPIConf(num_o=parallelism, num_a=parallelism,
                    combiner=lambda m, vs: sum(vs), job_name="grep",
                    transport=transport,
                    storage=storage),
    )


def grep_datampi_result(lines: Sequence[str], pattern: str, parallelism: int = 4,
                        transport: str | None = None,
                        storage: StorageConfig | None = None):
    """Grep as a DataMPI O/A job, with its counters."""
    job = grep_datampi_job(pattern, parallelism, transport=transport,
                           storage=storage)
    return job.run(split_round_robin(list(lines), parallelism))


def grep_datampi(lines: Sequence[str], pattern: str, parallelism: int = 4,
                 transport: str | None = None) -> dict[str, int]:
    return dict(grep_datampi_result(lines, pattern, parallelism,
                                    transport=transport).merged_outputs())


def run_grep(engine: str, lines: Sequence[str], pattern: str,
             parallelism: int = 4, transport: str | None = None,
             storage: StorageConfig | None = None) -> dict[str, int]:
    """Dispatch Grep to one of the three engines.

    ``storage`` applies to the datampi engine only.
    """
    check_engine(engine)
    if engine == "hadoop":
        return grep_hadoop(lines, pattern, parallelism)
    if engine == "spark":
        return grep_spark(lines, pattern, parallelism)
    return dict(grep_datampi_result(lines, pattern, parallelism,
                                    transport=transport,
                                    storage=storage).merged_outputs())

"""``repro.analysis`` — the repro-lint AST invariant checker.

Public surface:

* :func:`repro.analysis.run_paths` / :func:`run_source` — programmatic API
* ``repro lint`` / ``python -m repro.analysis`` — command line
* :class:`repro.analysis.Checker` + :func:`register` — extension points

See ``docs/linting.md`` for the checker catalogue and pragma policy.
"""

from repro.analysis.core import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    JSON_SCHEMA_VERSION,
    AnalysisError,
    Checker,
    FileContext,
    Finding,
    all_codes,
    checker_registry,
    register,
    run_file,
    run_paths,
    run_source,
)

__all__ = [
    "AnalysisError",
    "Checker",
    "FileContext",
    "Finding",
    "all_codes",
    "checker_registry",
    "register",
    "run_file",
    "run_paths",
    "run_source",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "JSON_SCHEMA_VERSION",
]

"""Command-line front end for ``repro-lint``.

Reachable both as ``repro lint [paths]`` (wired through ``repro.cli``) and
as ``python -m repro.analysis``.  See :mod:`repro.analysis.core` for the
exit-code contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.core import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    AnalysisError,
    all_codes,
    checker_registry,
    format_findings_json,
    format_findings_text,
    run_paths,
)

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]

DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPL0xx",
        help="only run the given checker code(s); repeatable, comma-separated",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered checkers and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def _parse_select(raw: Sequence[str] | None) -> list[str] | None:
    if not raw:
        return None
    codes: list[str] = []
    for chunk in raw:
        codes.extend(c.strip() for c in chunk.split(",") if c.strip())
    return codes or None


def run_lint(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    output_format: str = "text",
    list_checkers: bool = False,
) -> int:
    """Shared implementation behind ``repro lint`` and ``python -m repro.analysis``."""
    if list_checkers:
        registry = checker_registry()
        for code in all_codes():
            cls = registry[code]
            print(f"{code}  {cls.name}: {cls.description}")
        return EXIT_CLEAN
    try:
        findings, files_checked = run_paths(list(paths), select=_parse_select(select))
    except AnalysisError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if output_format == "json":
        print(format_findings_json(findings, files_checked))
    elif findings:
        print(format_findings_text(findings))
    if findings:
        if output_format == "text":
            print(
                f"repro-lint: {len(findings)} finding(s) in {files_checked} file(s)",
                file=sys.stderr,
            )
        return EXIT_FINDINGS
    if output_format == "text":
        print(f"repro-lint: clean ({files_checked} file(s) checked)", file=sys.stderr)
    return EXIT_CLEAN


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(
        args.paths,
        select=args.select,
        output_format=args.format,
        list_checkers=args.list_checkers,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Core of the ``repro-lint`` AST invariant checker framework.

The analysis package encodes the project's hardest-won runtime invariants
(no-pickle data plane, transport resource lifecycle, tag discipline, ...)
as static checks so a violation is rejected at lint time instead of
surfacing as a flaky transport bug in CI.

Architecture:

* :class:`Finding` — one diagnostic, addressed by ``path:line:col`` and a
  stable ``RPL0xx`` code.
* :class:`FileContext` — everything a checker may need about the file under
  analysis: the parsed tree, the raw source lines, path-derived scope flags
  and the per-line suppression map parsed from ``# repro: allow[RPL0xx]``
  pragmas.
* :class:`Checker` — an ``ast.NodeVisitor`` subclass per rule.  Checkers
  self-register through the :func:`register` decorator and opt in/out of a
  file via :meth:`Checker.interested`.
* :func:`run_paths` / :func:`run_file` — drivers that walk the target
  paths, run every selected checker and return suppression-filtered
  findings.

Exit-code contract (shared by ``repro lint`` and ``python -m
repro.analysis``): ``0`` no findings, ``1`` at least one finding, ``2``
usage or input error (unknown code, unreadable path, syntax error).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

__all__ = [
    "AnalysisError",
    "Checker",
    "FileContext",
    "Finding",
    "all_codes",
    "checker_registry",
    "format_findings_json",
    "format_findings_text",
    "iter_python_files",
    "register",
    "run_file",
    "run_paths",
    "run_source",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "JSON_SCHEMA_VERSION",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Bumped only when the JSON output layout changes incompatibly.
JSON_SCHEMA_VERSION = 1

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


class AnalysisError(Exception):
    """Raised for usage/input errors (maps to exit code 2)."""


@dataclass(frozen=True)
class Finding:
    """A single diagnostic emitted by a checker."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


class FileContext:
    """Per-file state shared by every checker run against that file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        # Normalised, purely positional path parts ("src", "repro", ...).
        self.parts: tuple[str, ...] = PurePosixPath(path.replace("\\", "/")).parts
        self.suppressions = _parse_suppressions(self.lines)

    # -- path scoping helpers -------------------------------------------------

    @property
    def is_repro_module(self) -> bool:
        """True when the file is part of the ``repro`` package itself."""
        return "repro" in self.parts

    @property
    def is_test_file(self) -> bool:
        name = self.parts[-1] if self.parts else ""
        return "tests" in self.parts or name.startswith("test_") or name == "conftest.py"

    def path_endswith(self, *suffix: str) -> bool:
        """True when the file path ends with the given parts, e.g.
        ``ctx.path_endswith("repro", "storage", "spill.py")``."""
        if len(suffix) > len(self.parts):
            return False
        return self.parts[-len(suffix) :] == tuple(suffix)

    def module_has_part(self, part: str) -> bool:
        return part in self.parts

    # -- suppression ----------------------------------------------------------

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and code in codes


def _parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the set of codes allowed on that line.

    A pragma looks like ``# repro: allow[RPL004] polling is deadline-bounded``
    and may list several codes separated by commas.  The pragma suppresses
    findings whose reported line is the pragma's line, so for a multi-line
    statement it belongs on the statement's first physical line.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            chunk.strip().upper() for chunk in match.group(1).split(",") if chunk.strip()
        )
        if codes:
            out[lineno] = codes
    return out


# -- checker registry ---------------------------------------------------------

_REGISTRY: dict[str, type["Checker"]] = {}


def register(cls: type["Checker"]) -> type["Checker"]:
    """Class decorator adding a checker to the global registry."""
    code = cls.code
    if not re.fullmatch(r"RPL\d{3}", code):
        raise ValueError(f"checker code must look like RPL0xx, got {code!r}")
    if code in _REGISTRY:
        raise ValueError(f"duplicate checker code {code}")
    _REGISTRY[code] = cls
    return cls


def checker_registry() -> dict[str, type["Checker"]]:
    """Return the registered checkers, keyed by code (import-safe copy)."""
    _load_builtin_checkers()
    return dict(_REGISTRY)


def all_codes() -> list[str]:
    return sorted(checker_registry())


def _load_builtin_checkers() -> None:
    # Imported lazily so `core` has no import cycle with `checkers`.
    from repro.analysis import checkers as _checkers  # noqa: F401


class Checker(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set ``code`` (stable ``RPL0xx`` id), ``name`` (kebab-case
    slug used in JSON output) and ``description``, override
    :meth:`interested` to scope themselves to the right files, and call
    :meth:`report` from their ``visit_*`` methods.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        """Whether this checker applies to ``context`` at all."""
        return True

    def check(self) -> list[Finding]:
        """Run the rule over the file and return raw (unsuppressed) findings."""
        self.visit(self.context.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=self.code,
                message=message,
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )


# -- drivers ------------------------------------------------------------------


def _resolve_select(select: Iterable[str] | None) -> list[type[Checker]]:
    registry = checker_registry()
    if select is None:
        return [registry[code] for code in sorted(registry)]
    chosen: list[type[Checker]] = []
    for raw in select:
        code = raw.strip().upper()
        if code not in registry:
            raise AnalysisError(
                f"unknown checker code {code!r}; known codes: {', '.join(sorted(registry))}"
            )
        chosen.append(registry[code])
    return chosen


def run_source(
    source: str, path: str, select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint a source string as though it lived at ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    context = FileContext(path, source, tree)
    findings: list[Finding] = []
    for cls in _resolve_select(select):
        if not cls.interested(context):
            continue
        for finding in cls(context).check():
            if context.is_suppressed(finding.code, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def run_file(path: str | Path, select: Iterable[str] | None = None) -> list[Finding]:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {p}: {exc}") from exc
    return run_source(source, str(p), select=select)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in deterministic sorted order."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                if any(part == "__pycache__" or part.startswith(".") for part in child.parts):
                    continue
                yield child
        elif p.is_file():
            yield p
        else:
            raise AnalysisError(f"no such file or directory: {p}")


def run_paths(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``.

    Returns ``(findings, files_checked)``.
    """
    findings: list[Finding] = []
    count = 0
    for file_path in iter_python_files(paths):
        count += 1
        findings.extend(run_file(file_path, select=select))
    findings.sort(key=Finding.sort_key)
    return findings, count


# -- output -------------------------------------------------------------------


def format_findings_text(findings: Sequence[Finding]) -> str:
    return "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}" for f in findings
    )


def format_findings_json(findings: Sequence[Finding], files_checked: int) -> str:
    registry = checker_registry()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [
            {
                "code": f.code,
                "checker": registry[f.code].name if f.code in registry else "",
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

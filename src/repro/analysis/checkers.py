"""Built-in ``repro-lint`` checkers RPL001–RPL007.

Each checker pins one of the project's runtime invariants (see
``docs/linting.md`` for the catalogue with rationale).  Checkers are
heuristic by design: they match the idioms this codebase actually uses,
and the ``# repro: allow[RPL0xx]`` pragma is the escape hatch for the
rare justified exception.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, FileContext, register

__all__ = [
    "DataPlanePickleBan",
    "ResourceLifecycle",
    "TagDiscipline",
    "SleepBan",
    "DeprecatedShimBan",
    "FaultPointCoverage",
    "LockDiscipline",
]


def _dotted_name(node: ast.expr) -> str:
    """Best-effort dotted name for a call target, e.g. ``tempfile.mkstemp``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    else:
        return ""
    return ".".join(reversed(parts))


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function (or module) body without descending into nested
    function definitions — those form their own analysis scope."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionStackChecker(Checker):
    """Checker base that tracks the enclosing-function-name stack."""

    def __init__(self, context: FileContext) -> None:
        super().__init__(context)
        self._func_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    @property
    def current_function(self) -> str:
        return self._func_stack[-1] if self._func_stack else ""


@register
class DataPlanePickleBan(_FunctionStackChecker):
    """RPL001 — the data plane moves bytes, never pickles.

    The zero-copy claim of the transport layer (PR 6's typed wire codec)
    holds only while record payloads stay as raw bytes end to end.  This
    rule bans ``pickle`` use in the data-plane modules, with a small
    allowlisted control-plane set inside the codec (``FMT_PICKLE`` framing
    for control messages).
    """

    code = "RPL001"
    name = "data-plane-pickle-ban"
    description = "no pickle.dumps/loads in data-plane modules outside the codec control-plane allowlist"

    DATA_PLANE_FILES = (
        ("repro", "common", "kv.py"),
        ("repro", "storage", "chunkstore.py"),
        ("repro", "storage", "spill.py"),
        ("repro", "mpi", "transport", "codec.py"),
    )
    #: Control-plane functions in codec.py that own the FMT_PICKLE framing.
    CODEC_ALLOWED_FUNCTIONS = frozenset({"encode_payload", "decode_payload"})
    PICKLE_ATTRS = frozenset({"dumps", "loads", "dump", "load", "Pickler", "Unpickler"})

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        return any(context.path_endswith(*suffix) for suffix in cls.DATA_PLANE_FILES)

    def _in_codec_allowlist(self) -> bool:
        return (
            self.context.path_endswith("repro", "mpi", "transport", "codec.py")
            and self.current_function in self.CODEC_ALLOWED_FUNCTIONS
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "pickle":
            self.report(
                node,
                "data-plane module imports names from pickle directly; "
                "serialization belongs to the codec control plane",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted.startswith("pickle.") and dotted.split(".", 1)[1] in self.PICKLE_ATTRS:
            if not self._in_codec_allowlist():
                self.report(
                    node,
                    f"{dotted}() in a data-plane module; record payloads must stay "
                    "raw bytes (allowlisted control plane: codec "
                    + "/".join(sorted(self.CODEC_ALLOWED_FUNCTIONS))
                    + ")",
                )
        self.generic_visit(node)


@register
class ResourceLifecycle(Checker):
    """RPL002 — OS resources are released on every path.

    Every ``SharedMemory``/``socket``/``mmap``/``mkstemp`` acquisition must
    be (a) used as a ``with`` context, (b) stored on ``self`` (instance
    lifecycle), (c) returned directly (ownership transfer), or (d) bound to
    names that some ``except``/``finally`` handler in the same function
    releases.  The PR 5 shm-leak sweep as a lint rule.
    """

    code = "RPL002"
    name = "resource-lifecycle"
    description = "SharedMemory/socket/mmap/mkstemp acquisitions must be released on all paths"

    ACQUISITION_DOTTED = frozenset(
        {
            "tempfile.mkstemp",
            "mmap.mmap",
            "socket.socket",
            "socket.create_connection",
            "socket.socketpair",
            "shared_memory.SharedMemory",
            "multiprocessing.shared_memory.SharedMemory",
        }
    )
    ACQUISITION_BARE = frozenset({"mkstemp", "SharedMemory", "create_connection"})
    RELEASE_ATTRS = frozenset(
        {"close", "unlink", "cleanup", "release", "shutdown", "terminate", "detach"}
    )
    RELEASE_FUNCS = frozenset({"os.close", "os.unlink", "os.remove", "os.fdopen"})

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        return context.is_repro_module

    def check(self) -> list:
        scopes: list[ast.AST] = [self.context.tree]
        for node in ast.walk(self.context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            self._check_scope(scope)
        return self.findings

    def _is_acquisition(self, call: ast.Call) -> bool:
        dotted = _dotted_name(call.func)
        if dotted in self.ACQUISITION_DOTTED:
            return True
        return isinstance(call.func, ast.Name) and call.func.id in self.ACQUISITION_BARE

    def _released_names(self, scope: ast.AST) -> set[str]:
        """Names a handler in this scope releases (close/unlink/...)."""
        released: set[str] = set()

        def harvest(body: list[ast.stmt]) -> None:
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = _dotted_name(node.func)
                    if dotted in self.RELEASE_FUNCS:
                        # os.close(fd), os.unlink(path), ... release the args.
                        for arg in node.args:
                            for sub in ast.walk(arg):
                                if isinstance(sub, ast.Name):
                                    released.add(sub.id)
                    elif isinstance(node.func, ast.Attribute) and node.func.attr in self.RELEASE_ATTRS:
                        # x.close(), Path(p).unlink(), self._shm.close(), ...
                        for sub in ast.walk(node.func.value):
                            if isinstance(sub, ast.Name):
                                released.add(sub.id)

        for node in _walk_scope(scope):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    harvest(handler.body)
                harvest(node.finalbody)
            elif isinstance(node, ast.With):
                # `with os.fdopen(fd, ...) as f:` hands fd ownership to the
                # file object, which the with-block then closes.
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) and _dotted_name(ctx.func) == "os.fdopen":
                        for arg in ctx.args:
                            for sub in ast.walk(arg):
                                if isinstance(sub, ast.Name):
                                    released.add(sub.id)
        return released

    def _check_scope(self, scope: ast.AST) -> None:
        protected: set[int] = set()
        assigned: dict[int, list[ast.expr]] = {}

        for node in _walk_scope(scope):
            if isinstance(node, ast.With):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        protected.add(id(sub))
            elif isinstance(node, ast.Return) and node.value is not None:
                protected.add(id(node.value))
            elif isinstance(node, ast.Assign):
                assigned[id(node.value)] = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigned[id(node.value)] = [node.target]

        released: set[str] | None = None  # computed lazily
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Call) or not self._is_acquisition(node):
                continue
            if id(node) in protected:
                continue
            targets = assigned.get(id(node))
            if targets is None:
                self.report(
                    node,
                    f"{_dotted_name(node.func) or 'resource acquisition'} result is "
                    "not bound to a name, a with-block, or a return; it cannot be "
                    "released on failure",
                )
                continue
            if all(isinstance(t, ast.Attribute) for t in targets):
                continue  # stored on an object; lifecycle owned by the instance
            if released is None:
                released = self._released_names(scope)
            names: list[str] = []
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.append(sub.id)
            leaky = [n for n in names if not n.startswith("_") and n not in released]
            if leaky:
                self.report(
                    node,
                    f"{_dotted_name(node.func) or 'resource acquisition'} binds "
                    f"{', '.join(sorted(set(leaky)))} but no except/finally handler in "
                    "this function releases it; use `with`, try/finally, or close on "
                    "the error path",
                )


@register
class TagDiscipline(Checker):
    """RPL003 — message tags come from named constants, never literals.

    The PR 1 tag-collision bug as a lint rule: a literal tag at a
    ``Comm.send``/``recv`` call site can silently collide with another
    protocol's traffic.  Tags must be module-level named constants.
    """

    code = "RPL003"
    name = "tag-discipline"
    description = "no literal int tags at Comm.send/recv call sites"

    def _flag(self, call: ast.Call, value: ast.expr, where: str) -> None:
        if isinstance(value, ast.Constant) and isinstance(value.value, int) and not isinstance(value.value, bool):
            self.report(
                call,
                f"literal tag {value.value} passed {where}; use a named tag constant "
                "(e.g. TAG_DATA) so tags cannot collide silently",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "send" and len(node.args) >= 3:
                self._flag(node, node.args[2], "as Comm.send positional tag")
            elif node.func.attr == "recv" and len(node.args) >= 2:
                self._flag(node, node.args[1], "as Comm.recv positional tag")
            if node.func.attr in ("send", "recv"):
                for kw in node.keywords:
                    if kw.arg == "tag":
                        self._flag(node, kw.value, "as tag= keyword")
        self.generic_visit(node)


@register
class SleepBan(_FunctionStackChecker):
    """RPL004 — no bare ``time.sleep`` polling.

    Sleeping hides races and slows the suite; waits must be deadline-bounded
    (``wait_until`` in ``tests/conftest.py``, or condition variables in
    ``src/``).  The fault-injection ``delay`` action is the allowlisted
    exception — injecting latency is its job.
    """

    code = "RPL004"
    name = "sleep-ban"
    description = "no bare time.sleep polling in src/ and tests/; use deadline helpers"

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        return context.is_repro_module or context.is_test_file

    def _allowlisted(self) -> bool:
        # faultinject's `delay@point` action exists to inject latency.
        return (
            self.context.path_endswith("repro", "mpi", "faultinject.py")
            and self.current_function == "_execute"
        )

    def __init__(self, context: FileContext) -> None:
        super().__init__(context)
        self._bare_sleep_imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "sleep" for alias in node.names)
            for node in ast.walk(context.tree)
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        is_sleep = dotted == "time.sleep" or (
            self._bare_sleep_imported and dotted == "sleep"
        )
        if is_sleep and not self._allowlisted():
            self.report(
                node,
                "bare time.sleep; poll with a deadline helper (tests: the "
                "`wait_until` fixture) or block on a condition variable",
            )
        self.generic_visit(node)


@register
class DeprecatedShimBan(Checker):
    """RPL005 — new ``src/`` code must not depend on deprecation shims.

    ``repro.datampi.{kvcache,receiver}`` and the legacy
    ``DataMPIConf(cache_bytes=/spill_bytes=)`` knobs exist only so external
    callers migrate gradually (PR 9); library code uses ``repro.storage``
    and ``StorageConfig`` directly.
    """

    code = "RPL005"
    name = "deprecated-shim-ban"
    description = "deprecated shim imports and legacy DataMPIConf storage kwargs banned in src/"

    SHIM_MODULES = frozenset({"repro.datampi.kvcache", "repro.datampi.receiver"})
    SHIM_NAMES = frozenset({"kvcache", "receiver"})
    LEGACY_KWARGS = frozenset({"cache_bytes", "spill_bytes"})
    #: The shim implementations themselves (and the conf that carries the
    #: legacy fields for backward compatibility) are exempt.
    EXEMPT_FILES = (
        ("repro", "datampi", "kvcache.py"),
        ("repro", "datampi", "receiver.py"),
        ("repro", "datampi", "job.py"),
    )

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        return context.is_repro_module and not any(
            context.path_endswith(*suffix) for suffix in cls.EXEMPT_FILES
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.SHIM_MODULES:
                self.report(
                    node,
                    f"import of deprecated shim {alias.name}; use repro.storage",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in self.SHIM_MODULES:
            self.report(
                node, f"import from deprecated shim {node.module}; use repro.storage"
            )
        elif node.module == "repro.datampi":
            for alias in node.names:
                if alias.name in self.SHIM_NAMES:
                    self.report(
                        node,
                        f"import of deprecated shim repro.datampi.{alias.name}; "
                        "use repro.storage",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_name(node.func).rsplit(".", 1)[-1]
        if callee == "DataMPIConf":
            for kw in node.keywords:
                if kw.arg in self.LEGACY_KWARGS:
                    self.report(
                        node,
                        f"legacy DataMPIConf({kw.arg}=...) in src/; pass "
                        "storage=StorageConfig(...) instead",
                    )
        self.generic_visit(node)


@register
class FaultPointCoverage(Checker):
    """RPL006 — superstep/phase drivers stay fault-injectable.

    The deterministic fault harness (PR 8) is only as good as its coverage:
    every driver loop in ``datampi/`` and ``serving/`` must pass through a
    ``faultinject.fire`` point, directly or by delegating to an instrumented
    ``run_*superstep`` helper.
    """

    code = "RPL006"
    name = "fault-point-coverage"
    description = "superstep/phase driver functions must call a faultinject point"

    DRIVER_NAMES = frozenset({"_rank_loop", "_serve_world"})
    INSTRUMENTED_DELEGATES = frozenset(
        {"run_superstep", "run_o_superstep", "run_a_superstep"}
    )

    @classmethod
    def interested(cls, context: FileContext) -> bool:
        return context.is_repro_module and (
            context.module_has_part("datampi") or context.module_has_part("serving")
        )

    def _is_driver(self, name: str) -> bool:
        return "superstep" in name or name in self.DRIVER_NAMES

    def _is_covered(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            terminal = dotted.rsplit(".", 1)[-1]
            if terminal == "fire" or terminal in self.INSTRUMENTED_DELEGATES:
                return True
        return False

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._is_driver(node.name) and not self._is_covered(node):
            self.report(
                node,
                f"driver function {node.name}() has no faultinject.fire point and "
                "does not delegate to an instrumented run_*superstep helper",
            )
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


@register
class LockDiscipline(Checker):
    """RPL007 — ``#: guarded-by <lock>`` attributes touched only under the lock.

    Declare an attribute's lock at its ``__init__`` assignment::

        self._pending: dict[int, JobFuture] = {}  #: guarded-by _lock

    Every other method must then access ``self._pending`` inside
    ``with self._lock:``.  Methods whose names end in ``_locked`` assert the
    caller already holds the lock and are exempt.
    """

    code = "RPL007"
    name = "lock-discipline"
    description = "attributes annotated '#: guarded-by <lock>' accessed only under 'with self.<lock>'"

    import re as _re

    _GUARD_RE = _re.compile(r"#:\s*guarded-by\s+([A-Za-z_]\w*)")

    def check(self) -> list:
        guard_lines: dict[int, str] = {}
        for lineno, text in enumerate(self.context.lines, start=1):
            match = self._GUARD_RE.search(text)
            if match:
                guard_lines[lineno] = match.group(1)
        if not guard_lines:
            return self.findings
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node, guard_lines)
        return self.findings

    def _check_class(self, cls: ast.ClassDef, guard_lines: dict[int, str]) -> None:
        guarded: dict[str, str] = {}  # attr -> lock name
        declaring_lines: set[int] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                lock = guard_lines.get(node.lineno)
                if lock is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        guarded[target.attr] = lock
                        declaring_lines.add(node.lineno)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                continue
            self._check_method(stmt, guarded, declaring_lines)

    def _check_method(
        self,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
        declaring_lines: set[int],
    ) -> None:
        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function may run under a lock its caller holds
                # (e.g. a matcher closure invoked inside `with self._cond`);
                # that is undecidable lexically, so closures are out of scope.
                return
            if isinstance(node, ast.With):
                newly = set()
                for item in node.items:
                    ctx = item.context_expr
                    if (
                        isinstance(ctx, ast.Attribute)
                        and isinstance(ctx.value, ast.Name)
                        and ctx.value.id == "self"
                    ):
                        newly.add(ctx.attr)
                inner = held | frozenset(newly)
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and node.lineno not in declaring_lines
            ):
                lock = guarded[node.attr]
                if lock not in held:
                    self.report(
                        node,
                        f"self.{node.attr} is declared '#: guarded-by {lock}' but is "
                        f"accessed outside 'with self.{lock}' in {method.name}()",
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in method.body:
            visit(stmt, frozenset())

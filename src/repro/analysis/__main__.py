"""Allow ``python -m repro.analysis`` as an entry point."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""Iteration and Streaming execution modes.

The DataMPI specification defines three execution modes; the paper's
experiments exercise only *Common* (run-once O/A jobs, the
:class:`~repro.datampi.job.DataMPIJob` driver).  This module adds the
other two on top of the same superstep phases:

* :class:`IterativeJob` — **Iteration mode**.  One world of O and A ranks
  stays alive across supersteps.  Input splits move through the comm
  layer once and are pinned in a per-rank :class:`KVCache`; every later
  iteration reads them locally, so the per-iteration bytes moved drop by
  exactly the input-scatter volume (the redundant I/O Section 4.5's
  k-means analysis charges against one-job-per-iteration engines).
  Per-iteration state (e.g. centroids) is broadcast from the root; a
  user-supplied ``update`` function folds the A outputs into the next
  state and decides convergence.

* :class:`StreamingJob` — **Streaming mode**.  An unbounded sequence of
  input splits flows through the O->A pipeline in bounded windows; every
  window is flushed with a watermark (its 1-based window index) before
  the next is admitted, so memory stays bounded by one window.

Both modes run one control round per superstep: a state broadcast from
the root, the input request/serve exchange, the shuffle, and an outcome
gather.  Task failures ride the outcome gather and are re-broadcast, so a
killed superstep fails every rank in unison on every transport backend —
no reliance on receive timeouts.  All payloads that cross ranks are
pickled to bytes first, which makes the per-iteration byte counters
(``mode.state_bytes``, ``mode.scatter_bytes``, ``mode.gather_bytes``)
exact and transport-independent.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import CheckpointError, ConfigError, MPIError
from repro.mpi import faultinject
from repro.mpi.transport.base import world_generation
from repro.mpi.transport.codec import PICKLE_PROTOCOL
from repro.datampi.checkpoint import (
    clear_iteration_state,
    read_iteration_state,
    write_iteration_state,
)
from repro.datampi.communicator import BipartiteComm
from repro.datampi.job import (
    DataMPIConf,
    merge_outputs,
    run_a_superstep,
    run_o_superstep,
)
from repro.storage import ChunkStore, KVCache
from repro.mpi.comm import Comm
from repro.mpi.launcher import mpi_run

#: Cache key under which an O rank pins its input splits across iterations.
O_SPLITS_KEY = "o.splits"
#: Cache key under which an A rank's previous superstep output is pinned
#: (readable by the next superstep's A task via ``ctx.cache``).
A_OUTPUT_KEY = "a.output"

_MISSING = object()

#: Counter keys every superstep reports, so per-iteration records have
#: identical shape in every mode and on every transport.
_CACHE_COUNTER_KEYS = (
    "cache.hits", "cache.misses", "cache.hit_bytes",
    "cache.evictions", "cache.rejected",
)


def _dumps(obj: Any) -> bytes:
    """Canonical payload encoding: one protocol everywhere so byte
    counters agree across transports and Python versions."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


# -- one superstep, executed by every rank -------------------------------------


def run_superstep(
    bcomm: BipartiteComm,
    conf: DataMPIConf,
    invoke_o: Callable,
    invoke_a: Callable,
    splits: Sequence[Any] | None,
    store: ChunkStore | None,
    cache: KVCache | None,
    superstep: int,
    *,
    cache_input: bool,
) -> tuple[str, str | None, Any, dict[str, int], int]:
    """Input + shuffle + compute for one rank.

    Returns ``(status, error, output, counters, scatter_bytes)`` where
    ``scatter_bytes`` is non-zero only on the input root.  Task exceptions
    are caught and reported via ``status`` so the failure can travel the
    control channel instead of wedging peers in blocking receives.

    This is the one superstep implementation every driver shares —
    IterativeJob, StreamingJob, and the serving :class:`~repro.serving.pool.WorldPool`
    all call it on an already-formed world, which is what keeps their
    shuffles byte-identical to a cold :class:`~repro.datampi.job.DataMPIJob` run.
    """
    status: str = "ok"
    error: str | None = None
    output: Any = None
    counters: dict[str, int] = {}
    scatter_bytes = 0
    cache_before = dict(cache.counters) if cache is not None else {}

    # Deliberately *outside* the task try/except blocks below: an injected
    # fault here is a rank failure (kill/abort), not a task error to be
    # reported politely over the control channel.
    faultinject.fire("before-superstep", rank=bcomm.comm.rank, superstep=superstep)

    if bcomm.is_o:
        my_splits: Any = _MISSING
        if cache is not None and cache_input:
            my_splits = cache.get(O_SPLITS_KEY, _MISSING)
        bcomm.request_input(my_splits is not _MISSING)
        if bcomm.comm.rank == BipartiteComm.INPUT_ROOT:
            all_splits = list(splits) if splits is not None else []
            for o_index in range(bcomm.num_o):
                if bcomm.recv_input_request(o_index):
                    response = _dumps(("cached", None))
                else:
                    response = _dumps(("data", all_splits[o_index::bcomm.num_o]))
                bcomm.send_input(o_index, response)
                scatter_bytes += len(response)
        kind, value = pickle.loads(bcomm.recv_input().payload)
        if kind == "data":
            my_splits = value
            if cache is not None and cache_input:
                cache.put(O_SPLITS_KEY, my_splits)
        try:
            counters = run_o_superstep(
                bcomm, conf, invoke_o, my_splits, cache=cache, superstep=superstep
            )
        except Exception as exc:  # noqa: BLE001 - reported via the control channel
            status = "err"
            error = f"O rank {bcomm.o_index} failed at superstep {superstep}: {exc!r}"
    else:
        assert store is not None
        try:
            output, counters = run_a_superstep(
                bcomm, conf, invoke_a, store, cache=cache, superstep=superstep
            )
        except Exception as exc:  # noqa: BLE001 - reported via the control channel
            status = "err"
            error = f"A rank {bcomm.a_index} failed at superstep {superstep}: {exc!r}"
            output = None
        if cache is not None:
            cache.put(A_OUTPUT_KEY, output)
        store.reset()

    if cache is not None:
        for key, value in cache.counters.items():
            counters[key] = value - cache_before.get(key, 0)
    else:
        for key in _CACHE_COUNTER_KEYS:
            counters[key] = 0
    # The rank has computed but not yet reported: a death here forces the
    # supervisor to replay the whole superstep from the last checkpoint.
    faultinject.fire("after-superstep", rank=bcomm.comm.rank, superstep=superstep)
    return status, error, output, counters, scatter_bytes


#: Backward-compatible alias for the pre-serving private name.
_run_superstep = run_superstep


def recycle_world(cache: KVCache | None, store: ChunkStore | None) -> None:
    """Return one rank's per-job state to its pre-job condition.

    A world serving a stream of jobs must not let job N's state leak into
    job N+1: the superstep machinery pins an O rank's input splits under
    ``o.splits`` and an A rank's output under ``a.output`` in the KV
    cache (deliberately — that is what makes warm *iterations* cheap),
    and the A-side :class:`ChunkStore` keeps its spill bookkeeping.
    Between pooled jobs those pins are stale state: splits pinned by job
    N would be served as job N+1's input, and job N's output would be
    readable from job N+1's ``ctx.cache``.

    Recycling clears the whole cache (entry state only — the hit/miss
    counters survive, they are cumulative measurements) alongside
    ``ChunkStore.reset()``.  What survives a job boundary: the world
    itself, the cache's stat counters, and the store's owned spill
    directory.
    """
    if cache is not None:
        cache.clear()
    if store is not None:
        store.reset()


def _merge_outcomes(
    gathered: list[bytes],
) -> tuple[list[tuple], int, dict[str, int], list[tuple[int, str]]]:
    """Root side: decode the outcome gather into (outcomes, gather_bytes,
    summed counters, [(rank, error)...])."""
    outcomes = [pickle.loads(payload) for payload in gathered]
    gather_bytes = sum(len(payload) for payload in gathered[1:])
    counters: dict[str, int] = {}
    errors: list[tuple[int, str]] = []
    for rank, (status, error, _output, rank_counters) in enumerate(outcomes):
        for name, value in rank_counters.items():
            counters[name] = counters.get(name, 0) + value
        if status != "ok":
            errors.append((rank, error or f"rank {rank} failed"))
    return outcomes, gather_bytes, counters, errors


def _iteration_record(
    superstep: int,
    counters: dict[str, int],
    state_bytes: int,
    scatter_bytes: int,
    gather_bytes: int,
) -> dict[str, int]:
    record = {"superstep": superstep, **counters}
    record["mode.state_bytes"] = state_bytes
    record["mode.scatter_bytes"] = scatter_bytes
    record["mode.gather_bytes"] = gather_bytes
    record["mode.bytes_moved"] = (
        state_bytes + scatter_bytes + gather_bytes + counters.get("o.bytes_sent", 0)
    )
    return record


def _merge_totals(totals: dict[str, int], record: dict[str, int]) -> None:
    for name, value in record.items():
        if name == "superstep":
            continue
        totals[name] = totals.get(name, 0) + value




# -- Iteration mode ------------------------------------------------------------

#: o_task(ctx, split, state) — Common's OTask plus the per-iteration state.
IterOTask = Callable[[Any, Any, Any], None]
#: a_task(ctx, state) — Common's ATask plus the per-iteration state.
IterATask = Callable[[Any, Any], Any]
#: update(state, merged_outputs, iteration) -> (new_state, converged).
UpdateFn = Callable[[Any, list[Any], int], tuple[Any, bool]]


@dataclass
class IterativeResult:
    """Outcome of an iterative job."""

    state: Any
    outputs: list[Any]  # final iteration's per-A-rank outputs
    iterations: int  # total iterations completed (including resumed-over ones)
    converged: bool
    counters: dict[str, int] = field(default_factory=dict)
    #: One counter record per executed iteration (root's view, all ranks
    #: summed) — includes ``mode.bytes_moved`` and the cache counters.
    per_iteration: list[dict[str, int]] = field(default_factory=list)
    #: Root wall-clock seconds per executed iteration.
    timings: list[float] = field(default_factory=list)
    #: Iteration the run started from (non-zero after a checkpoint resume).
    start_iteration: int = 0

    def merged_outputs(self) -> list[Any]:
        return merge_outputs(self.outputs)


class IterativeJob:
    """Superstep driver: Iteration mode (or its run-once Common baseline).

    With ``conf.mode == "iteration"`` one world stays alive for the whole
    run and input moves through the comm layer only when a rank's cache
    cannot serve it.  With ``conf.mode == "common"`` the same protocol is
    replayed with a fresh world per iteration — the one-job-per-iteration
    pattern — which makes the two modes byte-comparable: identical
    shuffles, state broadcasts and gathers, differing exactly by the
    re-scattered input.

    Examples:
        Accumulate split values into ``state`` until the total reaches 10
        (two supersteps: 0 -> 3 -> 12):

        >>> from repro.datampi import DataMPIConf, IterativeJob
        >>> def o_task(ctx, split, state):
        ...     ctx.send(0, split + state)
        >>> def a_task(ctx, state):
        ...     return [v for _key, values in ctx.grouped() for v in values]
        >>> def update(state, outputs, iteration):
        ...     total = state + sum(outputs)
        ...     return total, total >= 10
        >>> conf = DataMPIConf(num_o=2, num_a=1, mode="iteration",
        ...                    transport="inline")
        >>> job = IterativeJob(o_task, a_task, update, conf, max_iterations=5)
        >>> result = job.run([1, 2], 0)
        >>> (result.state, result.iterations, result.converged)
        (12, 2, True)
        >>> result.counters["cache.hits"] > 0  # input served locally
        True
    """

    def __init__(
        self,
        o_task: IterOTask,
        a_task: IterATask,
        update: UpdateFn,
        conf: DataMPIConf | None = None,
        max_iterations: int = 20,
    ):
        self.o_task = o_task
        self.a_task = a_task
        self.update = update
        self.conf = conf or DataMPIConf(mode="iteration")
        if self.conf.mode not in ("iteration", "common"):
            raise ConfigError(
                f"IterativeJob supports modes 'iteration' and 'common', "
                f"got {self.conf.mode!r}"
            )
        if max_iterations < 1:
            raise ConfigError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations

    # -- entry point -----------------------------------------------------------

    def run(
        self, splits: Sequence[Any], initial_state: Any, *, resume: bool = False
    ) -> IterativeResult:
        """Iterate until ``update`` converges or ``max_iterations`` is hit.

        With ``resume=True`` and a checkpoint directory configured, the
        run continues from the last *completed* iteration's state instead
        of ``initial_state``.
        """
        start_iteration, state = 0, initial_state
        if resume:
            if self.conf.checkpoint_dir is None:
                raise ConfigError("resume needs a checkpoint directory")
            saved = read_iteration_state(self.conf.checkpoint_dir)
            if saved is None:
                raise CheckpointError(
                    f"no iteration checkpoint in {self.conf.checkpoint_dir}"
                )
            start_iteration, state = saved["iteration"], saved["state"]
        elif self.conf.checkpoint_dir is not None:
            # A fresh run must not leave a previous run's iteration state
            # behind: an elastic restart mid-run resumes from this file,
            # and a stale one would silently change where replay begins.
            clear_iteration_state(self.conf.checkpoint_dir)
        if start_iteration >= self.max_iterations:
            return IterativeResult(
                state=state, outputs=[], iterations=start_iteration,
                converged=False, start_iteration=start_iteration,
            )
        if self.conf.mode == "common":
            return self._run_common(splits, state, start_iteration)
        return self._run_iteration(splits, state, start_iteration)

    # -- iteration mode: one world, superstep loop -----------------------------

    def _run_iteration(
        self, splits: Sequence[Any], start_state: Any, start_iteration: int
    ) -> IterativeResult:
        conf = self.conf

        def rank_main(comm: Comm):
            return self._rank_loop(comm, splits, start_state, start_iteration)

        rank_results = mpi_run(
            conf.num_o + conf.num_a, rank_main, transport=conf.resolved_transport()
        )
        tag, payload = rank_results[0]
        assert tag == "root"
        payload["start_iteration"] = start_iteration
        return IterativeResult(**payload)

    def _rank_loop(
        self, comm: Comm, splits: Sequence[Any], start_state: Any, start_iteration: int
    ):
        conf = self.conf
        bcomm = BipartiteComm(comm, conf.num_o, conf.num_a)
        is_root = comm.rank == 0
        cache = conf.storage.make_cache()
        store = None if bcomm.is_o else conf.storage.make_store()

        iteration = start_iteration
        state = start_state
        converged = False
        root_state = start_state
        final_outputs: list[Any] = []
        per_iteration: list[dict[str, int]] = []
        timings: list[float] = []
        totals: dict[str, int] = {}
        pending: tuple = ("run", start_state)

        # Elastic restart: when the transport re-formed the world after a
        # rank death (generation > 0), every rank rejoins from the last
        # *completed* iteration's checkpoint instead of the run's initial
        # state — the interrupted superstep replays from its exact input,
        # so the final state is identical to an uninjected run.
        if world_generation(comm) > 0 and conf.checkpoint_dir is not None:
            saved = read_iteration_state(conf.checkpoint_dir)
            if saved is not None:
                iteration = saved["iteration"]
                state = root_state = saved["state"]
                pending = (
                    ("stop", False)
                    if iteration >= self.max_iterations
                    else ("run", saved["state"])
                )

        try:
            while True:
                control = comm.bcast(_dumps(pending) if is_root else None, root=0)
                kind, value = pickle.loads(control)
                state_bytes = len(control) * (comm.size - 1)
                if kind == "error":
                    raise MPIError(value)
                if kind == "stop":
                    converged = bool(value)
                    if is_root:
                        totals["mode.shutdown_bytes"] = (
                            totals.get("mode.shutdown_bytes", 0) + state_bytes
                        )
                    break
                state = value
                iteration += 1
                started = time.perf_counter()

                status, error, output, counters, scatter_bytes = run_superstep(
                    bcomm, conf,
                    lambda ctx, split: self.o_task(ctx, split, state),
                    lambda ctx: self.a_task(ctx, state),
                    splits, store, cache, iteration, cache_input=True,
                )
                gathered = comm.gather(_dumps((status, error, output, counters)), root=0)

                if is_root:
                    outcomes, gather_bytes, summed, errors = _merge_outcomes(gathered)
                    record = _iteration_record(
                        iteration, summed, state_bytes, scatter_bytes, gather_bytes
                    )
                    per_iteration.append(record)
                    _merge_totals(totals, record)
                    timings.append(time.perf_counter() - started)
                    if errors:
                        pending = ("error", errors[0][1])
                        continue
                    outputs = [outcomes[r][2] for r in range(conf.num_o, comm.size)]
                    try:
                        new_state, done = self.update(
                            state, merge_outputs(outputs), iteration
                        )
                    except Exception as exc:  # noqa: BLE001 - broadcast to all ranks
                        pending = (
                            "error",
                            f"update failed at iteration {iteration}: {exc!r}",
                        )
                        continue
                    root_state = new_state
                    final_outputs = outputs
                    if conf.checkpoint_dir is not None:
                        faultinject.fire(
                            "checkpoint-write", rank=comm.rank, superstep=iteration
                        )
                        write_iteration_state(
                            conf.checkpoint_dir, iteration, new_state
                        )
                    if done or iteration >= self.max_iterations:
                        pending = ("stop", done)
                    else:
                        pending = ("run", new_state)
        finally:
            if store is not None:
                store.cleanup()

        if not is_root:
            return ("rank", None)
        return (
            "root",
            {
                "state": root_state,
                "outputs": final_outputs,
                "iterations": iteration,
                "converged": converged,
                "counters": totals,
                "per_iteration": per_iteration,
                "timings": timings,
            },
        )

    # -- common-mode baseline: a fresh world per iteration ---------------------

    def _run_common(
        self, splits: Sequence[Any], start_state: Any, start_iteration: int
    ) -> IterativeResult:
        conf = self.conf
        iteration = start_iteration
        state = start_state
        converged = False
        final_outputs: list[Any] = []
        per_iteration: list[dict[str, int]] = []
        timings: list[float] = []
        totals: dict[str, int] = {}

        while iteration < self.max_iterations:
            iteration += 1
            superstep = iteration  # bind loop variables for the closure
            current_state = state
            started = time.perf_counter()

            def rank_main(comm: Comm):
                bcomm = BipartiteComm(comm, conf.num_o, conf.num_a)
                is_root = comm.rank == 0
                control = comm.bcast(
                    _dumps(("run", current_state)) if is_root else None, root=0
                )
                _kind, bcast_state = pickle.loads(control)
                state_bytes = len(control) * (comm.size - 1)
                store = None if bcomm.is_o else conf.storage.make_store()
                try:
                    status, error, output, counters, scatter_bytes = run_superstep(
                        bcomm, conf,
                        lambda ctx, split: self.o_task(ctx, split, bcast_state),
                        lambda ctx: self.a_task(ctx, bcast_state),
                        splits, store, None, superstep, cache_input=False,
                    )
                finally:
                    if store is not None:
                        store.cleanup()
                gathered = comm.gather(
                    _dumps((status, error, output, counters)), root=0
                )
                if is_root:
                    return ("root", (gathered, state_bytes, scatter_bytes))
                return ("rank", None)

            rank_results = mpi_run(
                conf.num_o + conf.num_a, rank_main, transport=conf.resolved_transport()
            )
            tag, payload = rank_results[0]
            assert tag == "root"
            gathered, state_bytes, scatter_bytes = payload
            outcomes, gather_bytes, summed, errors = _merge_outcomes(gathered)
            record = _iteration_record(
                iteration, summed, state_bytes, scatter_bytes, gather_bytes
            )
            per_iteration.append(record)
            _merge_totals(totals, record)
            timings.append(time.perf_counter() - started)
            if errors:
                raise MPIError(errors[0][1])
            outputs = [
                outcomes[r][2] for r in range(conf.num_o, conf.num_o + conf.num_a)
            ]
            state, done = self.update(state, merge_outputs(outputs), iteration)
            final_outputs = outputs
            if conf.checkpoint_dir is not None:
                write_iteration_state(conf.checkpoint_dir, iteration, state)
            if done:
                converged = True
                break

        return IterativeResult(
            state=state,
            outputs=final_outputs,
            iterations=iteration,
            converged=converged,
            counters=totals,
            per_iteration=per_iteration,
            timings=timings,
            start_iteration=start_iteration,
        )


# -- Streaming mode ------------------------------------------------------------


@dataclass
class WindowResult:
    """One flushed window of a streaming job."""

    watermark: int  # 1-based window index, flushed in order
    outputs: list[Any]  # per-A-rank outputs for this window
    counters: dict[str, int] = field(default_factory=dict)

    def merged_outputs(self) -> list[Any]:
        return merge_outputs(self.outputs)


@dataclass
class StreamResult:
    """Outcome of a streaming job: every window, in watermark order."""

    windows: list[WindowResult]
    counters: dict[str, int] = field(default_factory=dict)
    timings: list[float] = field(default_factory=list)

    def merged_outputs(self) -> list[Any]:
        return [record for window in self.windows for record in window.merged_outputs()]


class StreamingJob:
    """Windowed O->A pipeline over an unbounded split sequence.

    The root admits at most ``window_splits`` splits per window, scatters
    them to the O ranks, and flushes the A outputs with a watermark before
    admitting the next window — memory is bounded by one window however
    long the stream runs.  O and A tasks keep the Common-mode signatures
    (``o_task(ctx, split)`` / ``a_task(ctx)``); ``ctx.superstep`` carries
    the window index and ``ctx.cache`` persists across windows for tasks
    that want cross-window state.

    Examples:
        Three splits in windows of two — the second window holds the
        stream's tail:

        >>> from repro.datampi import DataMPIConf, StreamingJob
        >>> def o_task(ctx, split):
        ...     for word in split:
        ...         ctx.send(word, 1)
        >>> def a_task(ctx):
        ...     return [(word, sum(ones)) for word, ones in ctx.grouped()]
        >>> conf = DataMPIConf(num_o=2, num_a=1, mode="streaming",
        ...                    transport="inline")
        >>> job = StreamingJob(o_task, a_task, conf, window_splits=2)
        >>> result = job.run(iter([["a"], ["b", "a"], ["b"]]))
        >>> [(w.watermark, w.merged_outputs()) for w in result.windows]
        [(1, [('a', 2), ('b', 1)]), (2, [('b', 1)])]
    """

    def __init__(
        self,
        o_task: Callable,
        a_task: Callable,
        conf: DataMPIConf | None = None,
        window_splits: int | None = None,
    ):
        self.o_task = o_task
        self.a_task = a_task
        self.conf = conf or DataMPIConf(mode="streaming")
        if self.conf.mode != "streaming":
            raise ConfigError(
                f"StreamingJob needs conf.mode='streaming', got {self.conf.mode!r}"
            )
        if window_splits is not None and window_splits < 1:
            raise ConfigError(f"window_splits must be >= 1, got {window_splits}")
        self.window_splits = window_splits or self.conf.num_o

    def run(self, split_stream: Iterable[Any]) -> StreamResult:
        """Consume ``split_stream`` window by window until it is exhausted."""
        conf = self.conf

        def rank_main(comm: Comm):
            return self._rank_loop(comm, split_stream)

        rank_results = mpi_run(
            conf.num_o + conf.num_a, rank_main, transport=conf.resolved_transport()
        )
        tag, payload = rank_results[0]
        assert tag == "root"
        return StreamResult(**payload)

    def _rank_loop(self, comm: Comm, split_stream: Iterable[Any]):
        conf = self.conf
        bcomm = BipartiteComm(comm, conf.num_o, conf.num_a)
        is_root = comm.rank == 0
        cache = conf.storage.make_cache()
        store = None if bcomm.is_o else conf.storage.make_store()

        stream = iter(split_stream) if is_root else None
        watermark = 0
        batch: list[Any] = []
        windows: list[WindowResult] = []
        timings: list[float] = []
        totals: dict[str, int] = {}
        pending: tuple = ()

        try:
            while True:
                if is_root:
                    if pending and pending[0] == "error":
                        pass  # propagate the failure before admitting more input
                    else:
                        batch = list(islice(stream, self.window_splits))
                        pending = ("window", watermark + 1) if batch else ("stop", None)
                control = comm.bcast(_dumps(pending) if is_root else None, root=0)
                kind, value = pickle.loads(control)
                state_bytes = len(control) * (comm.size - 1)
                if kind == "error":
                    raise MPIError(value)
                if kind == "stop":
                    if is_root:
                        totals["mode.shutdown_bytes"] = (
                            totals.get("mode.shutdown_bytes", 0) + state_bytes
                        )
                    break
                watermark = value
                started = time.perf_counter()

                status, error, output, counters, scatter_bytes = run_superstep(
                    bcomm, conf, self.o_task, self.a_task,
                    batch if is_root else None, store, cache, watermark,
                    cache_input=False,
                )
                gathered = comm.gather(_dumps((status, error, output, counters)), root=0)

                if is_root:
                    outcomes, gather_bytes, summed, errors = _merge_outcomes(gathered)
                    record = _iteration_record(
                        watermark, summed, state_bytes, scatter_bytes, gather_bytes
                    )
                    _merge_totals(totals, record)
                    timings.append(time.perf_counter() - started)
                    if errors:
                        pending = ("error", errors[0][1])
                        continue
                    outputs = [outcomes[r][2] for r in range(conf.num_o, comm.size)]
                    windows.append(
                        WindowResult(
                            watermark=watermark, outputs=outputs, counters=record
                        )
                    )
        finally:
            if store is not None:
                store.cleanup()

        if not is_root:
            return ("rank", None)
        return ("root", {"windows": windows, "counters": totals, "timings": timings})

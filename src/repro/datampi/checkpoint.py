"""Key-value checkpoint/restart.

Section 2.3: "DataMPI also supports fault tolerance by key-value pair
based checkpoint/restart."  A checkpoint captures the intermediate data
each A task received (its chunk store) after the O phase; ``restart``
rebuilds the stores so the A phase can re-run without re-executing O
tasks.  Checkpoints are plain files — one per A rank plus a manifest — so
they survive process death.
"""

from __future__ import annotations

import json
import os

from repro.common.errors import CheckpointError
from repro.datampi.receiver import ChunkStore

MANIFEST_NAME = "manifest.json"
_MAGIC = b"DMPICKPT"


def checkpoint_path(directory: str, a_rank: int) -> str:
    return os.path.join(directory, f"a{a_rank:05d}.ckpt")


def write_checkpoint(directory: str, a_rank: int, store: ChunkStore) -> int:
    """Persist one A rank's chunks; returns bytes written."""
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, a_rank)
    written = 0
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        for chunk in store.raw_chunks():
            handle.write(len(chunk).to_bytes(8, "big"))
            handle.write(chunk)
            written += len(chunk)
    return written


def write_manifest(directory: str, num_a: int, sort: bool, job_name: str) -> None:
    """Record job-level metadata once all rank checkpoints are written."""
    manifest = {"num_a": num_a, "sort": sort, "job_name": job_name, "complete": True}
    with open(os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)


def read_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint manifest in {directory}")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if not manifest.get("complete"):
        raise CheckpointError(f"incomplete checkpoint in {directory}")
    return manifest


def load_checkpoint(directory: str, a_rank: int, spill_threshold: int) -> ChunkStore:
    """Rebuild one A rank's chunk store from its checkpoint file."""
    path = checkpoint_path(directory, a_rank)
    if not os.path.exists(path):
        raise CheckpointError(f"missing checkpoint file for A rank {a_rank}: {path}")
    store = ChunkStore(spill_threshold=spill_threshold)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise CheckpointError(f"corrupt checkpoint (bad magic) in {path}")
        while True:
            header = handle.read(8)
            if not header:
                break
            if len(header) != 8:
                raise CheckpointError(f"truncated checkpoint {path}")
            length = int.from_bytes(header, "big")
            chunk = handle.read(length)
            if len(chunk) != length:
                raise CheckpointError(f"truncated checkpoint {path}")
            store.add(chunk)
    return store

"""Key-value checkpoint/restart.

Section 2.3: "DataMPI also supports fault tolerance by key-value pair
based checkpoint/restart."  A checkpoint captures the intermediate data
each A task received (its chunk store) after the O phase; ``restart``
rebuilds the stores so the A phase can re-run without re-executing O
tasks.  Checkpoints are plain files — one per A rank plus a manifest — so
they survive process death.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any

from repro.common.errors import CheckpointError
from repro.mpi.transport.codec import PICKLE_PROTOCOL
from repro.storage import ChunkStore

MANIFEST_NAME = "manifest.json"
ITERATION_STATE_NAME = "iteration-state.ckpt"
_MAGIC = b"DMPICKPT"
_ITER_MAGIC = b"DMPIITER"


def atomic_write_bytes(path: str, payload: bytes) -> int:
    """Write ``payload`` to ``path`` atomically (tmp file + rename).

    A kill mid-write leaves either the old file or no file — never a
    truncated one.  This is the durability primitive every checkpoint in
    the repository builds on (iteration state, matrix cells, reports).
    Returns the bytes written.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temporary = path + ".tmp"
    with open(temporary, "wb") as handle:
        handle.write(payload)
    os.replace(temporary, path)  # rename is atomic: a kill keeps the old file
    return len(payload)


def atomic_write_text(path: str, text: str) -> int:
    """Atomically write UTF-8 ``text`` to ``path``; returns bytes written."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, obj: Any) -> int:
    """Atomically serialize ``obj`` as JSON to ``path``; returns bytes."""
    return atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def read_json(path: str) -> Any:
    """Load one JSON document; raises :class:`CheckpointError` on damage."""
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint file at {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except ValueError as exc:
            raise CheckpointError(f"corrupt checkpoint JSON {path}: {exc}") from exc


def checkpoint_path(directory: str, a_rank: int) -> str:
    return os.path.join(directory, f"a{a_rank:05d}.ckpt")


def write_checkpoint(directory: str, a_rank: int, store: ChunkStore) -> int:
    """Persist one A rank's chunks; returns bytes written."""
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, a_rank)
    written = 0
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        for chunk in store.raw_chunks():
            handle.write(len(chunk).to_bytes(8, "big"))
            handle.write(chunk)
            written += len(chunk)
    return written


def write_manifest(directory: str, num_a: int, sort: bool, job_name: str) -> None:
    """Record job-level metadata once all rank checkpoints are written."""
    manifest = {"num_a": num_a, "sort": sort, "job_name": job_name, "complete": True}
    with open(os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)


def read_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint manifest in {directory}")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if not manifest.get("complete"):
        raise CheckpointError(f"incomplete checkpoint in {directory}")
    return manifest


# -- iteration-mode superstep checkpoints -------------------------------------
#
# Iteration mode (see :mod:`repro.datampi.modes`) checkpoints the driver
# state after every *completed* superstep: the iteration number plus the
# user's per-iteration state (e.g. the current centroids).  A killed
# superstep therefore resumes from the last iteration that finished — the
# partially-executed one re-runs from its input, which the O-side cache or
# re-scatter reproduces exactly.


def iteration_state_path(directory: str) -> str:
    return os.path.join(directory, ITERATION_STATE_NAME)


def write_iteration_state(directory: str, iteration: int, state: Any) -> int:
    """Atomically persist the state completed at ``iteration``; returns bytes."""
    if iteration < 1:
        raise CheckpointError(f"iteration must be >= 1, got {iteration}")
    payload = _ITER_MAGIC + pickle.dumps(
        {"iteration": iteration, "state": state}, protocol=PICKLE_PROTOCOL
    )
    return atomic_write_bytes(iteration_state_path(directory), payload)


def clear_iteration_state(directory: str) -> None:
    """Delete any saved iteration state (a fresh run must not resume).

    ``IterativeJob.run(resume=False)`` calls this up front: an elastic
    restart *within* the run re-reads the iteration checkpoint, so a
    stale file from a previous run in the same directory would silently
    change where a replayed superstep resumes from.
    """
    try:
        os.remove(iteration_state_path(directory))
    except FileNotFoundError:
        pass


def read_iteration_state(directory: str) -> dict | None:
    """Load the last completed iteration's state, or None if no checkpoint."""
    path = iteration_state_path(directory)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        payload = handle.read()
    if not payload.startswith(_ITER_MAGIC):
        raise CheckpointError(f"corrupt iteration checkpoint (bad magic) in {path}")
    try:
        saved = pickle.loads(payload[len(_ITER_MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"unreadable iteration checkpoint {path}: {exc}") from exc
    if not isinstance(saved, dict) or "iteration" not in saved or "state" not in saved:
        raise CheckpointError(f"malformed iteration checkpoint {path}")
    return saved


def load_checkpoint(
    directory: str,
    a_rank: int,
    spill_threshold: int,
    spill_dir: str | None = None,
) -> ChunkStore:
    """Rebuild one A rank's chunk store from its checkpoint file."""
    path = checkpoint_path(directory, a_rank)
    if not os.path.exists(path):
        raise CheckpointError(f"missing checkpoint file for A rank {a_rank}: {path}")
    store = ChunkStore(spill_threshold=spill_threshold, spill_dir=spill_dir)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise CheckpointError(f"corrupt checkpoint (bad magic) in {path}")
        while True:
            header = handle.read(8)
            if not header:
                break
            if len(header) != 8:
                raise CheckpointError(f"truncated checkpoint {path}")
            length = int.from_bytes(header, "big")
            chunk = handle.read(length)
            if len(chunk) != length:
                raise CheckpointError(f"truncated checkpoint {path}")
            store.add(chunk)
    return store

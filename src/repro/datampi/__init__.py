"""DataMPI — a key-value pair based communication library (the paper's
core contribution, rebuilt in Python).

Quick example — a word count::

    from repro.datampi import DataMPIConf, DataMPIJob

    def o_task(ctx, split):
        for line in split:
            for word in line.split():
                ctx.send(word, 1)

    def a_task(ctx):
        return [(key, sum(values)) for key, values in ctx.grouped()]

    job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=4, num_a=4,
                                                 combiner=lambda k, vs: sum(vs)))
    result = job.run(splits)
"""

from repro.datampi.buffers import DEFAULT_SEND_BUFFER_BYTES, PartitionedSendBuffer
from repro.datampi.checkpoint import (
    load_checkpoint,
    read_iteration_state,
    read_manifest,
    write_checkpoint,
    write_iteration_state,
    write_manifest,
)
from repro.datampi.communicator import (
    TAG_DATA,
    TAG_EOF,
    TAG_INPUT_REQ,
    TAG_SPLITS,
    BipartiteComm,
)
from repro.datampi.context import AContext, OContext
from repro.datampi.job import (
    EXECUTION_MODES,
    ATask,
    DataMPIConf,
    DataMPIJob,
    JobResult,
    OTask,
    merge_outputs,
    run_a_superstep,
    run_o_superstep,
)
from repro.datampi.modes import (
    A_OUTPUT_KEY,
    O_SPLITS_KEY,
    IterativeJob,
    IterativeResult,
    StreamingJob,
    StreamResult,
    WindowResult,
    recycle_world,
    run_superstep,
)
from repro.datampi.partition import (
    RangePartitioner,
    hash_partitioner,
    validate_partition,
)
# The storage layer moved to repro.storage; these re-exports keep the
# long-standing datampi surface intact (without the shim modules'
# DeprecationWarning).
from repro.storage import (
    DEFAULT_SPILL_BYTES,
    ChunkStore,
    KVCache,
    StorageConfig,
)

__all__ = [
    "StorageConfig",
    "DEFAULT_SEND_BUFFER_BYTES",
    "PartitionedSendBuffer",
    "load_checkpoint",
    "read_iteration_state",
    "read_manifest",
    "write_checkpoint",
    "write_iteration_state",
    "write_manifest",
    "TAG_DATA",
    "TAG_EOF",
    "TAG_INPUT_REQ",
    "TAG_SPLITS",
    "BipartiteComm",
    "AContext",
    "OContext",
    "ATask",
    "EXECUTION_MODES",
    "DataMPIConf",
    "DataMPIJob",
    "JobResult",
    "OTask",
    "merge_outputs",
    "run_a_superstep",
    "run_o_superstep",
    "KVCache",
    "A_OUTPUT_KEY",
    "O_SPLITS_KEY",
    "IterativeJob",
    "IterativeResult",
    "StreamingJob",
    "StreamResult",
    "WindowResult",
    "recycle_world",
    "run_superstep",
    "RangePartitioner",
    "hash_partitioner",
    "validate_partition",
    "DEFAULT_SPILL_BYTES",
    "ChunkStore",
]

"""A-side receive path: chunk accumulation, spill-to-disk, sorted merge.

DataMPI is *data-centric* (Section 2.3): intermediate data is partitioned
and stored "in memory or disk" at the receiving worker, and A tasks then
read it locally.  The receiver accumulates the sorted chunks sent by O
tasks; if the in-memory total exceeds the spill threshold, whole chunks
are written to local files and streamed back lazily during the merge.
The merged iterator is a k-way merge (``heapq.merge``) over all chunks,
yielding records in global key order when sorting is enabled.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from typing import Any, Iterator

from repro.common.errors import DataMPIError
from repro.common.kv import KeyValue, decode_stream

#: Spill when buffered encoded chunks exceed this many bytes.
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024


class ChunkStore:
    """Holds received chunks in memory, spilling to disk past a threshold."""

    def __init__(self, spill_threshold: int = DEFAULT_SPILL_BYTES,
                 spill_dir: str | None = None):
        if spill_threshold < 1:
            raise DataMPIError(f"spill threshold must be positive, got {spill_threshold}")
        self._threshold = spill_threshold
        self._spill_dir = spill_dir
        self._memory_chunks: list[bytes] = []
        self._spill_files: list[str] = []
        self._owned_dir: str | None = None
        self.memory_bytes = 0
        self.spilled_bytes = 0
        self.spills = 0

    def add(self, chunk: bytes) -> None:
        """Store one encoded chunk (already key-sorted by the sender)."""
        self._memory_chunks.append(chunk)
        self.memory_bytes += len(chunk)
        if self.memory_bytes > self._threshold:
            self._spill()

    def _spill(self) -> None:
        """Write all buffered chunks to one spill file, freeing memory."""
        if self._spill_dir is None and self._owned_dir is None:
            self._owned_dir = tempfile.mkdtemp(prefix="datampi-spill-")
        directory = self._spill_dir or self._owned_dir
        assert directory is not None
        path = os.path.join(directory, f"spill-{self.spills}.chunks")
        with open(path, "wb") as handle:
            for chunk in self._memory_chunks:
                handle.write(len(chunk).to_bytes(8, "big"))
                handle.write(chunk)
        self._spill_files.append(path)
        self.spills += 1
        self.spilled_bytes += self.memory_bytes
        self._memory_chunks = []
        self.memory_bytes = 0

    def chunk_iterators(self) -> list[Iterator[KeyValue]]:
        """One decoding iterator per stored chunk (memory and spilled)."""
        iterators = [iter(list(decode_stream(chunk))) for chunk in self._memory_chunks]
        for path in self._spill_files:
            iterators.extend(self._file_chunk_iterators(path))
        return iterators

    @staticmethod
    def _file_chunk_iterators(path: str) -> list[Iterator[KeyValue]]:
        iterators: list[Iterator[KeyValue]] = []
        with open(path, "rb") as handle:
            while True:
                header = handle.read(8)
                if not header:
                    break
                length = int.from_bytes(header, "big")
                iterators.append(decode_stream(handle.read(length)))
        return iterators

    def merged(self, sort: bool = True) -> Iterator[KeyValue]:
        """Iterate all records; in global key order when ``sort`` is true."""
        iterators = self.chunk_iterators()
        if sort:
            return heapq.merge(*iterators, key=lambda kv: kv.key)
        return (record for iterator in iterators for record in iterator)

    def raw_chunks(self) -> list[bytes]:
        """All encoded chunks (drains spill files into memory; used by
        checkpointing, which re-encodes them to its own layout)."""
        chunks = list(self._memory_chunks)
        for path in self._spill_files:
            with open(path, "rb") as handle:
                while True:
                    header = handle.read(8)
                    if not header:
                        break
                    length = int.from_bytes(header, "big")
                    chunks.append(handle.read(length))
        return chunks

    def cleanup(self) -> None:
        """Delete spill files and the owned temp directory."""
        for path in self._spill_files:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._spill_files = []
        if self._owned_dir is not None:
            try:
                os.rmdir(self._owned_dir)
            except OSError:
                pass
            self._owned_dir = None

"""A-side receive path: chunk accumulation, spill-to-disk, sorted merge.

DataMPI is *data-centric* (Section 2.3): intermediate data is partitioned
and stored "in memory or disk" at the receiving worker, and A tasks then
read it locally.  The receiver accumulates the sorted chunks sent by O
tasks; if the in-memory total exceeds the spill threshold, whole chunks
are written to local files and streamed back lazily during the merge.
The merged iterator is a k-way merge (``heapq.merge``) over all chunks,
yielding records in global key order when sorting is enabled.

Chunks carry an *origin* — ``(source O rank, per-source sequence)`` — and
the merge always visits chunks in origin order.  ``heapq.merge`` breaks
key ties by iterator position, so without a canonical order the output
for equal keys (and any floating-point reduction over it) would depend on
chunk *arrival* order, which true multiprocess transports cannot
guarantee.  With origins, every transport backend produces byte-identical
output.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from typing import Any, Iterator

from repro.common.errors import DataMPIError
from repro.common.kv import KeyValue, decode_stream

#: Spill when buffered encoded chunks exceed this many bytes.
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024

#: Chunk origin: (source O rank, per-source sequence number).
Origin = tuple[int, int]

_SPILL_HEADER_BYTES = 24  # source(8) + sequence(8) + chunk length(8)


def _view(chunk) -> memoryview:
    """A read-only view of a stored chunk, for in-place record decoding."""
    return chunk if isinstance(chunk, memoryview) else memoryview(chunk)


class ChunkStore:
    """Holds received chunks in memory, spilling to disk past a threshold."""

    def __init__(self, spill_threshold: int = DEFAULT_SPILL_BYTES,
                 spill_dir: str | None = None):
        if spill_threshold < 1:
            raise DataMPIError(f"spill threshold must be positive, got {spill_threshold}")
        self._threshold = spill_threshold
        self._spill_dir = spill_dir
        self._memory_chunks: list[tuple[Origin, bytes]] = []
        self._spill_files: list[str] = []
        self._owned_dir: str | None = None
        self._auto_sequence = 0
        self.memory_bytes = 0
        self.spilled_bytes = 0
        self.spills = 0

    def add(self, chunk, origin: Origin | None = None) -> None:
        """Store one encoded chunk (already key-sorted by the sender).

        ``chunk`` is ``bytes`` or a read-only ``memoryview`` — the shm
        transport's batch path delivers views that slice one shared
        buffer per ring slot, and the store keeps them as-is (spilling
        and decoding both work straight from a view, so the zero-copy
        read path survives end to end).

        ``origin`` identifies where the chunk came from; when omitted an
        insertion-order origin is assigned, so callers that never pass one
        keep arrival order.
        """
        if origin is None:
            origin = (0, self._auto_sequence)
            self._auto_sequence += 1
        self._memory_chunks.append((origin, chunk))
        self.memory_bytes += len(chunk)
        if self.memory_bytes > self._threshold:
            self._spill()

    def _spill(self) -> None:
        """Write all buffered chunks to one spill file, freeing memory."""
        if self._spill_dir is None and self._owned_dir is None:
            self._owned_dir = tempfile.mkdtemp(prefix="datampi-spill-")
        directory = self._spill_dir or self._owned_dir
        assert directory is not None
        path = os.path.join(directory, f"spill-{self.spills}.chunks")
        with open(path, "wb") as handle:
            for (source, sequence), chunk in self._memory_chunks:
                handle.write(source.to_bytes(8, "big"))
                handle.write(sequence.to_bytes(8, "big"))
                handle.write(len(chunk).to_bytes(8, "big"))
                handle.write(chunk)
        self._spill_files.append(path)
        self.spills += 1
        self.spilled_bytes += self.memory_bytes
        self._memory_chunks = []
        self.memory_bytes = 0

    def _all_chunks(self) -> list[tuple[Origin, bytes, bool]]:
        """Every stored chunk in canonical origin order; the flag marks
        chunks read back from spill files."""
        chunks = [(origin, chunk, False) for origin, chunk in self._memory_chunks]
        for path in self._spill_files:
            with open(path, "rb") as handle:
                while True:
                    header = handle.read(_SPILL_HEADER_BYTES)
                    if not header:
                        break
                    source = int.from_bytes(header[0:8], "big")
                    sequence = int.from_bytes(header[8:16], "big")
                    length = int.from_bytes(header[16:24], "big")
                    chunks.append(((source, sequence), handle.read(length), True))
        chunks.sort(key=lambda item: item[0])
        return chunks

    def chunk_iterators(self) -> list[Iterator[KeyValue]]:
        """One decoding iterator per stored chunk, in origin order.

        Spilled chunks decode lazily during the merge so a dataset that
        spilled precisely because it outgrew memory is not fully
        materialized as records; in-memory chunks are decoded eagerly.
        Every chunk decodes through a ``memoryview`` so record fields are
        sliced in place instead of copied (leaf values still materialise
        as ordinary objects — no view outlives the decode).
        """
        return [
            decode_stream(_view(chunk)) if spilled
            else iter(list(decode_stream(_view(chunk))))
            for _origin, chunk, spilled in self._all_chunks()
        ]

    def merged(self, sort: bool = True) -> Iterator[KeyValue]:
        """Iterate all records; in global key order when ``sort`` is true.

        Key ties break by chunk origin, so the stream is identical no
        matter in which order chunks arrived.
        """
        iterators = self.chunk_iterators()
        if sort:
            return heapq.merge(*iterators, key=lambda kv: kv.key)
        return (record for iterator in iterators for record in iterator)

    def raw_chunks(self) -> list[bytes]:
        """All encoded chunks in origin order (drains spill files into memory;
        used by checkpointing, which re-encodes them to its own layout)."""
        return [chunk for _origin, chunk, _spilled in self._all_chunks()]

    def reset(self) -> None:
        """Empty the store for reuse by the next superstep.

        Iteration and Streaming modes keep one store per A rank alive
        across supersteps; resetting drops chunks, spill files, and
        counters while retaining the owned spill directory so repeated
        windows do not churn temp directories.
        """
        for path in self._spill_files:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._spill_files = []
        self._memory_chunks = []
        self._auto_sequence = 0
        self.memory_bytes = 0
        self.spilled_bytes = 0
        self.spills = 0

    def cleanup(self) -> None:
        """Delete spill files and the owned temp directory."""
        for path in self._spill_files:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._spill_files = []
        if self._owned_dir is not None:
            try:
                os.rmdir(self._owned_dir)
            except OSError:
                pass
            self._owned_dir = None

"""Deprecated import path — :class:`ChunkStore` moved to :mod:`repro.storage`.

This shim keeps historical ``from repro.datampi.receiver import
ChunkStore`` imports working; it emits one :class:`DeprecationWarning`
per process (module caching makes the import-time warning fire once) and
re-exports the real names.
"""

from __future__ import annotations

import warnings

from repro.storage.chunkstore import ChunkStore, Origin
from repro.storage.spill import DEFAULT_SPILL_BYTES

warnings.warn(
    "repro.datampi.receiver is deprecated; import ChunkStore from "
    "repro.storage",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ChunkStore", "DEFAULT_SPILL_BYTES", "Origin"]

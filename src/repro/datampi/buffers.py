"""O-side partitioned send buffers — the pipelining half of DataMPI.

Each O task keeps one buffer per destination A task.  When a buffer
exceeds the send threshold it is *flushed*: sorted by key (DataMPI
delivers key-ordered data to A tasks), optionally run through a combiner,
encoded, and sent immediately — while the O task keeps computing.  This
is the "data movement is pipelining with the computation overlapped in O
tasks" design of Section 2.3, and it is why DataMPI's shuffle is largely
complete by the time the O phase ends (Section 4.4's network analysis).

Encoded chunks leave here as ``bytes`` and stay binary all the way to
the A task: the transports move them verbatim (``FMT_RAW`` — never
through pickle), and the shm backend coalesces chunks below its batch
threshold into a single ring slot, so a small ``threshold_bytes`` here
does not translate into per-chunk descriptor traffic.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import DataMPIError
from repro.common.kv import encode_stream, record_size

#: Default flush threshold per destination buffer (bytes of encoded data).
DEFAULT_SEND_BUFFER_BYTES = 256 * 1024

Combiner = Callable[[Any, list[Any]], Any]


class PartitionedSendBuffer:
    """Per-destination buffering with threshold-triggered pipelined sends."""

    def __init__(
        self,
        num_destinations: int,
        send: Callable[[int, bytes], None],
        *,
        sort: bool = True,
        combiner: Combiner | None = None,
        threshold_bytes: int = DEFAULT_SEND_BUFFER_BYTES,
    ):
        if num_destinations < 1:
            raise DataMPIError(f"need >= 1 destination, got {num_destinations}")
        if threshold_bytes < 1:
            raise DataMPIError(f"threshold must be >= 1 byte, got {threshold_bytes}")
        self._send = send
        self._sort = sort
        self._combiner = combiner
        self._threshold = threshold_bytes
        self._records: list[list[tuple[Any, Any]]] = [[] for _ in range(num_destinations)]
        self._bytes: list[int] = [0] * num_destinations
        self.records_buffered = 0
        self.records_sent = 0
        self.bytes_sent = 0
        self.chunks_sent = 0
        self.records_combined_away = 0

    def add(self, destination: int, key: Any, value: Any) -> None:
        """Buffer one record; flush the destination if over threshold."""
        self._records[destination].append((key, value))
        self._bytes[destination] += record_size(key, value)
        self.records_buffered += 1
        if self._bytes[destination] >= self._threshold:
            self.flush(destination)

    def flush(self, destination: int) -> None:
        """Sort/combine/encode and send one destination's buffer."""
        records = self._records[destination]
        if not records:
            return
        if self._sort:
            records.sort(key=lambda kv: kv[0])
        if self._combiner is not None:
            records = self._combine(records)
        payload = encode_stream(records)
        self._send(destination, payload)
        self.records_sent += len(records)
        self.bytes_sent += len(payload)
        self.chunks_sent += 1
        self._records[destination] = []
        self._bytes[destination] = 0

    def _combine(self, records: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        """Apply the combiner to runs of equal keys (records must be sorted,
        or at least grouped; without sorting the combiner still reduces any
        adjacent duplicates, mirroring a best-effort combiner)."""
        combined: list[tuple[Any, Any]] = []
        run_key: Any = None
        run_values: list[Any] = []
        for key, value in records:
            if run_values and key == run_key:
                run_values.append(value)
            else:
                if run_values:
                    combined.append((run_key, self._apply(run_key, run_values)))
                run_key, run_values = key, [value]
        if run_values:
            combined.append((run_key, self._apply(run_key, run_values)))
        self.records_combined_away += len(records) - len(combined)
        return combined

    def _apply(self, key: Any, values: list[Any]) -> Any:
        if len(values) == 1:
            return values[0]
        assert self._combiner is not None
        return self._combiner(key, values)

    def flush_all(self) -> None:
        """Flush every destination (called when the O task finishes)."""
        for destination in range(len(self._records)):
            self.flush(destination)

    @property
    def buffered_bytes(self) -> int:
        return sum(self._bytes)

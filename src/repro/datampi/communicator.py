"""The bipartite O/A communicator — DataMPI's communication model.

Section 2.3: "A job of DataMPI contains several tasks which are divided
into O/A communicators and form a bipartite graph in the underlying
communication.  Data movement from O communicator to A communicator is
scheduled implicitly by the library."

The world's first ``num_o`` ranks form the O communicator, the remaining
``num_a`` ranks the A communicator.  O ranks push encoded key-value
chunks (``TAG_DATA``) to A ranks and finish with one ``TAG_EOF`` to each;
an A rank knows its input is complete when it has an EOF from every O
rank.  This captures the four communication characteristics the paper
lists: *dichotomic* (two fixed sides), *dynamic* (chunks flow as they
fill), *data-centric* (data lands at the consumer and is read locally),
and *diversified* (hash or range routing via the partitioner).
"""

from __future__ import annotations

from repro.common.errors import CommunicatorError
from repro.mpi.comm import ANY_TAG, Comm, Message

TAG_DATA = 1
TAG_EOF = 2


class BipartiteComm:
    """One rank's view of the bipartite O/A world."""

    def __init__(self, comm: Comm, num_o: int, num_a: int):
        if num_o < 1 or num_a < 1:
            raise CommunicatorError(
                f"both sides need >= 1 task (num_o={num_o}, num_a={num_a})"
            )
        if comm.size != num_o + num_a:
            raise CommunicatorError(
                f"world size {comm.size} != num_o + num_a = {num_o + num_a}"
            )
        self.comm = comm
        self.num_o = num_o
        self.num_a = num_a

    @property
    def is_o(self) -> bool:
        return self.comm.rank < self.num_o

    @property
    def o_index(self) -> int:
        if not self.is_o:
            raise CommunicatorError(f"rank {self.comm.rank} is not in the O communicator")
        return self.comm.rank

    @property
    def a_index(self) -> int:
        if self.is_o:
            raise CommunicatorError(f"rank {self.comm.rank} is not in the A communicator")
        return self.comm.rank - self.num_o

    def world_rank_of_a(self, a_index: int) -> int:
        if not 0 <= a_index < self.num_a:
            raise CommunicatorError(f"A index {a_index} out of range [0, {self.num_a})")
        return self.num_o + a_index

    # -- O side ---------------------------------------------------------------

    def send_chunk(self, a_index: int, payload: bytes) -> None:
        """Push one encoded chunk to an A task (implicit data movement)."""
        if not self.is_o:
            raise CommunicatorError("only O tasks send data chunks")
        self.comm.send(self.world_rank_of_a(a_index), payload, TAG_DATA)

    def send_eof(self) -> None:
        """Tell every A task this O task is done."""
        if not self.is_o:
            raise CommunicatorError("only O tasks send EOF")
        for a_index in range(self.num_a):
            self.comm.send(self.world_rank_of_a(a_index), None, TAG_EOF)

    # -- A side ---------------------------------------------------------------

    def recv_any(self) -> Message:
        """Receive the next DATA or EOF message (A side only)."""
        if self.is_o:
            raise CommunicatorError("only A tasks receive data")
        message = self.comm.recv(tag=ANY_TAG)
        if message.tag not in (TAG_DATA, TAG_EOF):
            raise CommunicatorError(f"unexpected tag {message.tag} on A rank")
        return message

"""The bipartite O/A communicator — DataMPI's communication model.

Section 2.3: "A job of DataMPI contains several tasks which are divided
into O/A communicators and form a bipartite graph in the underlying
communication.  Data movement from O communicator to A communicator is
scheduled implicitly by the library."

The world's first ``num_o`` ranks form the O communicator, the remaining
``num_a`` ranks the A communicator.  O ranks push encoded key-value
chunks (``TAG_DATA``) to A ranks and finish with one ``TAG_EOF`` to each;
an A rank knows its input is complete when it has an EOF from every O
rank.  This captures the four communication characteristics the paper
lists: *dichotomic* (two fixed sides), *dynamic* (chunks flow as they
fill), *data-centric* (data lands at the consumer and is read locally),
and *diversified* (hash or range routing via the partitioner).
"""

from __future__ import annotations

from repro.common.errors import CommunicatorError
from repro.mpi.comm import ANY_TAG, Comm, Message

TAG_DATA = 1
TAG_EOF = 2
#: Input-split payloads scattered from the root rank to O ranks (iteration
#: and streaming modes move input through the comm layer so the bytes the
#: cross-iteration cache saves are *measured*, not asserted).
TAG_SPLITS = 3
#: An O rank's per-superstep input request: does it still hold its splits
#: in cache, or does the root need to (re-)send them?
TAG_INPUT_REQ = 4


class BipartiteComm:
    """One rank's view of the bipartite O/A world."""

    def __init__(self, comm: Comm, num_o: int, num_a: int):
        if num_o < 1 or num_a < 1:
            raise CommunicatorError(
                f"both sides need >= 1 task (num_o={num_o}, num_a={num_a})"
            )
        if comm.size != num_o + num_a:
            raise CommunicatorError(
                f"world size {comm.size} != num_o + num_a = {num_o + num_a}"
            )
        self.comm = comm
        self.num_o = num_o
        self.num_a = num_a

    @property
    def is_o(self) -> bool:
        return self.comm.rank < self.num_o

    @property
    def o_index(self) -> int:
        if not self.is_o:
            raise CommunicatorError(f"rank {self.comm.rank} is not in the O communicator")
        return self.comm.rank

    @property
    def a_index(self) -> int:
        if self.is_o:
            raise CommunicatorError(f"rank {self.comm.rank} is not in the A communicator")
        return self.comm.rank - self.num_o

    def world_rank_of_a(self, a_index: int) -> int:
        if not 0 <= a_index < self.num_a:
            raise CommunicatorError(f"A index {a_index} out of range [0, {self.num_a})")
        return self.num_o + a_index

    # -- O side ---------------------------------------------------------------

    def send_chunk(self, a_index: int, payload: bytes) -> None:
        """Push one encoded chunk to an A task (implicit data movement)."""
        if not self.is_o:
            raise CommunicatorError("only O tasks send data chunks")
        self.comm.send(self.world_rank_of_a(a_index), payload, TAG_DATA)

    def send_eof(self) -> None:
        """Tell every A task this O task is done."""
        if not self.is_o:
            raise CommunicatorError("only O tasks send EOF")
        for a_index in range(self.num_a):
            self.comm.send(self.world_rank_of_a(a_index), None, TAG_EOF)

    # -- input distribution (iteration / streaming supersteps) -----------------
    #
    # The world's rank 0 (always an O rank) doubles as the input root: at
    # the top of a superstep every O rank tells it whether its splits are
    # already cached, and the root answers with either the encoded split
    # payload or a tiny ack.  Self-sends (rank 0 asking itself) ride the
    # normal transport loopback, so the protocol is uniform on every
    # backend and the byte counters mean the same thing everywhere.

    INPUT_ROOT = 0

    def request_input(self, cached: bool) -> None:
        """Tell the input root whether this O rank still holds its splits."""
        if not self.is_o:
            raise CommunicatorError("only O tasks request input")
        self.comm.send(self.INPUT_ROOT, cached, TAG_INPUT_REQ)

    def recv_input(self) -> Message:
        """Receive the root's answer: TAG_SPLITS with bytes or a None ack.

        ``buffer=True``: split payloads feed straight into a local decode,
        so a zero-copy view is fine and saves materialising large splits.
        """
        if not self.is_o:
            raise CommunicatorError("only O tasks receive input")
        return self.comm.recv(source=self.INPUT_ROOT, tag=TAG_SPLITS,
                              buffer=True)

    def recv_input_request(self, o_index: int) -> bool:
        """Root side: receive one O rank's cached/uncached flag."""
        if self.comm.rank != self.INPUT_ROOT:
            raise CommunicatorError("only the input root serves input requests")
        return bool(self.comm.recv(source=o_index, tag=TAG_INPUT_REQ).payload)

    def send_input(self, o_index: int, payload) -> None:
        """Root side: answer one O rank's input request."""
        if self.comm.rank != self.INPUT_ROOT:
            raise CommunicatorError("only the input root serves input requests")
        self.comm.send(o_index, payload, TAG_SPLITS)

    # -- A side ---------------------------------------------------------------

    def recv_any(self) -> Message:
        """Receive the next DATA or EOF message (A side only).

        ``buffer=True``: chunk payloads go straight into the
        :class:`~repro.storage.chunkstore.ChunkStore`, which decodes
        ``memoryview`` chunks in place — the zero-copy half of the shm
        batch path.
        """
        if self.is_o:
            raise CommunicatorError("only A tasks receive data")
        message = self.comm.recv(tag=ANY_TAG, buffer=True)
        if message.tag not in (TAG_DATA, TAG_EOF):
            raise CommunicatorError(f"unexpected tag {message.tag} on A rank")
        return message

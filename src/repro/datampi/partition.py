"""Partitioners: route a key to one of the A tasks.

DataMPI partitions the data emitted by O tasks across the A communicator
(Section 2.3: "DataMPI partitions and stores the emitted data by O tasks").
The default is a stable hash partitioner (CRC32 over the encoded key, so
results do not depend on Python's per-process hash randomization); Sort
uses a range partitioner so that concatenating the A outputs in rank order
yields a totally ordered result, as TeraSort-style jobs do.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Callable, Sequence

from repro.common.errors import DataMPIError
from repro.common.kv import encode_record

Partitioner = Callable[[Any, int], int]


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Stable hash partitioning (the library default)."""
    digest = zlib.crc32(encode_record(key, None))
    return digest % num_partitions


class RangePartitioner:
    """Quantile-based range partitioning for totally-ordered output.

    Built from a sample of keys; partition ``i`` receives keys in the
    half-open interval between boundaries ``i-1`` and ``i``.
    """

    def __init__(self, sample_keys: Sequence[Any], num_partitions: int):
        if num_partitions < 1:
            raise DataMPIError(f"need >= 1 partition, got {num_partitions}")
        if not sample_keys:
            raise DataMPIError("range partitioner needs a non-empty key sample")
        self.num_partitions = num_partitions
        ordered = sorted(sample_keys)
        self.boundaries = [
            ordered[(len(ordered) * (i + 1)) // num_partitions - 1]
            for i in range(num_partitions - 1)
        ]

    def __call__(self, key: Any, num_partitions: int) -> int:
        if num_partitions != self.num_partitions:
            raise DataMPIError(
                f"partitioner built for {self.num_partitions} partitions, "
                f"asked for {num_partitions}"
            )
        return bisect.bisect_left(self.boundaries, key)


def validate_partition(partition: int, num_partitions: int) -> int:
    """Bounds-check a partitioner result (guards user-supplied partitioners)."""
    if not 0 <= partition < num_partitions:
        raise DataMPIError(
            f"partitioner returned {partition}, valid range is [0, {num_partitions})"
        )
    return partition

"""DataMPI job driver: launch O and A tasks over the MPI substrate.

A :class:`DataMPIJob` is the library's top-level entry point, mirroring a
DataMPI application's ``MPI_D_Init ... MPI_D_Finalize`` lifecycle:

* input splits are distributed round-robin over the O tasks (the real
  library schedules dynamically; round-robin over uniform splits is
  equivalent for the paper's balanced workloads);
* O tasks call ``ctx.send(key, value)``; the library partitions, sorts,
  pipelines and moves the data to the A side while O computation runs;
* A tasks consume key-ordered records and return their outputs;
* optionally, the received intermediate data is checkpointed so the A
  phase can be re-run with :meth:`DataMPIJob.restart` (fault tolerance).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.errors import ConfigError
from repro.datampi.buffers import DEFAULT_SEND_BUFFER_BYTES
from repro.datampi.checkpoint import (
    load_checkpoint,
    read_manifest,
    write_checkpoint,
    write_manifest,
)
from repro.datampi.communicator import BipartiteComm
from repro.datampi.context import AContext, OContext
from repro.datampi.partition import Partitioner
from repro.storage import DEFAULT_SPILL_BYTES, ChunkStore, KVCache, StorageConfig
from repro.mpi import faultinject
from repro.mpi.comm import Comm
from repro.mpi.launcher import mpi_run
from repro.mpi.transport import Transport, available_transports, get_transport

OTask = Callable[[OContext, Any], None]
ATask = Callable[[AContext], Any]

#: The DataMPI spec's three execution modes.  ``common`` is the run-once
#: O/A job this class implements; ``iteration`` and ``streaming`` are
#: driven by :mod:`repro.datampi.modes` on top of the same superstep
#: phases below.
EXECUTION_MODES = ("common", "iteration", "streaming")


@dataclass(frozen=True)
class DataMPIConf:
    """Static configuration of a DataMPI job.

    A frozen value object shared by every execution mode: the O/A world
    shape, shuffle behaviour (sort/partitioner/combiner), buffer and
    spill thresholds, the IPC ``transport`` and the execution ``mode``.
    Validation happens at construction, so a bad configuration fails
    before any rank is launched.

    Examples:
        >>> from repro.datampi import DataMPIConf
        >>> conf = DataMPIConf(num_o=2, num_a=2, transport="inline")
        >>> conf.mode
        'common'
        >>> conf.storage.spill_threshold == conf.spill_bytes
        True
        >>> DataMPIConf(num_o=0, num_a=1)
        Traceback (most recent call last):
            ...
        repro.common.errors.ConfigError: num_o and num_a must be >= 1 (got 0, 1)
    """

    num_o: int = 4
    num_a: int = 4
    sort: bool = True
    partitioner: Partitioner | None = None
    combiner: Callable[[Any, list[Any]], Any] | None = None
    send_buffer_bytes: int = DEFAULT_SEND_BUFFER_BYTES
    spill_bytes: int = DEFAULT_SPILL_BYTES
    checkpoint_dir: str | None = None
    job_name: str = "datampi-job"
    #: IPC backend the job's ranks run over: ``thread`` (default), ``shm``
    #: (forked processes + shared-memory rings), ``inline``, or ``tcp``
    #: (processes/machines over socket pairs).  Also accepts a constructed
    #: :class:`~repro.mpi.transport.Transport` instance — how backend
    #: options like the tcp transport's ``hosts=`` reach a job.  ``None``
    #: defers to the runtime default (``REPRO_TRANSPORT`` env var or thread).
    transport: str | Transport | None = None
    #: Execution mode: ``common`` (run-once), ``iteration`` (kept-alive
    #: ranks + cross-iteration KV cache), or ``streaming`` (windowed
    #: unbounded input).  Iteration/streaming jobs are driven by
    #: :class:`repro.datampi.modes.IterativeJob` / ``StreamingJob``.
    mode: str = "common"
    #: Capacity of the per-rank cross-superstep KV cache (None = unbounded).
    #: Deprecated: carry a :class:`repro.storage.StorageConfig` in
    #: ``storage=`` instead; this kwarg keeps working but warns.
    cache_bytes: int | None = None
    #: The storage layer's budgets and spill placement, as one
    #: :class:`repro.storage.StorageConfig` value.  When omitted it is
    #: synthesized from the legacy ``cache_bytes``/``spill_bytes`` fields;
    #: when given, those fields are kept mirrored so old readers agree.
    storage: StorageConfig | None = None
    #: Deterministic fault plan (a :class:`~repro.mpi.faultinject.FaultPlan`
    #: or its DSL string) installed in every rank the job launches.  The
    #: plan fires *inside* the ranks at instrumented points — the chaos
    #: tests' alternative to sleeping and signalling from outside.
    fault_plan: Any = None

    def __post_init__(self) -> None:
        # Normalize the fault plan up front so a bad DSL string fails at
        # construction, like every other conf error.
        object.__setattr__(
            self, "fault_plan", faultinject.parse_fault_plan(self.fault_plan)
        )
        if self.fault_plan is not None and isinstance(self.transport, Transport):
            raise ConfigError(
                "conf.fault_plan cannot be combined with an already-constructed "
                "transport instance; pass fault_plan= to the transport "
                "constructor instead"
            )
        if self.num_o < 1 or self.num_a < 1:
            raise ConfigError(
                f"num_o and num_a must be >= 1 (got {self.num_o}, {self.num_a})"
            )
        if self.send_buffer_bytes < 1:
            raise ConfigError("send_buffer_bytes must be positive")
        if self.spill_bytes < 1:
            raise ConfigError("spill_bytes must be positive")
        if self.transport is not None and not isinstance(self.transport, Transport) \
                and self.transport not in available_transports():
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                f"available: {available_transports()}"
            )
        if self.mode not in EXECUTION_MODES:
            raise ConfigError(
                f"unknown execution mode {self.mode!r}; available: {EXECUTION_MODES}"
            )
        if self.cache_bytes is not None and self.cache_bytes < 1:
            raise ConfigError("cache_bytes must be positive or None")
        self._sync_storage()

    def _sync_storage(self) -> None:
        # Keep ``storage`` and the legacy ``cache_bytes``/``spill_bytes``
        # fields describing the same thing: synthesize one from the other,
        # and refuse a conf where both were passed but disagree.
        if self.storage is None:
            if self.cache_bytes is not None:
                warnings.warn(
                    "DataMPIConf(cache_bytes=...) is deprecated; pass "
                    "storage=StorageConfig(cache_bytes=...) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
            object.__setattr__(
                self,
                "storage",
                StorageConfig(
                    cache_bytes=self.cache_bytes,
                    spill_threshold=self.spill_bytes,
                ),
            )
            return
        if (
            self.cache_bytes is not None
            and self.cache_bytes != self.storage.cache_bytes
        ):
            raise ConfigError(
                f"cache_bytes={self.cache_bytes} disagrees with "
                f"storage.cache_bytes={self.storage.cache_bytes}; set one"
            )
        if (
            self.spill_bytes != DEFAULT_SPILL_BYTES
            and self.spill_bytes != self.storage.spill_threshold
        ):
            raise ConfigError(
                f"spill_bytes={self.spill_bytes} disagrees with "
                f"storage.spill_threshold={self.storage.spill_threshold}; set one"
            )
        object.__setattr__(self, "cache_bytes", self.storage.cache_bytes)
        object.__setattr__(self, "spill_bytes", self.storage.spill_threshold)

    def resolved_transport(self) -> str | Transport | None:
        """The transport every driver should hand to ``mpi_run``.

        With no fault plan this is just ``self.transport``; with one, the
        backend is constructed here so the plan rides into every rank the
        job launches (forked children install it before running user code).
        """
        if self.fault_plan is None:
            return self.transport
        return get_transport(self.transport, fault_plan=self.fault_plan)


def merge_outputs(outputs: list[Any]) -> list[Any]:
    """Concatenate per-A-rank list outputs in rank order (Nones skipped).

    The one definition of output merging, shared by every execution
    mode's result type so merged outputs cannot diverge between modes.
    """
    merged: list[Any] = []
    for output in outputs:
        if output is None:
            continue
        if isinstance(output, list):
            merged.extend(output)
        else:
            merged.append(output)
    return merged


@dataclass
class JobResult:
    """Outcome of a DataMPI job run."""

    outputs: list[Any]  # indexed by A rank
    counters: dict[str, int] = field(default_factory=dict)

    def merged_outputs(self) -> list[Any]:
        """Concatenate per-A-rank list outputs in rank order."""
        return merge_outputs(self.outputs)


# -- superstep phases ----------------------------------------------------------
#
# One O phase plus one A phase is a *superstep*: the unit Common mode runs
# once and Iteration/Streaming modes run in a loop over kept-alive ranks.
# The phases are module-level so every mode shares byte-identical shuffle
# semantics (same buffers, same chunk origins, same merge order).


def run_o_superstep(
    bcomm: BipartiteComm,
    conf: DataMPIConf,
    invoke_o: Callable[[OContext, Any], None],
    my_splits: Sequence[Any],
    *,
    cache: KVCache | None = None,
    superstep: int | None = None,
) -> dict[str, int]:
    """Run one O rank's half of a superstep; returns its counters.

    ``invoke_o`` is called once per split; EOFs flow to every A rank even
    when it raises, so the A side never hangs on a failed O task.
    """
    ctx = OContext(
        bcomm,
        partitioner=conf.partitioner,
        sort=conf.sort,
        combiner=conf.combiner,
        send_buffer_bytes=conf.send_buffer_bytes,
        cache=cache,
        superstep=superstep,
    )
    try:
        faultinject.fire("o-phase", rank=bcomm.comm.rank, superstep=superstep)
        for split in my_splits:
            invoke_o(ctx, split)
    finally:
        ctx.close()  # EOF must flow even on failure so A ranks unblock
    return ctx.counters


def run_a_superstep(
    bcomm: BipartiteComm,
    conf: DataMPIConf,
    invoke_a: Callable[[AContext], Any],
    store: ChunkStore,
    *,
    cache: KVCache | None = None,
    superstep: int | None = None,
    checkpoint_dir: str | None = None,
) -> tuple[Any, dict[str, int]]:
    """Run one A rank's half of a superstep; returns (output, counters).

    The caller owns ``store`` — run-once jobs clean it up immediately,
    iterative/streaming drivers reset and reuse it across supersteps.
    """
    ctx = AContext(bcomm, store, sort=conf.sort, cache=cache, superstep=superstep)
    faultinject.fire("a-phase", rank=bcomm.comm.rank, superstep=superstep)
    ctx.drain()
    if checkpoint_dir is not None:
        write_checkpoint(checkpoint_dir, ctx.rank, store)
    output = invoke_a(ctx)
    return output, ctx.counters


class DataMPIJob:
    """A bipartite O/A job over the in-process MPI world (Common mode).

    The library's top-level entry point: O tasks emit key-value pairs
    with ``ctx.send``; the library partitions, optionally combines and
    sorts, and moves them to the A tasks, which consume them key-grouped
    and return outputs (collected in A-rank order).

    Examples:
        Word counting with two O ranks feeding one A rank:

        >>> from repro.datampi import DataMPIConf, DataMPIJob
        >>> def o_task(ctx, split):
        ...     for word in split.split():
        ...         ctx.send(word, 1)
        >>> def a_task(ctx):
        ...     return [(word, sum(ones)) for word, ones in ctx.grouped()]
        >>> conf = DataMPIConf(num_o=2, num_a=1, transport="inline")
        >>> DataMPIJob(o_task, a_task, conf).run(["b a", "a"]).merged_outputs()
        [('a', 2), ('b', 1)]
    """

    def __init__(self, o_task: OTask, a_task: ATask, conf: DataMPIConf | None = None):
        self.o_task = o_task
        self.a_task = a_task
        self.conf = conf or DataMPIConf()
        if self.conf.mode != "common":
            raise ConfigError(
                f"DataMPIJob runs Common mode only (conf.mode={self.conf.mode!r}); "
                "use IterativeJob or StreamingJob from repro.datampi.modes"
            )

    # -- normal execution -----------------------------------------------------

    def run(self, splits: Sequence[Any]) -> JobResult:
        """Execute the job on ``splits``; returns per-A-rank outputs."""
        conf = self.conf

        def rank_main(comm: Comm) -> tuple[str, Any, dict[str, int]]:
            bcomm = BipartiteComm(comm, conf.num_o, conf.num_a)
            if bcomm.is_o:
                counters = run_o_superstep(
                    bcomm, conf, self.o_task,
                    list(splits)[bcomm.o_index::conf.num_o],
                )
                return ("o", None, counters)
            return self._run_a(bcomm)

        rank_results = mpi_run(
            conf.num_o + conf.num_a, rank_main, transport=conf.resolved_transport()
        )
        if conf.checkpoint_dir is not None:
            write_manifest(conf.checkpoint_dir, conf.num_a, conf.sort, conf.job_name)
        return self._collect(rank_results)

    def _run_a(self, bcomm: BipartiteComm):
        store = self.conf.storage.make_store()
        try:
            output, counters = run_a_superstep(
                bcomm, self.conf, self.a_task, store,
                checkpoint_dir=self.conf.checkpoint_dir,
            )
        finally:
            store.cleanup()
        return ("a", output, counters)

    # -- checkpoint restart -----------------------------------------------------

    def restart(self, checkpoint_dir: str | None = None) -> JobResult:
        """Re-run only the A phase from a completed checkpoint."""
        directory = checkpoint_dir or self.conf.checkpoint_dir
        if directory is None:
            raise ConfigError("restart needs a checkpoint directory")
        manifest = read_manifest(directory)
        if manifest["num_a"] != self.conf.num_a:
            raise ConfigError(
                f"checkpoint has {manifest['num_a']} A tasks, job expects {self.conf.num_a}"
            )

        def a_main(comm: Comm):
            store = load_checkpoint(
                directory,
                comm.rank,
                self.conf.storage.spill_threshold,
                spill_dir=self.conf.storage.spill_dir,
            )
            ctx = AContext(None, store, sort=self.conf.sort, a_index=comm.rank)
            try:
                output = self.a_task(ctx)
            finally:
                ctx.cleanup()
            return ("a", output, ctx.counters)

        rank_results = mpi_run(
            self.conf.num_a, a_main, transport=self.conf.resolved_transport()
        )
        return self._collect(rank_results)

    # -- result assembly --------------------------------------------------------

    @staticmethod
    def _collect(rank_results: list[tuple[str, Any, dict[str, int]]]) -> JobResult:
        outputs = [result for side, result, _ in rank_results if side == "a"]
        counters: dict[str, int] = {}
        for _side, _result, rank_counters in rank_results:
            for name, value in rank_counters.items():
                counters[name] = counters.get(name, 0) + value
        return JobResult(outputs=outputs, counters=counters)

"""Deprecated import path — :class:`KVCache` moved to :mod:`repro.storage`.

This shim keeps historical ``from repro.datampi.kvcache import KVCache``
imports working; it emits one :class:`DeprecationWarning` per process
(module caching makes the import-time warning fire once) and re-exports
the real class.
"""

from __future__ import annotations

import warnings

from repro.storage.kvcache import KVCache

warnings.warn(
    "repro.datampi.kvcache is deprecated; import KVCache from repro.storage",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["KVCache"]

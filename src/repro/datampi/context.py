"""Task-facing contexts: the DataMPI programming interface.

``OContext.send`` and ``AContext.recv`` are the Python counterparts of
DataMPI's ``MPI_D_Send(key, value)`` / ``MPI_D_Recv()``.  An O task is a
function ``o_task(ctx, split)`` that emits key-value pairs; an A task is
a function ``a_task(ctx)`` that consumes them (in key order when sorting
is enabled) and returns its output.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.common.errors import CommunicatorError
from repro.common.kv import KeyValue
from repro.mpi import faultinject
from repro.datampi.buffers import PartitionedSendBuffer
from repro.datampi.communicator import TAG_DATA, BipartiteComm
from repro.datampi.partition import Partitioner, hash_partitioner, validate_partition
from repro.storage import ChunkStore, KVCache


class OContext:
    """Context handed to O tasks; ``send`` is the MPI_D_Send equivalent."""

    def __init__(
        self,
        bcomm: BipartiteComm,
        *,
        partitioner: Partitioner | None = None,
        sort: bool = True,
        combiner=None,
        send_buffer_bytes: int | None = None,
        cache: KVCache | None = None,
        superstep: int | None = None,
    ):
        self._bcomm = bcomm
        self._partitioner = partitioner or hash_partitioner
        self._closed = False
        #: Rank-lifetime KV cache (iteration/streaming modes); None in
        #: run-once jobs, whose ranks do not outlive a single superstep.
        self.cache = cache
        #: 1-based iteration (or streaming window) this context serves;
        #: None in run-once jobs.
        self.superstep = superstep
        kwargs = {"sort": sort, "combiner": combiner}
        if send_buffer_bytes is not None:
            kwargs["threshold_bytes"] = send_buffer_bytes

        # The ``shuffle`` fault point fires per flushed chunk — after some
        # chunks may already be in flight, before the EOFs — which is the
        # window where a death leaves peers mid-protocol.  Per-chunk (not
        # per-record) keeps the hot send path untouched.
        def chunk_sink(a_index: int, payload: bytes) -> None:
            faultinject.fire(
                "shuffle", rank=bcomm.comm.rank, superstep=superstep
            )
            bcomm.send_chunk(a_index, payload)

        self._buffer = PartitionedSendBuffer(bcomm.num_a, chunk_sink, **kwargs)

    @property
    def rank(self) -> int:
        return self._bcomm.o_index

    @property
    def num_o(self) -> int:
        return self._bcomm.num_o

    @property
    def num_a(self) -> int:
        return self._bcomm.num_a

    def send(self, key: Any, value: Any) -> None:
        """Emit one key-value pair toward its A task (pipelined)."""
        if self._closed:
            raise CommunicatorError("send after O context was closed")
        destination = validate_partition(
            self._partitioner(key, self._bcomm.num_a), self._bcomm.num_a
        )
        self._buffer.add(destination, key, value)

    def close(self) -> None:
        """Flush remaining buffers and signal EOF to every A task.

        EOF flows even when the final flush raises: A ranks must never
        block on a failed O task, and iterative supersteps rely on the EOF
        count staying exact so the failure can propagate through the
        control channel instead of a receive timeout.
        """
        if self._closed:
            return
        try:
            self._buffer.flush_all()
        finally:
            self._bcomm.send_eof()
            self._closed = True

    @property
    def counters(self) -> dict[str, int]:
        return {
            "o.records_emitted": self._buffer.records_buffered,
            "o.records_sent": self._buffer.records_sent,
            "o.bytes_sent": self._buffer.bytes_sent,
            "o.chunks_sent": self._buffer.chunks_sent,
            "o.records_combined_away": self._buffer.records_combined_away,
        }


class AContext:
    """Context handed to A tasks; ``recv`` is the MPI_D_Recv equivalent."""

    def __init__(self, bcomm: BipartiteComm | None, store: ChunkStore, *,
                 sort: bool = True, a_index: int | None = None, num_o: int = 0,
                 cache: KVCache | None = None, superstep: int | None = None):
        self._bcomm = bcomm
        self._store = store
        self._sort = sort
        self.cache = cache
        self.superstep = superstep
        self._a_index = a_index if a_index is not None else (
            bcomm.a_index if bcomm is not None else 0
        )
        self._num_o = num_o or (bcomm.num_o if bcomm is not None else 0)
        self._drained = bcomm is None  # restored-from-checkpoint contexts skip drain
        self._iterator: Iterator[KeyValue] | None = None
        self.records_received = 0
        self.bytes_received = 0

    @property
    def rank(self) -> int:
        return self._a_index

    def drain(self) -> None:
        """Receive chunks until every O task has sent EOF (the implicit
        data-movement phase)."""
        if self._drained:
            return
        assert self._bcomm is not None
        eof_remaining = self._num_o
        sequence_of: dict[int, int] = {}
        while eof_remaining > 0:
            message = self._bcomm.recv_any()
            if message.tag == TAG_DATA:
                # Origin-stamp each chunk so downstream merge order is
                # canonical even when transports deliver out of order.
                sequence = sequence_of.get(message.source, 0)
                sequence_of[message.source] = sequence + 1
                self._store.add(message.payload, origin=(message.source, sequence))
                self.bytes_received += len(message.payload)
            else:
                eof_remaining -= 1
        self._drained = True

    def _ensure_iterator(self) -> Iterator[KeyValue]:
        self.drain()
        if self._iterator is None:
            self._iterator = self._store.merged(sort=self._sort)
        return self._iterator

    def recv(self) -> KeyValue | None:
        """Next key-value record, or ``None`` when input is exhausted."""
        iterator = self._ensure_iterator()
        record = next(iterator, None)
        if record is not None:
            self.records_received += 1
        return record

    def __iter__(self) -> Iterator[KeyValue]:
        iterator = self._ensure_iterator()
        for record in iterator:
            self.records_received += 1
            yield record

    def grouped(self) -> Iterator[tuple[Any, list[Any]]]:
        """Iterate ``(key, [values])`` groups.

        With sorting enabled this streams ``itertools.groupby`` runs; with
        sorting disabled it must accumulate a dictionary (documented memory
        cost), preserving first-seen key order.
        """
        if self._sort:
            for key, group in itertools.groupby(self, key=lambda kv: kv.key):
                yield key, [record.value for record in group]
        else:
            table: dict[Any, list[Any]] = {}
            for record in self:
                table.setdefault(record.key, []).append(record.value)
            yield from table.items()

    @property
    def counters(self) -> dict[str, int]:
        return {
            "a.records_received": self.records_received,
            "a.bytes_received": self.bytes_received,
            "a.spills": self._store.spills,
            "a.spilled_bytes": self._store.spilled_bytes,
            "a.bytes_spilled": self._store.bytes_spilled,
            "a.spill_reads": self._store.spill_reads,
        }

    def cleanup(self) -> None:
        self._store.cleanup()

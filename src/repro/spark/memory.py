"""Spark 0.8-style executor memory management.

The paper's Spark baseline fails with ``OutOfMemoryError`` on Normal Sort
(all sizes) and on Text Sort above 8 GB (Section 4.3) — in Spark 0.8 the
deserialized Java objects backing cached RDD blocks and shuffle buckets
live in the executor heap with a large object-overhead multiplier, and
shuffle memory was not admission-controlled.

``MemoryManager`` reproduces exactly that behaviour:

* cached blocks are charged at ``raw bytes x java_expansion`` and evicted
  LRU when space is needed (dropping a block is safe — lineage recomputes);
* *transient* charges (shuffle buckets, sort materialization) cannot be
  evicted; if they do not fit, the job dies with
  :class:`~repro.common.errors.OutOfMemoryError`, like the JVM.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

from repro.common.errors import OutOfMemoryError, ReproError
from repro.common.kv import record_size

#: Deserialized Java object overhead relative to serialized bytes.
DEFAULT_JAVA_EXPANSION = 4.0


def estimate_bytes(records: Sequence[Any], java_expansion: float = DEFAULT_JAVA_EXPANSION) -> int:
    """Heap footprint estimate for a list of records (KV pairs or values)."""
    total = 0
    for record in records:
        if isinstance(record, tuple) and len(record) == 2:
            total += record_size(record[0], record[1])
        else:
            total += record_size(record, None)
    return int(total * java_expansion)


class MemoryManager:
    """Tracks executor heap use: cached blocks (evictable) + transient charges."""

    def __init__(self, capacity: int, java_expansion: float = DEFAULT_JAVA_EXPANSION):
        if capacity < 1:
            raise ReproError(f"memory capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.java_expansion = java_expansion
        self._blocks: OrderedDict[str, tuple[list[Any], int]] = OrderedDict()
        self.cached_bytes = 0
        self.transient_bytes = 0
        self.evictions = 0
        self.peak_bytes = 0

    # -- accounting -----------------------------------------------------------

    @property
    def used(self) -> int:
        return self.cached_bytes + self.transient_bytes

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def _note_peak(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.used)

    # -- cached blocks (evictable, lineage can rebuild them) -------------------

    def store_block(self, block_id: str, records: list[Any]) -> bool:
        """Cache a computed partition; returns False if it cannot fit even
        after evicting every other block (Spark drops it, keeps running)."""
        nbytes = estimate_bytes(records, self.java_expansion)
        if nbytes > self.capacity - self.transient_bytes:
            return False
        self._evict_until(nbytes, exclude=block_id)
        if nbytes > self.available:
            return False
        self._blocks[block_id] = (records, nbytes)
        self._blocks.move_to_end(block_id)
        self.cached_bytes += nbytes
        self._note_peak()
        return True

    def get_block(self, block_id: str) -> list[Any] | None:
        entry = self._blocks.get(block_id)
        if entry is None:
            return None
        self._blocks.move_to_end(block_id)  # LRU touch
        return entry[0]

    def drop_block(self, block_id: str) -> bool:
        """Drop a cached block (models executor loss for lineage tests)."""
        entry = self._blocks.pop(block_id, None)
        if entry is None:
            return False
        self.cached_bytes -= entry[1]
        return True

    def _evict_until(self, needed: int, exclude: str) -> None:
        while self.available < needed and self._blocks:
            victim = next((bid for bid in self._blocks if bid != exclude), None)
            if victim is None:
                return
            _, nbytes = self._blocks.pop(victim)
            self.cached_bytes -= nbytes
            self.evictions += 1

    @property
    def block_ids(self) -> list[str]:
        return list(self._blocks)

    # -- transient charges (shuffle buckets, sorts): the OOM path --------------

    def charge(self, nbytes: int, purpose: str = "shuffle") -> None:
        """Reserve un-evictable heap; raises OutOfMemoryError if impossible."""
        if nbytes < 0:
            raise ReproError(f"negative charge {nbytes}")
        self._evict_until(nbytes, exclude="")
        if nbytes > self.available:
            raise OutOfMemoryError(
                f"java.lang.OutOfMemoryError: {purpose} needs {nbytes} bytes, "
                f"only {self.available} free of {self.capacity}",
                required=nbytes,
                available=self.available,
            )
        self.transient_bytes += nbytes
        self._note_peak()

    def release(self, nbytes: int) -> None:
        if nbytes > self.transient_bytes:
            raise ReproError(
                f"releasing {nbytes} transient bytes but only "
                f"{self.transient_bytes} charged"
            )
        self.transient_bytes -= nbytes

"""DAG analysis: split an RDD's lineage into stages at shuffle boundaries.

Spark's DAG scheduler pipelines narrow transformations into one stage and
cuts a new stage at every :class:`~repro.spark.rdd.ShuffleDependency`.
The paper's Section 4.4 refers to "Stage 0 of Spark" for Text Sort — the
load-and-create-RDD stage before the sort shuffle; this module lets the
tests and the performance models reason about that structure explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spark.rdd import RDD, ShuffleDependency


@dataclass
class Stage:
    """One pipelined stage: a set of RDDs ending at ``terminal``."""

    stage_id: int
    terminal: RDD
    rdd_names: list[str] = field(default_factory=list)
    parent_stage_ids: list[int] = field(default_factory=list)


def build_stages(rdd: RDD) -> list[Stage]:
    """Stages for the job ending at ``rdd``, in execution order.

    Stage ids follow execution order (Stage 0 runs first), matching how
    the Spark UI numbers them for a linear job.
    """
    stages: list[Stage] = []
    visited: dict[int, int] = {}  # terminal rdd id -> stage id

    def visit(terminal: RDD) -> int:
        if terminal.rdd_id in visited:
            return visited[terminal.rdd_id]
        parent_ids: list[int] = []
        names: list[str] = []
        frontier = [terminal]
        while frontier:
            current = frontier.pop()
            names.append(current.name)
            for dep in current.deps:
                if isinstance(dep, ShuffleDependency):
                    parent_ids.append(visit(dep.parent))
                else:
                    frontier.append(dep.parent)
        stage = Stage(
            stage_id=len(stages),
            terminal=terminal,
            rdd_names=list(reversed(names)),
            parent_stage_ids=sorted(parent_ids),
        )
        stages.append(stage)
        visited[terminal.rdd_id] = stage.stage_id
        return stage.stage_id

    visit(rdd)
    return stages


def num_stages(rdd: RDD) -> int:
    return len(build_stages(rdd))

"""Functional Spark 0.8 engine: RDDs, lineage, lazy transformations.

Baseline 2 of the paper.  The engine implements the RDD abstraction of
the Zaharia et al. NSDI'12 paper, which Section 2.2 summarizes: lazy
coarse-grained transformations, lineage-based recovery, in-memory
caching.  Narrow transformations chain iterators; wide transformations
(``reduce_by_key``, ``group_by_key``, ``sort_by_key``) materialize a
hash- or range-partitioned shuffle whose buckets are charged against the
executor :class:`~repro.spark.memory.MemoryManager` — the code path that
dies with OutOfMemoryError on the paper's Sort workloads.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ReproError
from repro.common.kv import record_size
from repro.common.rng import substream
from repro.datampi.partition import RangePartitioner, hash_partitioner
from repro.spark.memory import DEFAULT_JAVA_EXPANSION, MemoryManager, estimate_bytes


class SparkContext:
    """Driver context: entry point for creating RDDs.

    ``memory_capacity`` models one executor heap's storage+shuffle budget;
    keep it small in tests to exercise eviction and OOM behaviour.
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        memory_capacity: int = 512 * 1024 * 1024,
        java_expansion: float = DEFAULT_JAVA_EXPANSION,
    ):
        if default_parallelism < 1:
            raise ReproError("default_parallelism must be >= 1")
        self.default_parallelism = default_parallelism
        self.memory = MemoryManager(memory_capacity, java_expansion)
        self._next_rdd_id = itertools.count()
        #: Exact byte counters, mirroring the Hadoop engine's
        #: ``shuffle_bytes`` and DataMPI's ``o.bytes_sent``: every record
        #: entering a shuffle (post map-side combine) is charged at its
        #: :func:`~repro.common.kv.record_size`, so cross-engine bytes
        #: ratios compare the same serialized payloads.
        self.counters: dict[str, int] = {"shuffle_bytes": 0, "shuffles": 0}

    def new_rdd_id(self) -> int:
        return next(self._next_rdd_id)

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> "RDD":
        items = list(data)
        n = num_partitions or self.default_parallelism
        if n < 1:
            raise ReproError("num_partitions must be >= 1")
        slices = [items[i::n] for i in range(n)]
        return ParallelCollectionRDD(self, slices)

    def text_file(self, lines: Iterable[str], num_partitions: int | None = None) -> "RDD":
        """RDD of text lines (the moral equivalent of ``sc.textFile``)."""
        return self.parallelize(lines, num_partitions)


class Dependency:
    """Edge in the lineage graph."""

    def __init__(self, parent: "RDD"):
        self.parent = parent


class NarrowDependency(Dependency):
    """Each child partition depends on one parent partition."""


class ShuffleDependency(Dependency):
    """Each child partition depends on all parent partitions."""


class RDD:
    """An immutable, lazily evaluated, partitioned collection."""

    def __init__(self, ctx: SparkContext, num_partitions: int, deps: list[Dependency],
                 name: str = "rdd"):
        self.ctx = ctx
        self.rdd_id = ctx.new_rdd_id()
        self.num_partitions = num_partitions
        self.deps = deps
        self.name = name
        self._cached = False

    # -- to be overridden -------------------------------------------------------

    def compute(self, index: int) -> Iterator[Any]:
        raise NotImplementedError

    # -- caching / iteration ------------------------------------------------------

    def cache(self) -> "RDD":
        """Mark for in-memory caching on first computation."""
        self._cached = True
        return self

    def unpersist(self) -> "RDD":
        self._cached = False
        for index in range(self.num_partitions):
            self.ctx.memory.drop_block(self._block_id(index))
        return self

    def _block_id(self, index: int) -> str:
        return f"rdd_{self.rdd_id}_{index}"

    def iterator(self, index: int) -> Iterator[Any]:
        """Partition iterator honouring the cache (and repopulating it)."""
        if self._cached:
            block = self.ctx.memory.get_block(self._block_id(index))
            if block is not None:
                return iter(block)
            records = list(self.compute(index))
            self.ctx.memory.store_block(self._block_id(index), records)
            return iter(records)
        return self.compute(index)

    # -- narrow transformations ---------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MappedRDD(self, lambda it: map(fn, it), f"{self.name}.map")

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MappedRDD(
            self, lambda it: itertools.chain.from_iterable(map(fn, it)),
            f"{self.name}.flatMap",
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return MappedRDD(self, lambda it: filter(predicate, it), f"{self.name}.filter")

    def map_partitions(self, fn: Callable[[Iterator[Any]], Iterable[Any]]) -> "RDD":
        return MappedRDD(self, fn, f"{self.name}.mapPartitions")

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return MappedRDD(
            self, lambda it: ((key, fn(value)) for key, value in it),
            f"{self.name}.mapValues",
        )

    def keys(self) -> "RDD":
        return MappedRDD(self, lambda it: (key for key, _ in it), f"{self.name}.keys")

    def values(self) -> "RDD":
        return MappedRDD(self, lambda it: (value for _, value in it), f"{self.name}.values")

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"sample fraction must be in [0,1], got {fraction}")

        def sampler(split_iter: Iterator[Any]) -> Iterator[Any]:
            rng = substream(seed, "sample", self.rdd_id)
            return (item for item in split_iter if rng.random() < fraction)

        return MappedRDD(self, sampler, f"{self.name}.sample")

    # -- wide transformations -------------------------------------------------------

    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      num_partitions: int | None = None) -> "RDD":
        """Combine values per key (map-side combine, then shuffle)."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions,
            combine=fn, name=f"{self.name}.reduceByKey",
        )

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        return ShuffledRDD(
            self, num_partitions or self.num_partitions,
            combine=None, name=f"{self.name}.groupByKey",
        )

    def sort_by_key(self, num_partitions: int | None = None, sample_size: int = 1000) -> "RDD":
        """Range-partition by key and sort each partition (TeraSort-style)."""
        n = num_partitions or self.num_partitions
        sample = self._sample_keys(sample_size)
        partitioner = RangePartitioner(sample, n) if sample else None
        return ShuffledRDD(
            self, n, combine=None, partitioner=partitioner, sort=True,
            name=f"{self.name}.sortByKey",
        )

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        deduped = ShuffledRDD(
            self.map(lambda item: (item, None)),
            num_partitions or self.num_partitions,
            combine=lambda a, b: a, name=f"{self.name}.distinct",
        )
        return deduped.keys()

    def _sample_keys(self, sample_size: int) -> list[Any]:
        """Sample keys for the range partitioner (driver-side pass)."""
        sample: list[Any] = []
        per_partition = max(1, sample_size // max(1, self.num_partitions))
        for index in range(self.num_partitions):
            for key, _value in itertools.islice(self.iterator(index), per_partition):
                sample.append(key)
        return sample

    # -- actions ------------------------------------------------------------------

    def collect(self) -> list[Any]:
        return [item for index in range(self.num_partitions) for item in self.iterator(index)]

    def count(self) -> int:
        return sum(1 for index in range(self.num_partitions) for _ in self.iterator(index))

    def take(self, n: int) -> list[Any]:
        taken: list[Any] = []
        for index in range(self.num_partitions):
            for item in self.iterator(index):
                taken.append(item)
                if len(taken) == n:
                    return taken
        return taken

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        result = None
        first = True
        for index in range(self.num_partitions):
            for item in self.iterator(index):
                result = item if first else fn(result, item)
                first = False
        if first:
            raise ReproError("reduce on empty RDD")
        return result

    def count_by_key(self) -> dict[Any, int]:
        counts: dict[Any, int] = {}
        for key, _value in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- lineage ------------------------------------------------------------------

    def lineage(self) -> list[str]:
        """Names of this RDD's ancestry (debug-string equivalent)."""
        names = [self.name]
        for dep in self.deps:
            names.extend(dep.parent.lineage())
        return names


class ParallelCollectionRDD(RDD):
    """Leaf RDD over driver-provided data."""

    def __init__(self, ctx: SparkContext, slices: list[list[Any]]):
        super().__init__(ctx, len(slices), [], "parallelize")
        self._slices = slices

    def compute(self, index: int) -> Iterator[Any]:
        return iter(self._slices[index])


class MappedRDD(RDD):
    """Narrow transformation applying an iterator function per partition."""

    def __init__(self, parent: RDD, fn: Callable[[Iterator[Any]], Iterable[Any]], name: str):
        super().__init__(parent.ctx, parent.num_partitions, [NarrowDependency(parent)], name)
        self._parent = parent
        self._fn = fn

    def compute(self, index: int) -> Iterator[Any]:
        return iter(self._fn(self._parent.iterator(index)))


class UnionRDD(RDD):
    """Concatenation of two RDDs' partitions (narrow)."""

    def __init__(self, left: RDD, right: RDD):
        super().__init__(
            left.ctx, left.num_partitions + right.num_partitions,
            [NarrowDependency(left), NarrowDependency(right)], "union",
        )
        self._left = left
        self._right = right

    def compute(self, index: int) -> Iterator[Any]:
        if index < self._left.num_partitions:
            return self._left.iterator(index)
        return self._right.iterator(index - self._left.num_partitions)


class ShuffledRDD(RDD):
    """Wide transformation: hash/range partitioned shuffle.

    The shuffle materializes every output bucket in executor memory
    (charged against the :class:`MemoryManager`) the first time any output
    partition is computed — Spark 0.8's all-at-once shuffle write.  This
    is the OutOfMemoryError code path.
    """

    def __init__(self, parent: RDD, num_partitions: int, *,
                 combine: Callable[[Any, Any], Any] | None,
                 partitioner=None, sort: bool = False, name: str = "shuffle"):
        super().__init__(parent.ctx, num_partitions, [ShuffleDependency(parent)], name)
        self._parent = parent
        self._combine = combine
        self._partitioner = partitioner or hash_partitioner
        self._sort = sort
        self._buckets: list[list[tuple[Any, Any]]] | None = None
        self._charged = 0

    def _materialize(self) -> list[list[tuple[Any, Any]]]:
        if self._buckets is not None:
            return self._buckets
        buckets: list[dict[Any, Any]] | list[list[tuple[Any, Any]]]
        if self._combine is not None:
            tables: list[dict[Any, Any]] = [{} for _ in range(self.num_partitions)]
            for index in range(self._parent.num_partitions):
                for key, value in self._parent.iterator(index):
                    table = tables[self._partitioner(key, self.num_partitions)]
                    if key in table:
                        table[key] = self._combine(table[key], value)
                    else:
                        table[key] = value
            self._buckets = [list(table.items()) for table in tables]
        else:
            lists: list[list[tuple[Any, Any]]] = [[] for _ in range(self.num_partitions)]
            for index in range(self._parent.num_partitions):
                for key, value in self._parent.iterator(index):
                    lists[self._partitioner(key, self.num_partitions)].append((key, value))
            self._buckets = lists
        # Charge the whole shuffle footprint (un-evictable): the OOM path.
        self._charged = sum(
            estimate_bytes(bucket, self.ctx.memory.java_expansion)
            for bucket in self._buckets
        )
        self.ctx.memory.charge(self._charged, purpose=f"{self.name} shuffle")
        self.ctx.counters["shuffle_bytes"] += sum(
            record_size(key, value)
            for bucket in self._buckets for key, value in bucket
        )
        self.ctx.counters["shuffles"] += 1
        return self._buckets

    def free_shuffle(self) -> None:
        """Release materialized shuffle buckets (e.g. after an action)."""
        if self._buckets is not None:
            self.ctx.memory.release(self._charged)
            self._buckets = None
            self._charged = 0

    def compute(self, index: int) -> Iterator[Any]:
        bucket = self._materialize()[index]
        if self._sort:
            return iter(sorted(bucket, key=lambda kv: kv[0]))
        if self._combine is not None:
            return iter(bucket)
        # group_by_key semantics: (key, [values])
        groups: dict[Any, list[Any]] = {}
        for key, value in bucket:
            groups.setdefault(key, []).append(value)
        return iter(list(groups.items()))

"""Functional Spark 0.8 engine: RDDs, lineage, memory manager, stages."""

from repro.spark.memory import DEFAULT_JAVA_EXPANSION, MemoryManager, estimate_bytes
from repro.spark.rdd import (
    Dependency,
    MappedRDD,
    NarrowDependency,
    ParallelCollectionRDD,
    RDD,
    ShuffleDependency,
    ShuffledRDD,
    SparkContext,
    UnionRDD,
)
from repro.spark.scheduler import Stage, build_stages, num_stages

__all__ = [
    "DEFAULT_JAVA_EXPANSION",
    "MemoryManager",
    "estimate_bytes",
    "Dependency",
    "MappedRDD",
    "NarrowDependency",
    "ParallelCollectionRDD",
    "RDD",
    "ShuffleDependency",
    "ShuffledRDD",
    "SparkContext",
    "UnionRDD",
    "Stage",
    "build_stages",
    "num_stages",
]

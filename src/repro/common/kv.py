"""Key-value records — the unit of data in every engine in this library.

DataMPI's central idea (Section 2.3 of the paper) is that Big Data
communication is key-value based rather than buffer based.  All three
engines in this reproduction (Hadoop, Spark, DataMPI) exchange
:class:`KeyValue` records, and the serialization here defines the byte
sizes the performance models charge to disks and networks.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable, Iterator, NamedTuple


class KeyValue(NamedTuple):
    """An immutable key-value record."""

    key: Any
    value: Any

    def serialized_size(self) -> int:
        """Best-effort size in bytes of the encoded record."""
        return record_size(self.key, self.value)


def _field_size(obj: Any) -> int:
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, memoryview):
        # The FMT_BATCH zero-copy path hands out read-only views over
        # shared buffers; sizing them by repr() (the opaque-object
        # fallback) under-counted every byte budget they passed through.
        return obj.nbytes
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if obj is None:
        return 0
    if isinstance(obj, (list, tuple)):
        return sum(_field_size(item) for item in obj) + 4
    if isinstance(obj, dict):
        return sum(_field_size(k) + _field_size(v) for k, v in obj.items()) + 4
    # Fall back to the repr; good enough for cost accounting of rare types.
    return len(repr(obj))


def record_size(key: Any, value: Any) -> int:
    """Size in bytes of one encoded record (4-byte length prefix per field)."""
    return 8 + _field_size(key) + _field_size(value)


_LEN = struct.Struct(">II")


_ITEM_LEN = struct.Struct(">I")


def _encode_items(items: Iterable[Any]) -> bytes:
    out = bytearray()
    for item in items:
        encoded = _encode_field(item)
        out += _ITEM_LEN.pack(len(encoded))
        out += encoded
    return bytes(out)


def _decode_items(payload: bytes | memoryview) -> list[Any]:
    items: list[Any] = []
    offset = 0
    while offset < len(payload):
        (length,) = _ITEM_LEN.unpack_from(payload, offset)
        offset += _ITEM_LEN.size
        items.append(_decode_field(payload[offset:offset + length]))
        offset += length
    return items


def _encode_field(obj: Any) -> bytes:
    if isinstance(obj, bytes):
        return b"B" + obj
    if isinstance(obj, str):
        return b"S" + obj.encode("utf-8")
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"I" + str(obj).encode("ascii")
    if isinstance(obj, float):
        return b"D" + struct.pack(">d", obj)
    if obj is None:
        return b"N"
    if isinstance(obj, tuple):
        return b"U" + _encode_items(obj)
    if isinstance(obj, list):
        return b"L" + _encode_items(obj)
    if isinstance(obj, dict):
        return b"M" + _encode_items(
            item for pair in obj.items() for item in pair
        )
    raise TypeError(f"cannot encode field of type {type(obj).__name__}")


# Field tag markers as ints: indexing bytes *or* a memoryview yields an
# int, so one dispatch serves both the copying and the zero-copy path.
_T_BYTES, _T_STR, _T_TRUE, _T_FALSE = ord("B"), ord("S"), ord("T"), ord("F")
_T_INT, _T_FLOAT, _T_NONE = ord("I"), ord("D"), ord("N")
_T_TUPLE, _T_LIST, _T_DICT = ord("U"), ord("L"), ord("M")


def _decode_field(data: bytes | memoryview) -> Any:
    """Decode one encoded field from ``bytes`` or a ``memoryview``.

    Memoryview input decodes in place: container fields recurse over
    zero-copy slices, and only leaf values materialise new objects.
    """
    if not len(data):
        raise ValueError("unknown field tag b''")
    tag, payload = data[0], data[1:]
    if tag == _T_BYTES:
        return payload if isinstance(payload, bytes) else bytes(payload)
    if tag == _T_STR:
        return str(payload, "utf-8")
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return int(payload if isinstance(payload, bytes) else bytes(payload))
    if tag == _T_FLOAT:
        return struct.unpack(">d", payload)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TUPLE:
        return tuple(_decode_items(payload))
    if tag == _T_LIST:
        return _decode_items(payload)
    if tag == _T_DICT:
        flat = _decode_items(payload)
        return dict(zip(flat[0::2], flat[1::2]))
    raise ValueError(f"unknown field tag {bytes(data[:1])!r}")


def encode_record(key: Any, value: Any) -> bytes:
    """Encode one record to bytes (length-prefixed key and value fields)."""
    key_bytes = _encode_field(key)
    value_bytes = _encode_field(value)
    return _LEN.pack(len(key_bytes), len(value_bytes)) + key_bytes + value_bytes


def decode_record(data: bytes | memoryview,
                  offset: int = 0) -> tuple[KeyValue, int]:
    """Decode one record at ``offset``; returns ``(record, next_offset)``.

    ``data`` may be ``bytes`` or a ``memoryview``; with a view the field
    payloads are sliced without copying (the transport's zero-copy read
    path decodes records straight out of a shared batch buffer).
    """
    key_len, value_len = _LEN.unpack_from(data, offset)
    start = offset + _LEN.size
    key = _decode_field(data[start:start + key_len])
    value = _decode_field(data[start + key_len:start + key_len + value_len])
    return KeyValue(key, value), start + key_len + value_len


def encode_stream(records: Iterable[tuple[Any, Any]]) -> bytes:
    """Encode an iterable of ``(key, value)`` pairs into one byte string."""
    out = bytearray()
    for key, value in records:
        key_bytes = _encode_field(key)
        value_bytes = _encode_field(value)
        out += _LEN.pack(len(key_bytes), len(value_bytes))
        out += key_bytes
        out += value_bytes
    return bytes(out)


def decode_stream(data: bytes | memoryview) -> Iterator[KeyValue]:
    """Decode all records from :func:`encode_stream` output (``bytes`` or
    ``memoryview`` — views decode in place)."""
    offset = 0
    while offset < len(data):
        record, offset = decode_record(data, offset)
        yield record

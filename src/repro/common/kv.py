"""Key-value records — the unit of data in every engine in this library.

DataMPI's central idea (Section 2.3 of the paper) is that Big Data
communication is key-value based rather than buffer based.  All three
engines in this reproduction (Hadoop, Spark, DataMPI) exchange
:class:`KeyValue` records, and the serialization here defines the byte
sizes the performance models charge to disks and networks.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable, Iterator, NamedTuple


class KeyValue(NamedTuple):
    """An immutable key-value record."""

    key: Any
    value: Any

    def serialized_size(self) -> int:
        """Best-effort size in bytes of the encoded record."""
        return record_size(self.key, self.value)


def _field_size(obj: Any) -> int:
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if obj is None:
        return 0
    if isinstance(obj, (list, tuple)):
        return sum(_field_size(item) for item in obj) + 4
    if isinstance(obj, dict):
        return sum(_field_size(k) + _field_size(v) for k, v in obj.items()) + 4
    # Fall back to the repr; good enough for cost accounting of rare types.
    return len(repr(obj))


def record_size(key: Any, value: Any) -> int:
    """Size in bytes of one encoded record (4-byte length prefix per field)."""
    return 8 + _field_size(key) + _field_size(value)


_LEN = struct.Struct(">II")


_ITEM_LEN = struct.Struct(">I")


def _encode_items(items) -> bytes:
    parts = []
    for item in items:
        encoded = _encode_field(item)
        parts.append(_ITEM_LEN.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def _decode_items(payload: bytes) -> list:
    items = []
    offset = 0
    while offset < len(payload):
        (length,) = _ITEM_LEN.unpack_from(payload, offset)
        offset += _ITEM_LEN.size
        items.append(_decode_field(payload[offset:offset + length]))
        offset += length
    return items


def _encode_field(obj: Any) -> bytes:
    if isinstance(obj, bytes):
        return b"B" + obj
    if isinstance(obj, str):
        return b"S" + obj.encode("utf-8")
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"I" + str(obj).encode("ascii")
    if isinstance(obj, float):
        return b"D" + struct.pack(">d", obj)
    if obj is None:
        return b"N"
    if isinstance(obj, tuple):
        return b"U" + _encode_items(obj)
    if isinstance(obj, list):
        return b"L" + _encode_items(obj)
    if isinstance(obj, dict):
        return b"M" + _encode_items(
            item for pair in obj.items() for item in pair
        )
    raise TypeError(f"cannot encode field of type {type(obj).__name__}")


def _decode_field(data: bytes) -> Any:
    tag, payload = data[:1], data[1:]
    if tag == b"B":
        return payload
    if tag == b"S":
        return payload.decode("utf-8")
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return int(payload)
    if tag == b"D":
        return struct.unpack(">d", payload)[0]
    if tag == b"N":
        return None
    if tag == b"U":
        return tuple(_decode_items(payload))
    if tag == b"L":
        return _decode_items(payload)
    if tag == b"M":
        flat = _decode_items(payload)
        return dict(zip(flat[0::2], flat[1::2]))
    raise ValueError(f"unknown field tag {tag!r}")


def encode_record(key: Any, value: Any) -> bytes:
    """Encode one record to bytes (length-prefixed key and value fields)."""
    key_bytes = _encode_field(key)
    value_bytes = _encode_field(value)
    return _LEN.pack(len(key_bytes), len(value_bytes)) + key_bytes + value_bytes


def decode_record(data: bytes, offset: int = 0) -> tuple[KeyValue, int]:
    """Decode one record at ``offset``; returns ``(record, next_offset)``."""
    key_len, value_len = _LEN.unpack_from(data, offset)
    start = offset + _LEN.size
    key = _decode_field(data[start:start + key_len])
    value = _decode_field(data[start + key_len:start + key_len + value_len])
    return KeyValue(key, value), start + key_len + value_len


def encode_stream(records: Iterable[tuple[Any, Any]]) -> bytes:
    """Encode an iterable of ``(key, value)`` pairs into one byte string."""
    return b"".join(encode_record(key, value) for key, value in records)


def decode_stream(data: bytes) -> Iterator[KeyValue]:
    """Decode all records from a byte string produced by :func:`encode_stream`."""
    offset = 0
    while offset < len(data):
        record, offset = decode_record(data, offset)
        yield record

"""Exception hierarchy for the DataMPI reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
``OutOfMemoryError`` deliberately mirrors the JVM failure mode the paper
observes for Spark on the Sort workloads (Section 4.3).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """Invalid cluster, framework, or workload configuration."""


class SimulationError(ReproError):
    """Internal inconsistency detected by the discrete-event engine."""


class HDFSError(ReproError):
    """Filesystem-level failure (missing file, no space, bad block size)."""


class MPIError(ReproError):
    """Failure in the in-process message-passing substrate."""


class DataMPIError(ReproError):
    """Failure in the DataMPI key-value communication library."""


class CommunicatorError(DataMPIError):
    """Misuse of the bipartite O/A communicator (wrong side, closed, ...)."""


class CheckpointError(DataMPIError):
    """Key-value checkpoint could not be written or restored."""


class JobError(ReproError):
    """A framework job (Hadoop / Spark / DataMPI) failed to complete."""


class OutOfMemoryError(JobError):
    """Worker heap exhausted.

    Mirrors the ``java.lang.OutOfMemoryError`` the paper reports for Spark
    0.8.1 on Normal Sort (all sizes) and Text Sort above 8 GB.
    """

    def __init__(self, message: str, *, required: int = 0,
                 available: int = 0) -> None:
        super().__init__(message)
        self.required = required
        self.available = available


class WorkloadError(ReproError):
    """A workload was given input it cannot process."""

"""Byte-size and rate units used throughout the reproduction.

The paper quotes data sizes in binary units (a "256MB" HDFS block is
256 * 2**20 bytes) and throughput in MB/sec.  Keeping all internal byte
counts as plain integers and all rates as floats in bytes/second avoids
unit confusion; this module provides the named constants and the
parsing/formatting helpers used at the API boundary.
"""

from __future__ import annotations

import re

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

_UNIT_FACTORS = {
    "b": 1,
    "kb": KB,
    "k": KB,
    "mb": MB,
    "m": MB,
    "gb": GB,
    "g": GB,
    "tb": TB,
    "t": TB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"8GB"`` or ``"256 MB"`` to bytes.

    Integers and floats pass through (interpreted as bytes).  Raises
    ``ValueError`` for unparseable input or unknown units.

    >>> parse_size("256MB")
    268435456
    >>> parse_size(1024)
    1024
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text!r}")
        return int(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = match.groups()
    unit = unit.lower() or "b"
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return int(float(value) * _UNIT_FACTORS[unit])


def format_size(num_bytes: int | float) -> str:
    """Format a byte count using the largest unit that keeps value >= 1.

    >>> format_size(268435456)
    '256.0MB'
    """
    num = float(num_bytes)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(num) >= factor:
            return f"{num / factor:.1f}{unit}"
    return f"{num:.0f}B"


def mb_per_sec(rate_bytes_per_sec: float) -> float:
    """Convert a rate in bytes/second to MB/second (for reporting)."""
    return rate_bytes_per_sec / MB

"""Shared primitives: units, errors, key-value records, config, RNG streams."""

from repro.common.config import FrameworkConf, RunResult
from repro.common.errors import (
    CheckpointError,
    CommunicatorError,
    ConfigError,
    DataMPIError,
    HDFSError,
    JobError,
    MPIError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.common.kv import (
    KeyValue,
    decode_record,
    decode_stream,
    encode_record,
    encode_stream,
    record_size,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, substream
from repro.common.units import GB, KB, MB, TB, format_size, mb_per_sec, parse_size

__all__ = [
    "FrameworkConf",
    "RunResult",
    "CheckpointError",
    "CommunicatorError",
    "ConfigError",
    "DataMPIError",
    "HDFSError",
    "JobError",
    "MPIError",
    "OutOfMemoryError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "KeyValue",
    "decode_record",
    "decode_stream",
    "encode_record",
    "encode_stream",
    "record_size",
    "DEFAULT_SEED",
    "derive_seed",
    "substream",
    "GB",
    "KB",
    "MB",
    "TB",
    "format_size",
    "mb_per_sec",
    "parse_size",
]

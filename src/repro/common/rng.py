"""Deterministic random-number streams.

Every stochastic component (data generators, simulated run-to-run jitter)
derives an independent ``random.Random`` stream from a root seed and a
string label, so results are reproducible regardless of module import
order or how many components draw random numbers.
"""

from __future__ import annotations

import hashlib
import random

DEFAULT_SEED = 20140401  # paper submission era; any fixed value works


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a label path.

    >>> derive_seed(1, "textgen", 0) != derive_seed(1, "textgen", 1)
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(root_seed).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def substream(root_seed: int, *labels: object) -> random.Random:
    """Return an independent ``random.Random`` for the given label path."""
    return random.Random(derive_seed(root_seed, *labels))

"""Configuration dataclasses shared by the engines and the simulator.

``FrameworkConf`` mirrors the parameters the paper tunes in Section 4.2:
HDFS block size (Figure 2a) and the number of concurrent tasks / workers
per node (Figure 2b), which the authors fix at 256 MB and 4 for the main
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MB, parse_size

DEFAULT_BLOCK_SIZE = 256 * MB
DEFAULT_REPLICATION = 3
DEFAULT_SLOTS_PER_NODE = 4


@dataclass(frozen=True)
class FrameworkConf:
    """Tunable framework parameters (Section 4.2 of the paper)."""

    block_size: int = DEFAULT_BLOCK_SIZE
    replication: int = DEFAULT_REPLICATION
    slots_per_node: int = DEFAULT_SLOTS_PER_NODE
    executions: int = 3  # "results are average across three executions"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"block_size must be positive, got {self.block_size}")
        if self.replication < 1:
            raise ConfigError(f"replication must be >= 1, got {self.replication}")
        if self.slots_per_node < 1:
            raise ConfigError(
                f"slots_per_node must be >= 1, got {self.slots_per_node}"
            )
        if self.executions < 1:
            raise ConfigError(f"executions must be >= 1, got {self.executions}")

    @classmethod
    def paper_defaults(cls) -> "FrameworkConf":
        """The configuration used for the paper's main evaluation."""
        return cls()

    def with_block_size(self, block_size: int | str) -> "FrameworkConf":
        """Copy of this configuration with a different HDFS block size."""
        return FrameworkConf(
            block_size=parse_size(block_size),
            replication=self.replication,
            slots_per_node=self.slots_per_node,
            executions=self.executions,
            seed=self.seed,
        )

    def with_slots(self, slots_per_node: int) -> "FrameworkConf":
        """Copy of this configuration with a different tasks/workers count."""
        return FrameworkConf(
            block_size=self.block_size,
            replication=self.replication,
            slots_per_node=slots_per_node,
            executions=self.executions,
            seed=self.seed,
        )


@dataclass
class RunResult:
    """Outcome of one framework job execution (simulated or functional)."""

    framework: str
    workload: str
    input_bytes: int
    elapsed_sec: float
    phases: dict[str, float] = field(default_factory=dict)
    failed: bool = False
    failure: str | None = None

    @property
    def succeeded(self) -> bool:
        return not self.failed

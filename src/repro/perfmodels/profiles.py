"""Workload data-flow profiles for the performance models.

A profile describes *what the data does* in a workload, independent of
the framework executing it: how much the input expands on decompression,
how much intermediate data the map/O side emits, and how much output the
job writes.  Framework-specific *costs* live in
:mod:`repro.perfmodels.calibration`.

Sources: Section 3.1 (workload definitions), Section 4.4 ("the word
dictionary of the input files is small and few intermediate data is
generated"; "most of K-means calculation happens in Map phase, and few
intermediate data is generated"), and the measured ToSeqFile gzip ratio
(see ``tests/test_bigdatabench.py::TestToSeqFile``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Data-volume characteristics of one workload."""

    name: str
    #: Expansion of input bytes when first read (gzip sequence input ~3.3x).
    decompress_ratio: float
    #: Intermediate (shuffled) bytes per *decompressed* input byte.
    shuffle_ratio: float
    #: Output bytes written to HDFS per *input* byte (before replication).
    output_ratio: float
    #: Per-record JVM object overhead for Spark's in-heap materialization.
    spark_java_expansion: float
    #: Extra reduce/A-side CPU per MB of intermediate data (GzipCodec
    #: output compression for Normal Sort: CPU-bound, hides under Hadoop's
    #: disk-bound reduce but extends DataMPI's pipelined A phase — why the
    #: paper's Normal Sort improvement is lower than Text Sort's).
    reduce_extra_cpu_per_mb: float = 0.0

    def __post_init__(self) -> None:
        if min(self.decompress_ratio, self.spark_java_expansion) <= 0:
            raise ConfigError(f"invalid ratios in profile {self.name!r}")
        if min(self.shuffle_ratio, self.output_ratio) < 0:
            raise ConfigError(f"negative ratios in profile {self.name!r}")

    def intermediate_bytes(self, input_bytes: int) -> float:
        return input_bytes * self.decompress_ratio * self.shuffle_ratio

    def output_bytes(self, input_bytes: int) -> float:
        return input_bytes * self.output_ratio


#: Measured with repro.bigdatabench.toseqfile on generated wiki text.
SEQFILE_GZIP_RATIO = 3.3

PROFILES = {
    "text_sort": WorkloadProfile(
        name="text_sort",
        decompress_ratio=1.0,
        shuffle_ratio=1.0,     # sort moves every byte
        output_ratio=1.0,
        spark_java_expansion=4.5,
    ),
    "normal_sort": WorkloadProfile(
        name="normal_sort",
        decompress_ratio=SEQFILE_GZIP_RATIO,
        shuffle_ratio=1.0,
        output_ratio=1.0,      # output re-compressed with GzipCodec
        spark_java_expansion=5.5,  # sequence records carry heavier objects
        reduce_extra_cpu_per_mb=0.08,
    ),
    "wordcount": WorkloadProfile(
        name="wordcount",
        decompress_ratio=1.0,
        shuffle_ratio=0.002,   # combiner leaves ~dictionary-sized partials
        output_ratio=0.001,
        spark_java_expansion=4.0,
    ),
    "grep": WorkloadProfile(
        name="grep",
        decompress_ratio=1.0,
        shuffle_ratio=0.0008,
        output_ratio=0.0005,
        spark_java_expansion=4.0,
    ),
    "kmeans": WorkloadProfile(
        name="kmeans",
        decompress_ratio=1.0,
        shuffle_ratio=0.00008,  # k partial centroid sums per task
        output_ratio=0.00005,
        spark_java_expansion=4.0,
    ),
    "naive_bayes": WorkloadProfile(
        name="naive_bayes",
        decompress_ratio=1.0,
        shuffle_ratio=0.003,
        output_ratio=0.002,
        spark_java_expansion=4.0,
    ),
}


def get_profile(workload: str) -> WorkloadProfile:
    if workload not in PROFILES:
        raise ConfigError(
            f"unknown workload {workload!r}; available: {sorted(PROFILES)}"
        )
    return PROFILES[workload]


#: The Naive Bayes pipeline: Mahout runs several MapReduce jobs (Section
#: 4.6: term counting, document frequency, sparse-vector creation, then
#: two training jobs that "cost less time ... for the simple calculating
#: and small input data size").  Each entry is
#: ``(job name, fraction of the original input read, CPU scale)``.
NAIVE_BAYES_PIPELINE = [
    ("term-frequency", 1.0, 1.0),
    ("document-frequency", 1.0, 0.55),
    ("sparse-vectors", 0.2, 0.25),
    ("train-summing", 0.05, 0.15),
    ("train-weights", 0.04, 0.15),
]

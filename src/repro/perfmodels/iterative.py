"""Iterative K-means: the paper's deferred Spark-vs-DataMPI comparison.

Section 4.6: "Our tests show Spark have outstanding performance when
doing the iteration computations after caching the data in the RDDs.
For fair comparison with Hadoop, we record the execution time of the
first iteration ... In the future, we will give a detail performance
comparison between Spark and DataMPI in the iterative applications."

This module builds that future comparison on the simulated testbed:

* **Hadoop** launches a full MapReduce job per iteration and re-reads the
  input from HDFS every time;
* **Spark** pays the first iteration's load + cache cost, then iterates
  over the in-memory RDD (no HDFS read, no job startup);
* **DataMPI** keeps its processes alive across iterations (no startup)
  but, like Mahout, re-reads the vectors from HDFS each iteration in the
  paper's design.

The expected crossover — DataMPI wins iteration 1, Spark wins from some
iteration k onward — is asserted by ``benchmarks/test_iterative_kmeans``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError, WorkloadError
from repro.common.units import MB
from repro.perfmodels.calibration import get_calibration
from repro.perfmodels.runner import simulate_once

#: Spark's per-iteration cost on cached data: scan the deserialized RDD
#: and reduce k partial centroids — no disk, no deserialization.
SPARK_CACHED_ITERATION_CPU_FRACTION = 0.45

#: DataMPI re-reads input per iteration but skips job setup entirely and
#: keeps a small warm-iteration discount (centroid broadcast is free).
DATAMPI_WARM_ITERATION_FRACTION = 0.80


@dataclass(frozen=True)
class IterativeResult:
    """Cumulative K-means times over successive iterations."""

    input_bytes: int
    iterations: int
    cumulative: dict[str, list[float]]  # framework -> cumulative seconds

    def crossover_iteration(self, left: str, right: str) -> int | None:
        """First iteration (1-based) at which ``right`` is cumulatively
        faster than ``left``; None if it never happens."""
        for index in range(self.iterations):
            if self.cumulative[right][index] < self.cumulative[left][index]:
                return index + 1
        return None


def iterative_kmeans(input_bytes: int, iterations: int = 10,
                     seed: int = 0) -> IterativeResult:
    """Cumulative training time over K-means iterations, per framework."""
    if iterations < 1:
        raise ConfigError(f"iterations must be >= 1, got {iterations}")

    first = {
        framework: simulate_once(framework, "kmeans", input_bytes, seed=seed)
        for framework in ("hadoop", "spark", "datampi")
    }
    for framework, outcome in first.items():
        if outcome.result.failed:
            raise WorkloadError(f"{framework} failed the first iteration")

    cumulative: dict[str, list[float]] = {}

    # Hadoop: every iteration is a full job (Mahout's structure).
    per_iter = first["hadoop"].result.elapsed_sec
    cumulative["hadoop"] = [per_iter * (i + 1) for i in range(iterations)]

    # Spark: first iteration includes load+cache; later ones scan memory.
    spark_first = first["spark"].result.elapsed_sec
    spark_cal = get_calibration("spark")
    stage_cpu = spark_cal.map_cost("kmeans").cpu_per_mb * (input_bytes / MB)
    cluster_cores = 8 * 16  # testbed: 8 nodes x 16 hardware threads
    warm = (
        SPARK_CACHED_ITERATION_CPU_FRACTION * stage_cpu / (cluster_cores / 2)
        + 2 * spark_cal.sched_round_sec
    )
    cumulative["spark"] = [
        spark_first + warm * i for i in range(iterations)
    ]

    # DataMPI: warm iterations skip startup but re-read from HDFS.
    datampi_first = first["datampi"].result.elapsed_sec
    datampi_cal = get_calibration("datampi")
    datampi_warm = DATAMPI_WARM_ITERATION_FRACTION * (
        datampi_first - datampi_cal.job_setup_sec - datampi_cal.job_cleanup_sec
    )
    cumulative["datampi"] = [
        datampi_first + datampi_warm * i for i in range(iterations)
    ]

    return IterativeResult(
        input_bytes=input_bytes,
        iterations=iterations,
        cumulative=cumulative,
    )

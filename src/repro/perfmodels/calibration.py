"""Calibrated framework cost constants for the timeline models.

Every constant here is an explicit degree of freedom of the reproduction.
They were tuned (see ``tests/test_perfmodels_calibration.py``) so the
simulated testbed lands on the numbers the paper *states* — e.g. 8 GB
Text Sort at 117/114/69 s with O phase 28 s, Map phase 36 s, Stage 0
38 s; 32 GB WordCount at 275/130/130 s; the resource-utilization averages
of Section 4.4 — while everything else (other sizes, contention, time
series) *emerges* from the discrete-event simulation.

Units: ``cpu_per_mb`` is CPU core-seconds consumed per MB of data a task
processes (per decompressed MB on the read path); ``threads`` is the
task's concurrency cap in hardware threads (JVM tasks run GC and
framework threads beside user code, so Hadoop's effective parallelism
per task exceeds 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GB, MB


@dataclass(frozen=True)
class TaskCost:
    """CPU cost of one task type for one workload."""

    cpu_per_mb: float
    threads: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_per_mb < 0 or self.threads <= 0:
            raise ConfigError(f"invalid task cost {self}")


@dataclass(frozen=True)
class FrameworkCal:
    """Timeline constants of one framework."""

    name: str
    #: Job submit -> first task can launch (master-side setup).
    job_setup_sec: float
    #: Job teardown / output commit.
    job_cleanup_sec: float
    #: Scheduling latency per task wave (heartbeat round in Hadoop).
    sched_round_sec: float
    #: Per-task launch cost (JVM spawn / process fork).
    task_launch_sec: float
    #: Resident framework memory per node (daemons).
    base_memory: int
    #: Heap charged per running task.
    task_heap: int
    #: Map/O-side task costs per workload.
    map_costs: dict[str, TaskCost] = field(default_factory=dict)
    #: Fraction of task_heap actually resident, per workload (JVM heaps only
    #: grow to what the workload touches; calibrated to the Figure 4 memory
    #: footprints).
    heap_factors: dict[str, float] = field(default_factory=dict)
    #: Reduce/A-side CPU per MB of intermediate data.
    reduce_cpu_per_mb: float = 0.02
    #: Extra intermediate disk passes (spill merge re-read/re-write).
    spill_passes: float = 0.0
    #: System CPU charged per MB of disk/network I/O a task performs
    #: (serialization, checksums, JVM/GC, softirq) — this is most of the
    #: "CPU utilization" dstat reports for I/O-heavy phases.
    sys_cpu_per_mb: float = 0.05
    #: Scale applied to the blocked-task gauge when reporting dstat-style
    #: wait-I/O: pipelined frameworks block less per outstanding request.
    iowait_scale: float = 1.0

    def map_cost(self, workload: str) -> TaskCost:
        if workload not in self.map_costs:
            raise ConfigError(
                f"{self.name} has no calibration for workload {workload!r}"
            )
        return self.map_costs[workload]

    def heap_factor(self, workload: str) -> float:
        return self.heap_factors.get(workload, 1.0)


HADOOP_CAL = FrameworkCal(
    name="hadoop",
    job_setup_sec=5.5,
    job_cleanup_sec=3.0,
    sched_round_sec=3.0,
    task_launch_sec=1.2,
    base_memory=int(1.2 * GB),
    task_heap=int(2.0 * GB),
    map_costs={
        "text_sort": TaskCost(0.095, 1.0),
        "normal_sort": TaskCost(0.115, 1.0),  # per decompressed MB (adds gunzip)
        "wordcount": TaskCost(0.86, 3.6),
        "grep": TaskCost(0.072, 1.0),
        "kmeans": TaskCost(0.185, 1.0),
        "naive_bayes": TaskCost(0.82, 3.0),
    },
    heap_factors={
        "text_sort": 0.45, "normal_sort": 0.45, "wordcount": 0.97,
        "grep": 0.5, "kmeans": 0.8, "naive_bayes": 0.9,
    },
    reduce_cpu_per_mb=0.025,
    spill_passes=1.0,  # one extra merge pass over map output
    sys_cpu_per_mb=0.075,
    iowait_scale=2.1,
)

SPARK_CAL = FrameworkCal(
    name="spark",
    job_setup_sec=3.5,
    job_cleanup_sec=1.5,
    sched_round_sec=0.5,
    task_launch_sec=0.3,
    base_memory=int(1.5 * GB),
    task_heap=int(1.6 * GB),
    map_costs={
        "text_sort": TaskCost(0.12, 1.0),
        "normal_sort": TaskCost(0.12, 1.0),
        "wordcount": TaskCost(0.15, 1.2),
        "grep": TaskCost(0.075, 1.0),
        "kmeans": TaskCost(0.175, 1.0),  # first iteration: deserialize + cache
        "naive_bayes": TaskCost(0.28, 1.8),
    },
    heap_factors={
        "text_sort": 0.47, "normal_sort": 0.47, "wordcount": 0.55,
        "grep": 0.4, "kmeans": 0.9, "naive_bayes": 0.5,
    },
    reduce_cpu_per_mb=0.02,
    spill_passes=0.0,
    sys_cpu_per_mb=0.05,
    iowait_scale=1.4,
)

DATAMPI_CAL = FrameworkCal(
    name="datampi",
    job_setup_sec=1.5,
    job_cleanup_sec=0.8,
    sched_round_sec=0.3,
    task_launch_sec=0.2,
    base_memory=int(0.9 * GB),
    task_heap=int(1.0 * GB),
    map_costs={
        "text_sort": TaskCost(0.10, 1.0),
        "normal_sort": TaskCost(0.115, 1.0),
        "wordcount": TaskCost(0.27, 2.0),
        "grep": TaskCost(0.062, 1.0),
        "kmeans": TaskCost(0.14, 1.0),
        "naive_bayes": TaskCost(0.46, 2.0),
    },
    heap_factors={
        "text_sort": 1.0, "normal_sort": 1.0, "wordcount": 1.0,
        "grep": 0.5, "kmeans": 0.8, "naive_bayes": 0.9,
    },
    reduce_cpu_per_mb=0.015,
    spill_passes=0.0,  # intermediate data buffered in memory (Section 2.3)
    sys_cpu_per_mb=0.04,
    iowait_scale=0.7,
)

CALIBRATIONS = {
    "hadoop": HADOOP_CAL,
    "spark": SPARK_CAL,
    "datampi": DATAMPI_CAL,
}


def get_calibration(framework: str) -> FrameworkCal:
    if framework not in CALIBRATIONS:
        raise ConfigError(
            f"unknown framework {framework!r}; available: {sorted(CALIBRATIONS)}"
        )
    return CALIBRATIONS[framework]


# -- Spark executor memory model (the OOM gate, Section 4.3) -----------------

#: Executors per node ("4 concurrent tasks / workers per node").
SPARK_WORKERS_PER_NODE = 4
#: Heap per worker: "we allocate the memory to each worker as large as
#: possible" — 16 GB minus OS/daemons over four workers.
SPARK_WORKER_HEAP = int(3.5 * GB)
#: Fraction of the heap usable for shuffle/sort materialization
#: (storage + shuffle fractions of Spark 0.8).
SPARK_USABLE_FRACTION = 0.60

#: dstat wait-I/O percentage contributed by one disk-blocked task.
IOWAIT_PCT_PER_BLOCKED_TASK = 2.0

#: DataMPI in-memory intermediate buffer budget per node; beyond this,
#: intermediate data goes to disk ("in memory or disk", Section 2.3).
DATAMPI_BUFFER_BUDGET = int(4.0 * GB)

#: Reduce-side merge memory: shares beyond this need on-disk merge passes
#: in Hadoop (shares within it merge in the reducer heap).
HADOOP_REDUCE_MERGE_MEM = 400 * MB

#: SATA concurrency efficiency: effective sequential bandwidth fraction as
#: concurrent streams per disk grow (seek amplification).  Linear
#: interpolation between the table points; this is what makes 6 tasks per
#: node *worse* than 4 in Figure 2(b).
DISK_EFFICIENCY_TABLE = {1: 1.0, 2: 0.96, 4: 0.86, 6: 0.62, 8: 0.50}


def disk_efficiency(streams: int) -> float:
    """Interpolated disk efficiency for a given stream concurrency."""
    if streams < 1:
        raise ConfigError(f"streams must be >= 1, got {streams}")
    points = sorted(DISK_EFFICIENCY_TABLE.items())
    if streams <= points[0][0]:
        return points[0][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if streams <= x1:
            return y0 + (y1 - y0) * (streams - x0) / (x1 - x0)
    return points[-1][1]

"""Spark 0.8 timeline model.

Structure replayed:

* fast job setup and sub-second task scheduling (executors are already
  running — why Spark ties DataMPI on small jobs, Figure 5);
* Stage 0 reads HDFS splits, deserializes into RDD records (CPU), and
  writes shuffle files;
* before Stage 1 materializes the shuffle in executor heaps, the memory
  gate checks the un-evictable footprint: ``intermediate x java_expansion``
  per worker against ``worker_heap x usable_fraction``.  Sort workloads
  above the paper's thresholds die here with OutOfMemoryError, exactly as
  in Section 4.3;
* Stage 1 fetches over the NIC, sorts/aggregates, writes replicated
  output.
"""

from __future__ import annotations

from repro.cluster.node import SimNode
from repro.common.config import RunResult
from repro.common.errors import WorkloadError
from repro.common.units import GB, MB
from repro.hdfs.filesystem import Split
from repro.perfmodels.base_model import BaseModel, SimOutcome, resolve_profile
from repro.perfmodels.calibration import (
    SPARK_CAL,
    SPARK_USABLE_FRACTION,
    SPARK_WORKER_HEAP,
    SPARK_WORKERS_PER_NODE,
    TaskCost,
)
from repro.perfmodels.profiles import WorkloadProfile

#: Memory (minus OS share) divided among the per-node workers.
NODE_HEAP_POOL = 14 * GB

#: Workloads whose shuffle must be materialized un-evictably (sorts hold
#: the whole partition; aggregations stream through fixed-size maps).
MATERIALIZING_WORKLOADS = {"text_sort", "normal_sort"}

#: Fraction of input splits Spark's delay scheduler fails to place locally.
#: This is the source of the ~25 MB/s network traffic the paper observes
#: for Spark WordCount while Hadoop and DataMPI read everything locally
#: (Figure 4(g)).  Sort jobs make two passes (sampling first), which warms
#: placement, so their miss rate is low.
LOCALITY_MISS = {
    "wordcount": 0.35,
    "grep": 0.30,
    "kmeans": 0.30,
    "text_sort": 0.05,
    "normal_sort": 0.05,
}


class SparkModel(BaseModel):
    framework = "spark"

    def __init__(self, slots: int = 4, seed: int = 0, spec=None):
        super().__init__(slots=slots, seed=seed, spec=spec)
        self.workers_per_node = slots if slots else SPARK_WORKERS_PER_NODE
        self.worker_heap = NODE_HEAP_POOL / self.workers_per_node
        # Spark 0.8 writes one shuffle file per (map, reduce) pair; above 4
        # workers per node the file count explodes and shuffle I/O turns
        # seek-bound.  The quadratic factor amplifies shuffle disk traffic.
        self.shuffle_file_factor = max(1.0, (self.workers_per_node / 4.0) ** 2)
        # Workers keep their "as large as possible" 3.5 GB Xmx (Section 4.2),
        # so running 6 of them over-commits the node and GC steals cycles.
        self.cpu_pressure = self.memory_pressure_factor(
            SPARK_CAL.base_memory + self.workers_per_node * SPARK_WORKER_HEAP,
            k=1.5, budget_fraction=0.95,
        )

    def run(self, workload: str, input_bytes: int) -> SimOutcome:
        if workload == "naive_bayes":
            raise WorkloadError(
                "the paper's BigDataBench release lacks Spark Naive Bayes "
                "(Section 4.6); no Spark model for it"
            )
        cal = SPARK_CAL
        cost = cal.map_cost(workload)
        profile = resolve_profile(workload)
        self.allocate_framework_base(cal)
        oom = self._oom_check(profile, input_bytes)
        failure_holder: dict[str, str] = {}

        def driver():
            yield from self._job(workload, profile, input_bytes, cost, oom,
                                 failure_holder)

        done = self.engine.process(driver(), "spark-driver")
        self.engine.run()
        assert done.triggered
        result = RunResult(
            framework="spark", workload=workload, input_bytes=input_bytes,
            elapsed_sec=self.engine.now,
            phases={name: end - start for name, (start, end) in self.phases.items()},
            failed="error" in failure_holder,
            failure=failure_holder.get("error"),
        )
        return SimOutcome(result=result, cluster=self.cluster, phases=self.phases)

    # -- memory gate ---------------------------------------------------------------

    def _oom_check(self, profile: WorkloadProfile, input_bytes: int) -> bool:
        """True if Stage 1 materialization cannot fit a worker heap."""
        if profile.name not in MATERIALIZING_WORKLOADS:
            return False
        workers = len(self.cluster.nodes) * self.workers_per_node
        per_worker = (
            profile.intermediate_bytes(input_bytes) / workers
            * profile.spark_java_expansion
        )
        return per_worker > self.worker_heap * SPARK_USABLE_FRACTION

    def _plan_with_locality_misses(self, workload: str, input_bytes: int):
        """Split assignment plus per-task remote-read flags.

        Spark's delay scheduler launches a calibrated fraction of tasks on
        nodes that hold no replica of their split; slot occupancy stays
        balanced (the task takes an idle slot), but the split is fetched
        over the network from a replica holder — the Figure 4(g) traffic.
        Returns ``[(split, node, remote_read), ...]``.
        """
        planned = self.plan_splits(workload, input_bytes)
        miss_rate = LOCALITY_MISS.get(workload, 0.0)
        num_misses = int(len(planned) * miss_rate)
        stride = max(1, len(planned) // max(1, num_misses)) if num_misses else len(planned) + 1
        adjusted = []
        remaining = num_misses
        for index, (split, node) in enumerate(planned):
            remote = remaining > 0 and index % stride == 0
            if remote:
                remaining -= 1
            adjusted.append((split, node, remote))
        return adjusted

    # -- the job ---------------------------------------------------------------------

    def _job(self, workload: str, profile: WorkloadProfile, input_bytes: int,
             cost: TaskCost, oom: bool, failure_holder: dict[str, str]):
        cal = SPARK_CAL
        yield self.engine.timeout(self.jitter(cal.job_setup_sec))
        job_heap = self.allocate_job_heaps(cal, workload)

        planned = self._plan_with_locality_misses(workload, input_bytes)
        pools = self.make_slot_pools(self.workers_per_node)
        self.phase_begin("stage0")
        stage0 = [
            self.engine.process(
                self._stage0_task(split, node, pools[node.node_id], cost, profile,
                                  remote),
                f"stage0-{i}",
            )
            for i, (split, node, remote) in enumerate(planned)
        ]
        yield self.engine.all_of(stage0)
        self.phase_end("stage0")

        inter_total = profile.intermediate_bytes(input_bytes)
        if oom:
            # Executors die while materializing the first fetched buckets.
            yield self.engine.timeout(self.jitter(5.0))
            failure_holder["error"] = (
                "java.lang.OutOfMemoryError: shuffle materialization exceeds "
                "worker heap"
            )
            self.free_all_memory()
            return

        # Charge the materialized shuffle (what Figure 4(d) shows for Spark).
        nodes = self.cluster.nodes
        resident = min(
            inter_total * profile.spark_java_expansion / len(nodes),
            self.workers_per_node * self.worker_heap * SPARK_USABLE_FRACTION,
        )
        for node in nodes:
            node.allocate(int(resident))
        if workload == "kmeans":
            # First iteration also populates the cached input RDD.
            cache = min(
                input_bytes * profile.spark_java_expansion / len(nodes),
                self.workers_per_node * self.worker_heap * 0.9,
            )
            for node in nodes:
                node.allocate(int(cache))

        out_total = profile.output_bytes(input_bytes)
        num_reduces = len(nodes) * self.workers_per_node
        inter_per_node = inter_total / len(nodes)
        remote_fraction = (len(nodes) - 1) / len(nodes)
        self.phase_begin("stage1")
        servers = [
            self.engine.process(
                self._shuffle_server(node, inter_per_node, remote_fraction),
                f"spark-server-{node.node_id}",
            )
            for node in nodes
        ]
        stage1 = [
            self.engine.process(
                self._stage1_task(
                    index, nodes[index % len(nodes)], pools[index % len(nodes)],
                    inter_total / num_reduces, out_total / num_reduces,
                    remote_fraction,
                ),
                f"stage1-{index}",
            )
            for index in range(num_reduces)
        ]
        yield self.engine.all_of(stage1 + servers)
        self.phase_end("stage1")
        yield self.engine.timeout(self.jitter(cal.job_cleanup_sec))
        del job_heap  # freed with everything else below
        self.free_all_memory()

    def _stage0_task(self, split: Split, node: SimNode, pool, cost: TaskCost,
                     profile: WorkloadProfile, remote: bool = False):
        cal = SPARK_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        data_bytes = split.size * profile.decompress_ratio
        inter_task = data_bytes * profile.shuffle_ratio
        legs = [
            self._read_split(node, split, remote),
            node.compute(
                self.jitter(self.cpu_pressure * cost.cpu_per_mb * data_bytes / MB),
                threads=cost.threads, label="stage0.cpu",
            ),
            self.sys_cpu(node, cal, split.size + inter_task),
        ]
        if profile.name in MATERIALIZING_WORKLOADS:
            # sortByKey's range-partitioner sampling re-scans the input.
            legs.append(self._read_split(node, split, remote))
        if inter_task > 0:
            legs.append(
                node.write(inter_task * self.shuffle_file_factor, "shuffle.write")
            )
        yield self.engine.all_of(legs)
        pool.release()

    def _read_split(self, node: SimNode, split: Split, remote: bool):
        """Local HDFS read, or a remote fetch from a replica holder when
        the delay scheduler missed locality for this task."""
        if not remote:
            return self.hdfs.read_split(node, split)
        source_id = next(
            (n for n in split.preferred_nodes if n != node.node_id),
            split.preferred_nodes[0],
        )
        source = self.cluster.node(source_id)
        return self.engine.all_of([
            source.read(split.size, "hdfs.remote_read", track_wait=False),
            self.cluster.switch.transfer(source, node, split.size, "hdfs.remote"),
        ])

    def _shuffle_server(self, node: SimNode, inter_per_node: float,
                        remote_fraction: float):
        if inter_per_node <= 0:
            return
            yield  # pragma: no cover - generator marker
        yield self.engine.all_of([
            node.read(inter_per_node * self.shuffle_file_factor,
                      "shuffle.serve", track_wait=False),
            node.nic_out.transfer(inter_per_node * remote_fraction,
                                  label="shuffle.out"),
        ])

    def _stage1_task(self, index: int, node: SimNode, pool, share_in: float,
                     out_share: float, remote_fraction: float):
        cal = SPARK_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        legs = [
            node.compute(
                self.jitter(self.cpu_pressure * cal.reduce_cpu_per_mb * share_in / MB),
                threads=1.0, label="stage1.cpu",
            ),
            self.sys_cpu(node, cal, share_in + 3 * out_share),
        ]
        if share_in > 0:
            legs.append(node.nic_in.transfer(share_in * remote_fraction,
                                             label="shuffle.in"))
        yield self.engine.all_of(legs)
        yield self.replicated_write(node, out_share, salt=index)
        pool.release()

"""Hadoop 1.x timeline model.

Structure replayed (and where its time goes, per the paper's analysis):

* JobTracker submit/setup and per-wave heartbeat scheduling plus JVM
  launch for every task — the overhead that dominates small jobs (Fig 5);
* map tasks stream their (local) HDFS split, spend workload CPU, and
  *write map output to disk*, then pay an extra merge pass over it when
  the output exceeds one sort buffer — the "redundant disk I/O
  operations" DataMPI avoids;
* reducers launch after the map phase, fetch remote map output over the
  NIC while merge-sorting (another disk pass for large shares), reduce,
  and write replicated output to HDFS.
"""

from __future__ import annotations

from repro.cluster.node import SimNode
from repro.common.config import RunResult
from repro.common.units import MB
from repro.hdfs.filesystem import Split
from repro.perfmodels.base_model import BaseModel, SimOutcome, resolve_profile
from repro.perfmodels.calibration import (
    HADOOP_CAL,
    HADOOP_REDUCE_MERGE_MEM,
    TaskCost,
)
from repro.perfmodels.profiles import NAIVE_BAYES_PIPELINE, WorkloadProfile

#: Map output below one sort buffer spills once and needs no merge pass.
SORT_BUFFER = 128 * MB


class HadoopModel(BaseModel):
    framework = "hadoop"

    def run(self, workload: str, input_bytes: int) -> SimOutcome:
        cal = HADOOP_CAL
        cost = cal.map_cost(workload)
        self.allocate_framework_base(cal)
        # Task JVMs are launched with full -Xmx; over-committing them (e.g.
        # 6 x 2 GB heaps on 16 GB) triggers GC/reclaim pressure.
        self.cpu_pressure = self.memory_pressure_factor(
            cal.base_memory + self.slots * cal.task_heap
        )

        def driver():
            profile = resolve_profile(workload)
            if workload == "naive_bayes":
                for job_name, fraction, cpu_scale in NAIVE_BAYES_PIPELINE:
                    job_cost = TaskCost(cost.cpu_per_mb * cpu_scale, cost.threads)
                    yield from self._job(
                        workload, profile, int(input_bytes * fraction),
                        job_cost, tag=f".{job_name}",
                    )
            else:
                yield from self._job(workload, profile, input_bytes, cost, tag="")

        done = self.engine.process(driver(), "hadoop-driver")
        self.engine.run()
        assert done.triggered
        result = RunResult(
            framework="hadoop", workload=workload, input_bytes=input_bytes,
            elapsed_sec=self.engine.now,
            phases={name: end - start for name, (start, end) in self.phases.items()},
        )
        return SimOutcome(result=result, cluster=self.cluster, phases=self.phases)

    # -- one MapReduce job -------------------------------------------------------

    def _job(self, workload: str, profile: WorkloadProfile, input_bytes: int,
             cost: TaskCost, tag: str):
        cal = HADOOP_CAL
        yield self.engine.timeout(self.jitter(cal.job_setup_sec))
        job_heap = self.allocate_job_heaps(cal, workload)

        planned = self.plan_splits(f"{workload}{tag}", input_bytes)
        map_pools = self.make_slot_pools()
        self.phase_begin(f"map{tag}")
        map_tasks = [
            self.engine.process(
                self._map_task(split, node, map_pools[node.node_id], cost, profile),
                f"map-{i}",
            )
            for i, (split, node) in enumerate(planned)
        ]
        yield self.engine.all_of(map_tasks)
        self.phase_end(f"map{tag}")

        inter_total = profile.intermediate_bytes(input_bytes)
        out_total = profile.output_bytes(input_bytes)
        nodes = self.cluster.nodes
        num_reduces = len(nodes) * self.slots

        self.phase_begin(f"reduce{tag}")
        # Map-output servers: each node streams its stored map output to the
        # fetchers (disk read + outbound NIC for the remote share).
        inter_per_node = inter_total / len(nodes)
        remote_fraction = (len(nodes) - 1) / len(nodes)
        servers = [
            self.engine.process(self._shuffle_server(node, inter_per_node,
                                                     remote_fraction),
                                f"shuffle-server-{node.node_id}")
            for node in nodes
        ]
        reduce_pools = self.make_slot_pools()
        reduce_tasks = [
            self.engine.process(
                self._reduce_task(
                    index, nodes[index % len(nodes)],
                    reduce_pools[index % len(nodes)],
                    inter_total / num_reduces, out_total / num_reduces,
                    remote_fraction, profile,
                ),
                f"reduce-{index}",
            )
            for index in range(num_reduces)
        ]
        yield self.engine.all_of(reduce_tasks + servers)
        self.phase_end(f"reduce{tag}")
        self.free_job_heaps(job_heap)
        yield self.engine.timeout(self.jitter(cal.job_cleanup_sec))

    def _map_task(self, split: Split, node: SimNode, pool, cost: TaskCost,
                  profile: WorkloadProfile):
        cal = HADOOP_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        data_bytes = split.size * profile.decompress_ratio
        inter_task = data_bytes * profile.shuffle_ratio
        legs = [
            self.hdfs.read_split(node, split),
            node.compute(
                self.jitter(self.cpu_pressure * cost.cpu_per_mb * data_bytes / MB),
                threads=cost.threads, label="map.cpu",
            ),
            self.sys_cpu(node, cal, split.size + inter_task),
        ]
        if inter_task > 0:
            legs.append(node.write(inter_task, "map.spill"))
        yield self.engine.all_of(legs)
        if cal.spill_passes > 0 and inter_task > SORT_BUFFER:
            # Final spill merge: about half of it overlapped with the spills
            # above, the tail is the serial cost observed at task end.
            merge_bytes = inter_task * cal.spill_passes * 0.5
            yield self.engine.all_of([
                node.read(merge_bytes, "map.merge"),
                node.write(merge_bytes, "map.merge"),
                self.sys_cpu(node, cal, merge_bytes),
            ])
        pool.release()

    def _shuffle_server(self, node: SimNode, inter_per_node: float,
                        remote_fraction: float):
        if inter_per_node <= 0:
            return
            yield  # pragma: no cover - generator marker
        yield self.engine.all_of([
            # Serving map output happens in TaskTracker threads: not wait-I/O.
            node.read(inter_per_node, "shuffle.serve", track_wait=False),
            node.nic_out.transfer(inter_per_node * remote_fraction,
                                  label="shuffle.out"),
        ])

    def _reduce_task(self, index: int, node: SimNode, pool, share_in: float,
                     out_share: float, remote_fraction: float,
                     profile: WorkloadProfile):
        cal = HADOOP_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        reduce_cpu = (cal.reduce_cpu_per_mb + profile.reduce_extra_cpu_per_mb)
        reduce_cpu *= self.cpu_pressure
        legs = [
            node.compute(self.jitter(reduce_cpu * share_in / MB),
                         threads=1.0, label="reduce.cpu"),
            self.sys_cpu(node, cal, share_in + 3 * out_share),
        ]
        if share_in > 0:
            legs.append(node.nic_in.transfer(share_in * remote_fraction,
                                             label="shuffle.in"))
        merge_passes = self._merge_passes(share_in)
        if merge_passes:
            # On-disk merge passes before the reduce function can run
            # (io.sort.factor-limited multi-pass merge for large shares).
            legs.append(node.write(share_in * merge_passes, "reduce.merge"))
            legs.append(node.read(share_in * merge_passes, "reduce.merge"))
        yield self.engine.all_of(legs)
        yield self.replicated_write(node, out_share, salt=index)
        pool.release()

    @staticmethod
    def _merge_passes(share_in: float) -> int:
        """On-disk merge passes for a reduce input share.

        Shares within the reducer's merge memory need none; beyond it the
        pass count grows with the log of the overflow factor (merge-factor
        limited multi-pass merge).
        """
        if share_in <= HADOOP_REDUCE_MERGE_MEM:
            return 0
        import math

        return math.ceil(math.log(share_in / HADOOP_REDUCE_MERGE_MEM, 4.0))

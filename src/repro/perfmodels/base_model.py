"""Shared machinery for the three framework timeline models.

A timeline model replays a framework's execution structure — task waves,
startup costs, spills, shuffles, replication — as processes on the
simulated testbed.  Job execution time *and* the Figure 4 resource
traces come out of the same run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.cluster import SimCluster
from repro.cluster.hardware import ClusterSpec, NodeSpec
from repro.cluster.node import SimNode
from repro.common.config import FrameworkConf, RunResult
from repro.common.errors import ConfigError
from repro.common.rng import substream
from repro.common.units import MB
from repro.hdfs.filesystem import HDFS, Split
from repro.perfmodels.calibration import FrameworkCal, disk_efficiency
from repro.perfmodels.profiles import WorkloadProfile, get_profile
from repro.simulate.engine import Event
from repro.simulate.resources import SlotPool


@dataclass
class SimOutcome:
    """One simulated job execution plus its cluster (for resource traces)."""

    result: RunResult
    cluster: SimCluster
    phases: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.result.elapsed_sec


def scaled_cluster_spec(slots: int, base: ClusterSpec | None = None) -> ClusterSpec:
    """Cluster spec with disk bandwidth derated for stream concurrency.

    More concurrent tasks per node means more concurrent disk streams and
    lower effective sequential bandwidth (seek amplification); this is the
    physical effect behind Figure 2(b)'s peak at 4 tasks per node.
    """
    base = base or ClusterSpec.paper_testbed()
    efficiency = disk_efficiency(slots)
    node = NodeSpec(
        disk_read_bw=base.node.disk_read_bw * efficiency,
        disk_write_bw=base.node.disk_write_bw * efficiency,
        nic_bw=base.node.nic_bw,
        memory=base.node.memory,
        disk_capacity=base.node.disk_capacity,
    )
    return ClusterSpec(nodes=base.nodes, node=node)


class BaseModel:
    """Common plumbing: cluster construction, split assignment, I/O charging."""

    framework = "base"

    def __init__(self, slots: int = 4, seed: int = 0,
                 spec: ClusterSpec | None = None):
        if slots < 1:
            raise ConfigError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self.seed = seed
        self.cluster = SimCluster(scaled_cluster_spec(slots, spec))
        self.hdfs = HDFS(self.cluster, FrameworkConf.paper_defaults(), seed=seed)
        self.engine = self.cluster.engine
        self._jitter_rng = substream(seed, "jitter", self.framework)
        self.phases: dict[str, tuple[float, float]] = {}
        self._phase_start: dict[str, float] = {}
        #: CPU slowdown from memory over-commit (GC thrash / swap); set by
        #: the concrete model when heaps exceed the node's comfort zone.
        self.cpu_pressure = 1.0

    def memory_pressure_factor(self, committed: float, k: float = 6.0,
                               budget_fraction: float = 0.75) -> float:
        """CPU slowdown when committed heaps overrun physical memory.

        Past ``budget_fraction`` of node RAM, JVM garbage collection and
        page reclaim start stealing cycles — the reason 6 tasks per node
        is slower than 4 in Figure 2(b).
        """
        budget = budget_fraction * self.cluster.spec.node.memory
        overrun = committed / budget - 1.0
        return 1.0 + k * max(0.0, overrun)

    # -- inputs -----------------------------------------------------------------

    def plan_splits(self, workload: str, input_bytes: int) -> list[tuple[Split, SimNode]]:
        """Register the input file and assign each split to a replica node.

        Assignment balances load over each block's replica set, giving the
        ~100 % locality the paper observes for O/Map tasks.
        """
        meta = self.hdfs.ingest_file(f"/input/{workload}", input_bytes)
        load = [0] * len(self.cluster.nodes)
        planned = []
        for split in self.hdfs.splits(meta.path):
            node_id = min(split.preferred_nodes, key=lambda n: (load[n], n))
            load[node_id] += 1
            planned.append((split, self.cluster.node(node_id)))
        return planned

    # -- timing helpers ------------------------------------------------------------

    def jitter(self, value: float, spread: float = 0.04) -> float:
        """Small run-to-run variation (the paper averages 3 executions)."""
        return value * self._jitter_rng.uniform(1.0 - spread, 1.0 + spread)

    def phase_begin(self, name: str) -> None:
        self._phase_start[name] = self.engine.now

    def phase_end(self, name: str) -> None:
        self.phases[name] = (self._phase_start.get(name, 0.0), self.engine.now)

    # -- I/O charging ------------------------------------------------------------

    def replicated_write(self, node: SimNode, nbytes: float, salt: int) -> Event:
        """HDFS output write: local replica plus two pipelined remote copies."""
        if nbytes <= 0:
            return self.engine.timeout(0.0)
        nodes = self.cluster.nodes
        second = nodes[(node.node_id + 1 + salt % (len(nodes) - 1)) % len(nodes)]
        third = nodes[(node.node_id + 2 + salt % (len(nodes) - 2)) % len(nodes)]
        if third is second:
            third = nodes[(second.node_id + 1) % len(nodes)]
        legs = [
            node.write(nbytes, "hdfs.out"),
            self.cluster.switch.transfer(node, second, nbytes, "hdfs.repl"),
            # Remote replica writes happen in datanode threads; the writing
            # task is not blocked on them, so they don't count as wait-I/O.
            second.write(nbytes, "hdfs.out", track_wait=False),
            self.cluster.switch.transfer(second, third, nbytes, "hdfs.repl"),
            third.write(nbytes, "hdfs.out", track_wait=False),
        ]
        return self.engine.all_of(legs)

    def shuffle_out_flow(self, node: SimNode, nbytes: float) -> Event:
        """All-to-all send leg: this node's outbound shuffle traffic, paired
        with a matching inbound flow on a rotated peer (keeps per-direction
        NIC accounting balanced without NxN flows)."""
        if nbytes <= 0:
            return self.engine.timeout(0.0)
        peer = self.cluster.nodes[(node.node_id + 1) % len(self.cluster.nodes)]
        legs = [
            node.nic_out.transfer(nbytes, label="shuffle.out"),
            peer.nic_in.transfer(nbytes, label="shuffle.in"),
        ]
        return self.engine.all_of(legs)

    def sys_cpu(self, node: SimNode, cal: FrameworkCal, io_bytes: float,
                threads: float = 2.0) -> Event:
        """System CPU burned moving ``io_bytes`` (serialization, checksums,
        GC, interrupt handling)."""
        if io_bytes <= 0:
            return self.engine.timeout(0.0)
        return node.compute(
            self.cpu_pressure * cal.sys_cpu_per_mb * io_bytes / MB,
            threads=threads, label="sys",
        )

    # -- memory helpers ------------------------------------------------------------

    def allocate_framework_base(self, cal: FrameworkCal) -> None:
        for node in self.cluster.nodes:
            node.allocate(cal.base_memory)

    def allocate_job_heaps(self, cal: FrameworkCal, workload: str) -> int:
        """Charge per-node task heaps for the job's duration.

        JVM heaps grow to the workload's working set on first use and stay
        resident until the worker exits, so memory is charged per job, not
        per task (this is what the Figure 4 footprint plots show).
        """
        per_node = int(self.slots * cal.task_heap * cal.heap_factor(workload))
        for node in self.cluster.nodes:
            node.allocate(per_node)
        return per_node

    def free_job_heaps(self, per_node: int) -> None:
        for node in self.cluster.nodes:
            node.free(per_node)

    def free_all_memory(self) -> None:
        for node in self.cluster.nodes:
            node.free(node.memory_used)

    # -- slot pools -------------------------------------------------------------

    def make_slot_pools(self, slots: int | None = None) -> list[SlotPool]:
        n = slots or self.slots
        return [SlotPool(self.engine, n, f"slots-node{i}")
                for i in range(len(self.cluster.nodes))]


def num_waves(num_tasks: int, nodes: int, slots: int) -> int:
    """Task waves for a balanced assignment."""
    return math.ceil(num_tasks / (nodes * slots))


def resolve_profile(workload: str) -> WorkloadProfile:
    return get_profile(workload)

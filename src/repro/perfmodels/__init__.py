"""Calibrated timeline performance models of the three frameworks."""

from repro.perfmodels.base_model import BaseModel, SimOutcome, scaled_cluster_spec
from repro.perfmodels.calibration import (
    CALIBRATIONS,
    DATAMPI_CAL,
    HADOOP_CAL,
    SPARK_CAL,
    TaskCost,
    disk_efficiency,
    get_calibration,
)
from repro.perfmodels.datampi_model import DataMPIModel
from repro.perfmodels.hadoop_model import HadoopModel
from repro.perfmodels.profiles import (
    NAIVE_BAYES_PIPELINE,
    PROFILES,
    WorkloadProfile,
    get_profile,
)
from repro.perfmodels.ablation import (
    MECHANISMS,
    AblationResult,
    ablated_datampi,
)
from repro.perfmodels.iterative import IterativeResult, iterative_kmeans
from repro.perfmodels.runner import AveragedRun, simulate, simulate_once
from repro.perfmodels.spark_model import SparkModel

__all__ = [
    "BaseModel",
    "SimOutcome",
    "scaled_cluster_spec",
    "CALIBRATIONS",
    "DATAMPI_CAL",
    "HADOOP_CAL",
    "SPARK_CAL",
    "TaskCost",
    "disk_efficiency",
    "get_calibration",
    "DataMPIModel",
    "HadoopModel",
    "NAIVE_BAYES_PIPELINE",
    "PROFILES",
    "WorkloadProfile",
    "get_profile",
    "MECHANISMS",
    "AblationResult",
    "ablated_datampi",
    "IterativeResult",
    "iterative_kmeans",
    "AveragedRun",
    "simulate",
    "simulate_once",
    "SparkModel",
]

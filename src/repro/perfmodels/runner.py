"""Run simulated experiments the way the paper ran real ones.

``simulate_once`` executes one job on a fresh simulated testbed;
``simulate`` repeats it three times with seeded run-to-run jitter and
averages, matching Section 4.1's "we report results that are average
across three executions".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import WorkloadError
from repro.perfmodels.base_model import BaseModel, SimOutcome
from repro.perfmodels.datampi_model import DataMPIModel
from repro.perfmodels.hadoop_model import HadoopModel
from repro.perfmodels.spark_model import SparkModel

MODELS: dict[str, type[BaseModel]] = {
    "hadoop": HadoopModel,
    "spark": SparkModel,
    "datampi": DataMPIModel,
}


def simulate_once(framework: str, workload: str, input_bytes: int,
                  slots: int = 4, seed: int = 0) -> SimOutcome:
    """One simulated execution; returns the outcome with resource traces."""
    if framework not in MODELS:
        raise WorkloadError(
            f"unknown framework {framework!r}; available: {sorted(MODELS)}"
        )
    model = MODELS[framework](slots=slots, seed=seed)
    return model.run(workload, input_bytes)


@dataclass
class AveragedRun:
    """Mean of several executions (the paper's reporting unit)."""

    framework: str
    workload: str
    input_bytes: int
    elapsed_sec: float
    phases: dict[str, float] = field(default_factory=dict)
    failed: bool = False
    failure: str | None = None
    outcomes: list[SimOutcome] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    @property
    def first(self) -> SimOutcome:
        """First execution's outcome (used for the Figure 4 traces)."""
        return self.outcomes[0]


def simulate(framework: str, workload: str, input_bytes: int,
             slots: int = 4, executions: int = 3, base_seed: int = 0) -> AveragedRun:
    """Average of ``executions`` simulated runs with varied jitter seeds."""
    if executions < 1:
        raise WorkloadError(f"executions must be >= 1, got {executions}")
    outcomes = [
        simulate_once(framework, workload, input_bytes, slots=slots,
                      seed=base_seed + index)
        for index in range(executions)
    ]
    failed = any(outcome.result.failed for outcome in outcomes)
    failures = [outcome.result.failure for outcome in outcomes if outcome.result.failed]
    phase_names = outcomes[0].result.phases.keys()
    return AveragedRun(
        framework=framework,
        workload=workload,
        input_bytes=input_bytes,
        elapsed_sec=sum(o.result.elapsed_sec for o in outcomes) / executions,
        phases={
            name: sum(o.result.phases.get(name, 0.0) for o in outcomes) / executions
            for name in phase_names
        },
        failed=failed,
        failure=failures[0] if failures else None,
        outcomes=outcomes,
    )

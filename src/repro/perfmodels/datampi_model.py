"""DataMPI timeline model — where the paper's speedups come from.

Three mechanisms, all from Sections 2.3 and 4.4, are modelled explicitly:

1. **Pipelined O phase.**  An O task's split read, partition/serialize
   CPU, and network send run *concurrently* (the send buffers flush while
   the task keeps computing), so the shuffle is effectively finished when
   the O phase ends — this is why DataMPI's network throughput during the
   O phase is ~60 % higher than Hadoop's (Figure 4(c)).
2. **In-memory intermediate data.**  Received key-value chunks stay in
   worker memory (spilling to disk only past the buffer budget), removing
   Hadoop's spill-write + merge-read + reduce-merge disk passes.
3. **Near-zero startup.**  ``mpirun``-style process spawn costs ~1.5 s
   against Hadoop's JobTracker rounds — the entire Figure 5 story.
"""

from __future__ import annotations

from repro.cluster.node import SimNode
from repro.common.config import RunResult
from repro.common.units import MB
from repro.hdfs.filesystem import Split
from repro.perfmodels.base_model import BaseModel, SimOutcome, resolve_profile
from repro.perfmodels.calibration import DATAMPI_BUFFER_BUDGET, DATAMPI_CAL, TaskCost
from repro.perfmodels.profiles import NAIVE_BAYES_PIPELINE, WorkloadProfile


class DataMPIModel(BaseModel):
    framework = "datampi"

    def run(self, workload: str, input_bytes: int) -> SimOutcome:
        cal = DATAMPI_CAL
        cost = cal.map_cost(workload)
        self.allocate_framework_base(cal)

        def driver():
            profile = resolve_profile(workload)
            if workload == "naive_bayes":
                for job_name, fraction, cpu_scale in NAIVE_BAYES_PIPELINE:
                    job_cost = TaskCost(cost.cpu_per_mb * cpu_scale, cost.threads)
                    yield from self._job(
                        workload, profile, int(input_bytes * fraction), job_cost,
                        tag=f".{job_name}",
                    )
            else:
                yield from self._job(workload, profile, input_bytes, cost, tag="")

        done = self.engine.process(driver(), "datampi-driver")
        self.engine.run()
        assert done.triggered
        result = RunResult(
            framework="datampi", workload=workload, input_bytes=input_bytes,
            elapsed_sec=self.engine.now,
            phases={name: end - start for name, (start, end) in self.phases.items()},
        )
        return SimOutcome(result=result, cluster=self.cluster, phases=self.phases)

    # -- one bipartite O/A job -----------------------------------------------------

    def _job(self, workload: str, profile: WorkloadProfile, input_bytes: int,
             cost: TaskCost, tag: str):
        cal = DATAMPI_CAL
        yield self.engine.timeout(self.jitter(cal.job_setup_sec))
        job_heap = self.allocate_job_heaps(cal, workload)

        planned = self.plan_splits(f"{workload}{tag}", input_bytes)
        nodes = self.cluster.nodes
        inter_total = profile.intermediate_bytes(input_bytes)
        inter_per_node = inter_total / len(nodes)
        # Intermediate data beyond the buffer budget goes to local disk
        # ("partitions and stores the emitted data ... in memory or disk").
        spill_per_node = max(0.0, inter_per_node - DATAMPI_BUFFER_BUDGET)
        buffered_per_node = inter_per_node - spill_per_node
        spill_fraction = spill_per_node / inter_per_node if inter_per_node else 0.0

        pools = self.make_slot_pools()
        self.phase_begin(f"o{tag}")
        o_tasks = [
            self.engine.process(
                self._o_task(split, node, pools[node.node_id], cost, profile,
                             spill_fraction),
                f"o-{i}",
            )
            for i, (split, node) in enumerate(planned)
        ]
        yield self.engine.all_of(o_tasks)
        self.phase_end(f"o{tag}")

        # Buffered intermediate data is resident until the A phase finishes.
        for node in nodes:
            node.allocate(int(buffered_per_node))

        out_total = profile.output_bytes(input_bytes)
        num_a = len(nodes) * self.slots
        self.phase_begin(f"a{tag}")
        a_tasks = [
            self.engine.process(
                self._a_task(
                    index, nodes[index % len(nodes)], pools[index % len(nodes)],
                    inter_total / num_a, out_total / num_a,
                    spill_fraction, profile,
                ),
                f"a-{index}",
            )
            for index in range(num_a)
        ]
        yield self.engine.all_of(a_tasks)
        self.phase_end(f"a{tag}")
        for node in nodes:
            node.free(int(buffered_per_node))
        self.free_job_heaps(job_heap)
        yield self.engine.timeout(self.jitter(cal.job_cleanup_sec))

    def _o_task(self, split: Split, node: SimNode, pool, cost: TaskCost,
                profile: WorkloadProfile, spill_fraction: float):
        cal = DATAMPI_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        data_bytes = split.size * profile.decompress_ratio
        inter_task = data_bytes * profile.shuffle_ratio
        remote = inter_task * (len(self.cluster.nodes) - 1) / len(self.cluster.nodes)
        peer = self.cluster.nodes[(node.node_id + 1) % len(self.cluster.nodes)]
        legs = [
            self.hdfs.read_split(node, split),
            node.compute(self.jitter(cost.cpu_per_mb * data_bytes / MB),
                         threads=cost.threads, label="o.cpu"),
            self.sys_cpu(node, cal, split.size + inter_task),
        ]
        if remote > 0:
            # The pipelined shuffle: send overlaps the task's own compute.
            legs.append(node.nic_out.transfer(remote, label="o.send"))
            legs.append(peer.nic_in.transfer(remote, label="o.recv"))
        if spill_fraction > 0:
            # Receiver-side spill of the over-budget share (charged to the
            # rotated receiver, where the data lands).
            legs.append(peer.write(inter_task * spill_fraction, "o.bufspill"))
        yield self.engine.all_of(legs)
        pool.release()

    def _a_task(self, index: int, node: SimNode, pool, share_in: float,
                out_share: float, spill_fraction: float,
                profile: WorkloadProfile):
        cal = DATAMPI_CAL
        yield pool.acquire()
        yield self.engine.timeout(
            self.jitter(cal.sched_round_sec + cal.task_launch_sec)
        )
        a_cpu = cal.reduce_cpu_per_mb + profile.reduce_extra_cpu_per_mb
        legs = [
            node.compute(self.jitter(a_cpu * share_in / MB),
                         threads=1.0, label="a.cpu"),
            self.sys_cpu(node, cal, share_in + out_share),
        ]
        if spill_fraction > 0:
            # Read back the locally spilled share (still no network).
            legs.append(node.read(share_in * spill_fraction, "a.bufread"))
        # A tasks stream: the merged key-ordered input feeds the output
        # writer directly, so the replicated write overlaps the merge —
        # more of the pipelining Hadoop's merge-then-reduce cannot do.
        legs.append(self.replicated_write(node, out_share, salt=index))
        yield self.engine.all_of(legs)
        pool.release()

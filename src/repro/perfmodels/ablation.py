"""Ablation: how much does each DataMPI mechanism contribute?

DESIGN.md credits DataMPI's wins to three mechanisms (Sections 2.3/4.4):

1. **pipelining** — the O-phase shuffle overlaps task computation;
2. **in-memory intermediate data** — no spill-write/merge-read disk passes;
3. **low startup** — mpirun-style launch instead of JobTracker rounds.

``ablated_datampi`` re-runs the DataMPI timeline model with individual
mechanisms disabled, turning the design argument into a measurable
experiment (benchmark ``test_ablation_mechanisms``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import SimNode
from repro.common.errors import ConfigError
from repro.hdfs.filesystem import Split
from repro.perfmodels.base_model import SimOutcome
from repro.perfmodels.calibration import DATAMPI_CAL, HADOOP_CAL, TaskCost
from repro.perfmodels.datampi_model import DataMPIModel
from repro.perfmodels.profiles import WorkloadProfile

MECHANISMS = ("pipelining", "memory_buffering", "low_startup")


@dataclass(frozen=True)
class AblationResult:
    """Job times with each mechanism removed, against the full design."""

    workload: str
    input_bytes: int
    full_sec: float
    without: dict[str, float]

    def slowdown(self, mechanism: str) -> float:
        """Fractional slowdown from removing one mechanism."""
        return self.without[mechanism] / self.full_sec - 1.0

    def ranked(self) -> list[tuple[str, float]]:
        """Mechanisms by contribution, largest first."""
        return sorted(
            ((name, self.slowdown(name)) for name in self.without),
            key=lambda item: item[1], reverse=True,
        )


class AblatedDataMPIModel(DataMPIModel):
    """DataMPI timeline model with one mechanism disabled."""

    def __init__(self, disabled: str, slots: int = 4, seed: int = 0, spec=None):
        if disabled not in MECHANISMS:
            raise ConfigError(
                f"unknown mechanism {disabled!r}; choose from {MECHANISMS}"
            )
        super().__init__(slots=slots, seed=seed, spec=spec)
        self.disabled = disabled

    def _job(self, workload, profile, input_bytes, cost, tag):
        if self.disabled == "low_startup":
            # Pay Hadoop-style job submission and cleanup instead.
            extra = (HADOOP_CAL.job_setup_sec - DATAMPI_CAL.job_setup_sec) + (
                HADOOP_CAL.job_cleanup_sec - DATAMPI_CAL.job_cleanup_sec
            )
            yield self.engine.timeout(self.jitter(extra))
        yield from super()._job(workload, profile, input_bytes, cost, tag)

    def _o_task(self, split: Split, node: SimNode, pool, cost: TaskCost,
                profile: WorkloadProfile, spill_fraction: float):
        if self.disabled == "pipelining":
            # Sends no longer overlap compute: read+compute first, then the
            # network drain runs by itself (Hadoop-style phase separation).
            cal = DATAMPI_CAL
            yield pool.acquire()
            yield self.engine.timeout(
                self.jitter(cal.sched_round_sec + cal.task_launch_sec)
            )
            data_bytes = split.size * profile.decompress_ratio
            inter_task = data_bytes * profile.shuffle_ratio
            nodes = self.cluster.nodes
            remote = inter_task * (len(nodes) - 1) / len(nodes)
            peer = nodes[(node.node_id + 1) % len(nodes)]
            yield self.engine.all_of([
                self.hdfs.read_split(node, split),
                node.compute(
                    self.jitter(cost.cpu_per_mb * data_bytes / (1024 * 1024)),
                    threads=cost.threads, label="o.cpu",
                ),
                self.sys_cpu(node, cal, split.size + inter_task),
            ])
            if remote > 0:
                yield self.engine.all_of([
                    node.nic_out.transfer(remote, label="o.send"),
                    peer.nic_in.transfer(remote, label="o.recv"),
                ])
            if spill_fraction > 0:
                yield peer.write(inter_task * spill_fraction, "o.bufspill")
            pool.release()
            return
        if self.disabled == "memory_buffering":
            # All intermediate data goes through disk, like Hadoop's map
            # output: force a full spill regardless of the buffer budget.
            spill_fraction = 1.0
        yield from super()._o_task(split, node, pool, cost, profile, spill_fraction)

    def _a_task(self, index, node, pool, share_in, out_share, spill_fraction,
                profile):
        if self.disabled == "memory_buffering":
            spill_fraction = 1.0
        yield from super()._a_task(index, node, pool, share_in, out_share,
                                   spill_fraction, profile)


def ablated_datampi(workload: str, input_bytes: int, *, slots: int = 4,
                    seed: int = 0) -> AblationResult:
    """Run DataMPI with each mechanism removed in turn."""
    full = DataMPIModel(slots=slots, seed=seed).run(workload, input_bytes)
    without = {}
    for mechanism in MECHANISMS:
        outcome: SimOutcome = AblatedDataMPIModel(
            mechanism, slots=slots, seed=seed
        ).run(workload, input_bytes)
        without[mechanism] = outcome.result.elapsed_sec
    return AblationResult(
        workload=workload,
        input_bytes=input_bytes,
        full_sec=full.result.elapsed_sec,
        without=without,
    )

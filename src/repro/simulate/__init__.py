"""Discrete-event simulation kernel: engine, fair-share resources, tracing."""

from repro.simulate.engine import EPSILON, AllOf, Engine, Event, Process
from repro.simulate.resources import FairShareResource, Flow, SlotPool, waterfill
from repro.simulate.tracing import Tracer

__all__ = [
    "EPSILON",
    "AllOf",
    "Engine",
    "Event",
    "Process",
    "FairShareResource",
    "Flow",
    "SlotPool",
    "waterfill",
    "Tracer",
]

"""Fair-share resources for the cluster simulator.

The paper's testbed bottlenecks on a single SATA disk and a 1 GigE NIC per
node (Section 4.2: "the disk and network will easily become the bottleneck
in our testbed").  Every disk, NIC and CPU in this reproduction is a
:class:`FairShareResource`: concurrent *flows* share its capacity under
weighted max-min fairness (water-filling) with optional per-flow rate caps.
Contention between the 4 concurrent tasks per node — and therefore the
resource-utilization time series of Figure 4 — emerges from this one
mechanism rather than from per-framework special cases.

A *flow* transfers a fixed amount of work (bytes, or CPU core-seconds)
through the resource and triggers (as an :class:`~repro.simulate.engine.Event`)
when the work completes.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import SimulationError
from repro.simulate.engine import EPSILON, Engine, Event
from repro.simulate.tracing import Tracer


def waterfill(capacity: float, demands: list[tuple[float, float]]) -> list[float]:
    """Weighted max-min allocation with per-flow caps.

    ``demands`` is a list of ``(weight, cap)`` pairs; ``cap`` may be
    ``float('inf')``.  Returns the allocated rate for each flow, in order.
    The allocation is the classic water-filling: repeatedly grant every
    unsatisfied flow its weighted fair share of the remaining capacity;
    flows whose cap is below their share are frozen at their cap and the
    surplus is redistributed.

    >>> waterfill(10.0, [(1.0, float('inf')), (1.0, 2.0)])
    [8.0, 2.0]
    """
    n = len(demands)
    rates = [0.0] * n
    unsatisfied = list(range(n))
    remaining = capacity
    while unsatisfied and remaining > EPSILON:
        total_weight = sum(demands[i][0] for i in unsatisfied)
        if total_weight <= 0.0:
            break
        fair_unit = remaining / total_weight
        capped = [
            i for i in unsatisfied if demands[i][1] <= demands[i][0] * fair_unit + EPSILON
        ]
        if not capped:
            for i in unsatisfied:
                rates[i] = demands[i][0] * fair_unit
            return rates
        for i in capped:
            rates[i] = demands[i][1]
            remaining -= demands[i][1]
        unsatisfied = [i for i in unsatisfied if i not in set(capped)]
    return rates


class Flow(Event):
    """One transfer through a :class:`FairShareResource`.

    Triggers with the flow itself as value when ``amount`` units of work
    have been served.
    """

    __slots__ = ("resource", "amount", "remaining", "weight", "cap", "rate", "label")

    def __init__(
        self,
        resource: "FairShareResource",
        amount: float,
        weight: float,
        cap: float,
        label: str,
    ):
        super().__init__(resource.engine)
        self.resource = resource
        self.amount = amount
        self.remaining = amount
        self.weight = weight
        self.cap = cap
        self.rate = 0.0
        self.label = label


class FairShareResource:
    """A capacity shared by concurrent flows under weighted max-min fairness.

    Parameters
    ----------
    engine:
        The simulation engine.
    capacity:
        Service rate in units/second (bytes/s for disks and NICs,
        core-seconds/s — i.e. cores — for CPUs).
    name:
        Used in traces and error messages.
    tracer / series:
        If given, the total allocated rate is recorded as a step function
        under ``series`` whenever it changes, which is how the Figure 4
        throughput plots are produced.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        name: str = "resource",
        tracer: Tracer | None = None,
        series: str | None = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.tracer = tracer
        self.series = series or name
        self._flows: list[Flow] = []
        self._last_update = 0.0
        self._completion_token = 0  # invalidates stale completion callbacks
        self.total_served = 0.0

    # -- public API ---------------------------------------------------------

    def transfer(
        self,
        amount: float,
        cap: float | None = None,
        weight: float = 1.0,
        label: str = "",
    ) -> Flow:
        """Start a flow of ``amount`` units; returns its completion event.

        ``cap`` bounds the flow's individual rate (e.g. a single-threaded
        task can use at most 1.0 CPU core even on an idle 16-thread node).
        """
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        if weight <= 0:
            raise SimulationError(f"weight must be positive, got {weight}")
        flow = Flow(self, amount, weight, cap if cap is not None else float("inf"), label)
        if amount <= EPSILON:
            self.engine.schedule(0.0, lambda: flow.succeed(flow))
            return flow
        self._advance()
        self._flows.append(flow)
        self._reallocate()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def current_rate(self) -> float:
        """Total allocated rate right now (units/second)."""
        return sum(flow.rate for flow in self._flows)

    def utilization(self) -> float:
        """Current fraction of capacity in use, in [0, 1]."""
        return self.current_rate / self.capacity

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Progress all flows to the current time at their current rates."""
        elapsed = self.engine.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                served = flow.rate * elapsed
                flow.remaining = max(0.0, flow.remaining - served)
                self.total_served += served
        self._last_update = self.engine.now

    def _reallocate(self) -> None:
        """Recompute rates after a membership change and reschedule completion."""
        self._completion_token += 1
        if not self._flows:
            self._record_rate(0.0)
            return
        demands = [(flow.weight, flow.cap) for flow in self._flows]
        rates = waterfill(self.capacity, demands)
        for flow, rate in zip(self._flows, rates):
            flow.rate = rate
        self._record_rate(self.current_rate)

        # Schedule the earliest completion among flows that are progressing.
        finish_in = float("inf")
        for flow in self._flows:
            if flow.rate > EPSILON:
                finish_in = min(finish_in, flow.remaining / flow.rate)
            elif flow.remaining <= EPSILON:
                finish_in = 0.0
        if finish_in == float("inf"):
            raise SimulationError(
                f"resource {self.name!r} stalled with {len(self._flows)} flows"
            )
        token = self._completion_token
        self.engine.schedule(finish_in, lambda: self._on_completion(token))

    def _on_completion(self, token: int) -> None:
        if token != self._completion_token:
            return  # superseded by a later reallocation
        self._advance()
        done = [flow for flow in self._flows if flow.remaining <= EPSILON * max(1.0, flow.amount)]
        if not done:
            # Numerical corner: reschedule from fresh state.
            self._reallocate()
            return
        self._flows = [flow for flow in self._flows if flow not in set(done)]
        self._reallocate()
        for flow in done:
            flow.remaining = 0.0
            flow.succeed(flow)

    def _record_rate(self, rate: float) -> None:
        if self.tracer is not None:
            self.tracer.record_rate(self.series, self.engine.now, rate)


class SlotPool:
    """A counted pool of task slots with FIFO waiting.

    Models Hadoop's fixed map/reduce slots per TaskTracker and the
    fixed number of concurrent workers the paper configures per node.
    """

    def __init__(self, engine: Engine, slots: int, name: str = "slots"):
        if slots < 1:
            raise SimulationError(f"slot pool needs >= 1 slot, got {slots}")
        self.engine = engine
        self.capacity = slots
        self.name = name
        self.in_use = 0
        self._waiters: list[Event] = []

    def acquire(self) -> Event:
        """Event that triggers once a slot is held by the caller."""
        event = Event(self.engine)
        if self.in_use < self.capacity:
            self.in_use += 1
            self.engine.schedule(0.0, lambda: event.succeed(self))
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release on empty pool {self.name!r}")
        if self._waiters:
            event = self._waiters.pop(0)
            self.engine.schedule(0.0, lambda: event.succeed(self))
        else:
            self.in_use -= 1


def drain(engine: Engine, flows: Iterable[Flow]) -> Event:
    """Convenience: event that triggers when all given flows complete."""
    return engine.all_of(list(flows))

"""Time-series tracing for the cluster simulator.

The paper profiles CPU utilization, disk throughput, network throughput and
memory footprint over the progression of time (Figure 4).  The tracer
records two kinds of series:

* **rate series** — step functions written by
  :class:`~repro.simulate.resources.FairShareResource` whenever its total
  allocated rate changes (disk MB/s, network MB/s, CPU cores in use);
* **gauge series** — instantaneous levels written explicitly (memory
  footprint in bytes, number of I/O-blocked tasks).

Both are stored as ``(time, value)`` change points; sampling and
time-weighted averaging reconstruct the plots and the averages the paper
quotes ("the average CPU utilization during 0-117 seconds ...").
"""

from __future__ import annotations

from collections import defaultdict


class Tracer:
    """Records step-function series keyed by name."""

    def __init__(self) -> None:
        self._series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self._gauge_level: dict[str, float] = defaultdict(float)

    # -- writing -------------------------------------------------------------

    def record_rate(self, name: str, time: float, value: float) -> None:
        """Record that series ``name`` changed to ``value`` at ``time``."""
        points = self._series[name]
        if points and abs(points[-1][0] - time) < 1e-12:
            points[-1] = (time, value)
        else:
            points.append((time, value))

    def adjust_gauge(self, name: str, time: float, delta: float) -> float:
        """Add ``delta`` to a gauge series; returns the new level."""
        level = self._gauge_level[name] + delta
        self._gauge_level[name] = level
        self.record_rate(name, time, level)
        return level

    def set_gauge(self, name: str, time: float, value: float) -> None:
        """Set a gauge series to an absolute level."""
        self._gauge_level[name] = value
        self.record_rate(name, time, value)

    # -- reading -------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def changes(self, name: str) -> list[tuple[float, float]]:
        """Raw ``(time, value)`` change points for a series (may be empty)."""
        return list(self._series.get(name, []))

    def value_at(self, name: str, time: float) -> float:
        """Series value at ``time`` (0.0 before the first change point)."""
        value = 0.0
        for point_time, point_value in self._series.get(name, []):
            if point_time > time + 1e-12:
                break
            value = point_value
        return value

    def sample(self, name: str, t_end: float, dt: float = 1.0) -> list[tuple[float, float]]:
        """Sample the series every ``dt`` seconds over ``[0, t_end]``.

        Each sample is the *time-weighted average* over its interval, which
        matches how dstat-style monitors report per-second throughput.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        samples = []
        t = 0.0
        while t < t_end - 1e-9:
            hi = min(t + dt, t_end)
            samples.append((hi, self.average(name, t, hi)))
            t = hi
        return samples

    def average(self, name: str, t0: float, t1: float) -> float:
        """Time-weighted mean of the series over ``[t0, t1]``."""
        if t1 <= t0:
            return self.value_at(name, t0)
        points = self._series.get(name, [])
        total = 0.0
        prev_time, prev_value = t0, self.value_at(name, t0)
        for point_time, point_value in points:
            if point_time <= t0:
                continue
            if point_time >= t1:
                break
            total += prev_value * (point_time - prev_time)
            prev_time, prev_value = point_time, point_value
        total += prev_value * (t1 - prev_time)
        return total / (t1 - t0)

    def maximum(self, name: str, t0: float, t1: float) -> float:
        """Maximum value the series reaches within ``[t0, t1]``."""
        best = self.value_at(name, t0)
        for point_time, point_value in self._series.get(name, []):
            if t0 <= point_time <= t1:
                best = max(best, point_value)
        return best

    def integral(self, name: str, t0: float, t1: float) -> float:
        """Integral of the series over ``[t0, t1]`` (e.g. total bytes moved)."""
        return self.average(name, t0, t1) * (t1 - t0)

"""Discrete-event simulation kernel.

A tiny process-based engine in the style of SimPy: simulation processes are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  The engine is deliberately small — the interesting
modelling (contention, pipelining) lives in :mod:`repro.simulate.resources`
and in the framework timeline models built on top.

Example
-------
>>> engine = Engine()
>>> log = []
>>> def proc(engine):
...     yield engine.timeout(1.5)
...     log.append(engine.now)
>>> _ = engine.process(proc(engine))
>>> engine.run()
>>> log
[1.5]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.common.errors import SimulationError

#: Completion tolerance for floating-point work accounting.
EPSILON = 1e-9


class Event:
    """A one-shot event; callbacks run (in schedule order) once triggered."""

    __slots__ = ("engine", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Already fired: deliver asynchronously to preserve ordering.
            self.engine.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiter at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.schedule(0.0, lambda cb=callback: cb(self))
        return self


class AllOf(Event):
    """Event that triggers once every child event has triggered.

    ``value`` is the list of child values in the order given.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0 and not self.triggered:
                self.succeed(list(self._values))

        return on_child


class Process(Event):
    """A running simulation process wrapping a generator.

    A ``Process`` is itself an event that triggers with the generator's
    return value, so processes can ``yield`` other processes to join them.
    """

    __slots__ = ("name", "_generator")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        engine.schedule(0.0, lambda: self._step(None))

    def _step(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.add_callback(lambda event: self._step(event.value))


class Engine:
    """Event loop with a monotonically non-decreasing clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._active_processes = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < -EPSILON:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + max(delay, 0.0), next(self._sequence), callback)
        )

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Event that triggers after ``delay`` simulated seconds."""
        event = Event(self)
        self.schedule(delay, lambda: event.succeed(value))
        return event

    def event(self) -> Event:
        """A manually-triggered event (used for joins and handshakes)."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a simulation process from a generator."""
        return Process(self, generator, name)

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains (or the clock passes ``until``).

        Returns the final simulation time.
        """
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if when < self.now - EPSILON:
                raise SimulationError("time went backwards")
            self.now = max(self.now, when)
            callback()
        return self.now

#!/usr/bin/env python
"""K-means: the e-commerce application benchmark (Section 4.6).

Generates sparse document vectors from the five amazon seed models
(genData_Kmeans), trains Mahout-style iterative K-means on all three
engines, verifies they converge to identical centroids, demonstrates
DataMPI's Iteration mode (kept-alive ranks + cross-iteration KV cache)
moving strictly fewer bytes per iteration than the one-job-per-iteration
Common mode, scores cluster purity against the hidden category labels,
and reproduces the Figure 6(a) first-iteration comparison on the
simulated testbed.

Run:  python examples/kmeans_clustering.py
"""

from repro.bigdatabench import generate_kmeans_vectors
from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import simulate
from repro.workloads import kmeans_iterative_job, kmeans_reference, run_kmeans


def main() -> None:
    print("=== functional K-means on amazon1-amazon5 vectors ===")
    vectors, labels = generate_kmeans_vectors(150, seed=11)
    print(f"generated {len(vectors)} sparse vectors "
          f"(avg {sum(v.num_nonzero for v in vectors) / len(vectors):.0f} nonzeros)")

    reference = kmeans_reference(vectors, k=5, max_iterations=15, seed=2)
    print(f"reference converged after {reference.iterations} iterations")

    for engine in ("hadoop", "spark", "datampi"):
        result = run_kmeans(engine, vectors, k=5, max_iterations=15, seed=2)
        drift = max(
            mine.squared_distance(ref) ** 0.5
            for mine, ref in zip(result.centroids, reference.centroids)
        )
        print(f"  {engine:<8} iterations={result.iterations} "
              f"max centroid drift vs reference={drift:.2e}")

    print("\n=== DataMPI Iteration mode vs one-job-per-iteration ===")
    iter_result, iter_stats = kmeans_iterative_job(
        vectors, k=5, max_iterations=15, seed=2, mode="iteration"
    )
    common_result, common_stats = kmeans_iterative_job(
        vectors, k=5, max_iterations=15, seed=2, mode="common"
    )
    identical = [c.weights for c in iter_result.centroids] == \
        [c.weights for c in common_result.centroids]
    print(f"iteration-mode centroids byte-identical to common mode: {identical}")
    rows = [
        [str(record["superstep"]),
         f"{common_stats.per_iteration[index]['mode.bytes_moved']:,}",
         f"{record['mode.bytes_moved']:,}",
         f"{record['cache.hit_bytes']:,}"]
        for index, record in enumerate(iter_stats.per_iteration)
    ]
    print(render_table(
        ["iteration", "common bytes", "iteration bytes", "cache-hit bytes"], rows
    ))
    saved = common_stats.counters["mode.bytes_moved"] - \
        iter_stats.counters["mode.bytes_moved"]
    print(f"cross-iteration cache saved {saved:,} bytes "
          f"({len(iter_stats.per_iteration)} iterations)")

    # Cluster purity against the hidden seed-model labels.
    assignments = [reference.assign(v) for v in vectors]
    purity = 0
    for cluster in range(5):
        members = [labels[i] for i, a in enumerate(assignments) if a == cluster]
        if members:
            purity += max(members.count(lbl) for lbl in set(members))
    print(f"cluster purity vs true categories: {purity / len(vectors):.0%}")

    print("\n=== simulated first-iteration times, Figure 6(a) "
          "(paper: DataMPI <=39% over Hadoop, <=33% over Spark) ===")
    rows = []
    for size_gb in (8, 16, 32, 64):
        row = [f"{size_gb}GB"]
        times = {}
        for framework in ("hadoop", "spark", "datampi"):
            run = simulate(framework, "kmeans", size_gb * GB, executions=3)
            times[framework] = run.elapsed_sec
            row.append(f"{run.elapsed_sec:.0f}s")
        row.append(f"{1 - times['datampi'] / times['hadoop']:.0%}")
        rows.append(row)
    print(render_table(["size", "hadoop", "spark", "datampi", "D vs H"], rows))


if __name__ == "__main__":
    main()

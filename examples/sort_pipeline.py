#!/usr/bin/env python
"""Text Sort end to end: DataMPI's bipartite O/A model plus the Figure 4 traces.

The paper's flagship case is the 8 GB Text Sort (Section 4.4).  This
example shows both halves of the reproduction on that workload:

* the *functional* DataMPI library sorting real generated text with a
  range partitioner (globally ordered output across A tasks), including
  checkpoint/restart fault tolerance;
* the *simulated* testbed producing the job timeline and the per-second
  resource-utilization series behind Figure 4(a-d).

Run:  python examples/sort_pipeline.py
"""

import tempfile

from repro.bigdatabench import TextGenerator
from repro.common.units import GB
from repro.datampi import DataMPIConf, DataMPIJob, RangePartitioner
from repro.experiments import fig4_sort, profile_table


def functional_sort() -> None:
    print("=== functional DataMPI Text Sort (with checkpoint/restart) ===")
    lines = TextGenerator(seed=7).lines(3_000)

    def o_task(ctx, split):
        for line in split:
            ctx.send(line, None)  # MPI_D_Send(key, value)

    def a_task(ctx):
        return [kv.key for kv in ctx]  # records arrive key-ordered

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        conf = DataMPIConf(
            num_o=4, num_a=4,
            partitioner=RangePartitioner(lines[:500], 4),
            checkpoint_dir=checkpoint_dir,
            job_name="text-sort",
        )
        job = DataMPIJob(o_task, a_task, conf)
        splits = [lines[i::4] for i in range(4)]
        result = job.run(splits)

        merged = [line for output in result.outputs for line in output]
        print(f"  sorted {len(merged)} lines; globally ordered: {merged == sorted(lines)}")
        print(f"  intermediate data moved: {result.counters['o.bytes_sent'] / 1024:.0f} KB "
              f"in {result.counters['o.chunks_sent']} pipelined chunks")

        # Fault tolerance: re-run only the A phase from the checkpoint.
        restarted = job.restart()
        re_merged = [line for output in restarted.outputs for line in output]
        print(f"  restart from checkpoint reproduces output: {re_merged == merged}")


def simulated_sort() -> None:
    print("\n=== simulated 8GB Text Sort on the paper's testbed ===")
    profiles = fig4_sort()
    print(profile_table(profiles))
    datampi = profiles["datampi"]
    t0, t1 = datampi.phase_window
    print(f"\nDataMPI O phase: {t1 - t0:.0f}s (paper: 28s); "
          f"total {datampi.elapsed_sec:.0f}s (paper: 69s)")
    print("\nDataMPI network throughput over time (MB/s, per node):")
    series = datampi.series["net_in_mbps"]
    peak = max(v for _, v in series) or 1.0
    for t, value in series[:: max(1, len(series) // 12)]:
        bar = "#" * int(38 * value / peak)
        print(f"  {t:6.0f}s | {bar} {value:.0f}")


if __name__ == "__main__":
    functional_sort()
    simulated_sort()

#!/usr/bin/env python
"""Streaming Grep: BigDataBench's Grep over an unbounded line stream.

The batch Grep of Section 3.1 reads its whole input up front.  This
example feeds the same O/A tasks a *generator* of wiki-style lines
through DataMPI's Streaming execution mode: the root admits a bounded
window of splits at a time, the O->A pipeline counts pattern matches for
that window, and the window is flushed with a watermark before the next
is admitted — memory stays bounded no matter how long the stream runs.
Summing the per-window counts reproduces the batch answer exactly.

Run:  python examples/streaming_grep.py
"""

from repro.bigdatabench import TextGenerator
from repro.experiments import render_table
from repro.workloads import grep_reference, grep_streaming, merge_window_counts

PATTERN = r"ba[a-z]*"
TOTAL_LINES = 1_200
LINES_PER_SPLIT = 60


def line_stream(total: int):
    """An unbounded-style source: lines are produced as they are pulled."""
    generator = TextGenerator(seed=9)
    for line in generator.lines(total):
        yield line


def main() -> None:
    print(f"=== streaming grep, pattern {PATTERN!r} ===")
    result = grep_streaming(
        line_stream(TOTAL_LINES), PATTERN,
        parallelism=4, lines_per_split=LINES_PER_SPLIT,
    )

    rows = []
    for window in result.windows:
        matches = sum(count for _match, count in window.merged_outputs())
        distinct = len(window.merged_outputs())
        rows.append([str(window.watermark), str(matches), str(distinct),
                     f"{window.counters['o.bytes_sent']:,}"])
    print(render_table(
        ["watermark", "matches", "distinct", "shuffle bytes"], rows
    ))

    totals = merge_window_counts(result)
    batch = grep_reference(TextGenerator(seed=9).lines(TOTAL_LINES), PATTERN)
    print(f"windows flushed: {len(result.windows)} "
          f"(bounded at {LINES_PER_SPLIT} lines/split)")
    print(f"stream total matches: {sum(totals.values())}; "
          f"matches batch grep: {totals == batch}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Naive Bayes: the social-network application benchmark (Section 4.6).

Trains the Mahout-style multi-job Naive Bayes pipeline on Hadoop and
DataMPI (the paper's BigDataBench release has no Spark implementation),
verifies the two engines build bit-identical models, classifies held-out
documents, and reproduces the Figure 6(b) comparison on the simulated
testbed.

Run:  python examples/naive_bayes_classify.py
"""

from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import simulate
from repro.workloads import generate_labeled_documents, run_naive_bayes


def main() -> None:
    print("=== functional Naive Bayes on amazon1-amazon5 documents ===")
    documents = generate_labeled_documents(300, words_per_doc=30, seed=17)
    train, test = documents[:240], documents[240:]
    print(f"{len(train)} training documents over 5 categories, {len(test)} held out")

    hadoop_model = run_naive_bayes("hadoop", train)
    datampi_model = run_naive_bayes("datampi", train)
    identical = (
        hadoop_model.class_term_counts == datampi_model.class_term_counts
        and hadoop_model.class_doc_counts == datampi_model.class_doc_counts
    )
    print(f"hadoop and datampi pipelines build identical models: {identical}")
    print(f"vocabulary size: {len(datampi_model.vocabulary)}")
    print(f"held-out accuracy: {datampi_model.accuracy(test):.0%}")

    sample = test[0]
    predicted = datampi_model.classify(sample.tokens)
    print(f"sample doc (true class {sample.label}): predicted {predicted}")

    print("\n=== simulated training times, Figure 6(b) "
          "(paper: DataMPI ~33% faster than Hadoop on average) ===")
    rows = []
    improvements = []
    for size_gb in (8, 16, 32, 64):
        hadoop = simulate("hadoop", "naive_bayes", size_gb * GB, executions=3)
        datampi = simulate("datampi", "naive_bayes", size_gb * GB, executions=3)
        improvement = 1 - datampi.elapsed_sec / hadoop.elapsed_sec
        improvements.append(improvement)
        rows.append([f"{size_gb}GB", f"{hadoop.elapsed_sec:.0f}s",
                     f"{datampi.elapsed_sec:.0f}s", f"{improvement:.0%}"])
    print(render_table(["size", "hadoop", "datampi", "improvement"], rows))
    print(f"average improvement: {sum(improvements) / len(improvements):.0%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Small-job latency: why framework overhead matters (Section 4.5).

"More than 90% of MapReduce jobs in Facebook and Yahoo! are small jobs"
— this example decomposes where a tiny 128 MB job's time goes on each
framework (startup, work, cleanup) and reproduces Figure 5.

Run:  python examples/small_jobs_latency.py
"""

from repro.common.units import MB
from repro.experiments import fig5, render_table
from repro.perfmodels import get_calibration, simulate


def main() -> None:
    print("=== framework overhead anatomy (per-job constants) ===")
    rows = []
    for framework in ("hadoop", "spark", "datampi"):
        cal = get_calibration(framework)
        rows.append([
            framework,
            f"{cal.job_setup_sec:.1f}s",
            f"{cal.sched_round_sec:.1f}s",
            f"{cal.task_launch_sec:.1f}s",
            f"{cal.job_cleanup_sec:.1f}s",
        ])
    print(render_table(
        ["framework", "job setup", "sched round", "task launch", "cleanup"], rows
    ))

    print("\n=== Figure 5: 128MB jobs, one task/worker per node ===")
    data = fig5(executions=3)
    rows = []
    for workload in ("text_sort", "wordcount", "grep"):
        by_framework = data[workload]
        rows.append([
            workload,
            f"{by_framework['hadoop']:.1f}s",
            f"{by_framework['spark']:.1f}s",
            f"{by_framework['datampi']:.1f}s",
            f"{1 - by_framework['datampi'] / by_framework['hadoop']:.0%}",
        ])
    print(render_table(["workload", "hadoop", "spark", "datampi", "D vs H"], rows))

    improvements = [1 - data[w]["datampi"] / data[w]["hadoop"] for w in data]
    print(f"\naverage DataMPI improvement over Hadoop: "
          f"{sum(improvements) / len(improvements):.0%} (paper: 54%)")

    print("\n=== phase breakdown of one small DataMPI job ===")
    run = simulate("datampi", "grep", 128 * MB, slots=1, executions=1)
    for phase, duration in run.phases.items():
        print(f"  {phase}: {duration:.1f}s")
    print(f"  total: {run.elapsed_sec:.1f}s")


if __name__ == "__main__":
    main()

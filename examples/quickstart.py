#!/usr/bin/env python
"""Quickstart: the same WordCount on all three engines, then at cluster scale.

This is the 5-minute tour of the library:

1. generate BigDataBench-style text with the ``lda_wiki1w`` seed model;
2. run WordCount on the *functional* Hadoop, Spark, and DataMPI engines
   and check they agree;
3. run the same WordCount through DataMPI's Streaming execution mode
   (windowed, watermark-flushed) and check the window totals agree too;
4. replay the same workload at the paper's 32 GB scale on the simulated
   8-node testbed and reproduce the Figure 3(c) comparison.

Run:  python examples/quickstart.py
"""

from repro.bigdatabench import TextGenerator
from repro.common.units import GB
from repro.experiments import render_table
from repro.perfmodels import simulate
from repro.workloads import (
    merge_window_counts,
    run_wordcount,
    wordcount_reference,
    wordcount_streaming,
)


def main() -> None:
    # -- 1. generate data -----------------------------------------------------
    generator = TextGenerator(seed=42)
    lines = generator.lines(2_000)
    print(f"generated {len(lines)} lines of wiki-style text")
    print(f"  e.g. {lines[0][:60]!r}")

    # -- 2. functional engines ------------------------------------------------
    expected = wordcount_reference(lines)
    print(f"\ndistinct words: {len(expected)}")
    for engine in ("hadoop", "spark", "datampi"):
        counts = run_wordcount(engine, lines, parallelism=4)
        status = "OK" if counts == expected else "MISMATCH"
        print(f"  {engine:<8} -> {len(counts)} words, result {status}")

    # -- 3. streaming execution mode ------------------------------------------
    stream = wordcount_streaming(iter(lines), parallelism=4, lines_per_split=250)
    status = "OK" if merge_window_counts(stream) == expected else "MISMATCH"
    print(f"\nstreaming mode: {len(stream.windows)} windows flushed, "
          f"totals {status}")

    # -- 4. simulated testbed at paper scale ----------------------------------
    print("\n32GB WordCount on the simulated 8-node testbed "
          "(paper: Hadoop 275s, Spark 130s, DataMPI 130s):")
    rows = []
    for framework in ("hadoop", "spark", "datampi"):
        run = simulate(framework, "wordcount", 32 * GB, executions=3)
        rows.append([framework, f"{run.elapsed_sec:.0f}s"])
    print(render_table(["framework", "job time"], rows))


if __name__ == "__main__":
    main()

"""Tests for the datampi-repro command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "WordCount" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "Xeon" in capsys.readouterr().out

    def test_run_fig5_fast(self, capsys):
        assert main(["run", "fig5", "--executions", "1"]) == 0
        out = capsys.readouterr().out
        assert "datampi" in out


class TestSimulateCommand:
    def test_simulate_success(self, capsys):
        code = main(["simulate", "datampi", "grep", "4GB", "--executions", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "datampi grep 4GB" in out
        assert "o:" in out

    def test_simulate_oom_reports_failure(self, capsys):
        code = main(["simulate", "spark", "normal_sort", "8GB", "--executions", "1"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_simulate_rejects_bad_framework(self):
        with pytest.raises(SystemExit):
            main(["simulate", "flink", "grep", "1GB"])


class TestWorkloadCommand:
    def test_wordcount(self, capsys):
        assert main(["workload", "datampi", "wordcount", "--lines", "200"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_sort(self, capsys):
        assert main(["workload", "spark", "sort", "--lines", "100"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_grep(self, capsys):
        assert main(["workload", "hadoop", "grep", "--lines", "200"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "hadoop", "join"]) == 2


class TestWorkloadPool:
    def test_pooled_wordcount(self, capsys):
        assert main(["workload", "datampi", "wordcount", "--pool", "3",
                     "--lines", "120", "--transport", "thread"]) == 0
        out = capsys.readouterr().out
        assert "pooled wordcount" in out
        assert "jobs/s" in out and "p50" in out and "p99" in out
        assert "verified=True" in out

    def test_pooled_sort_and_grep(self, capsys):
        for name in ("sort", "grep"):
            assert main(["workload", "datampi", name, "--pool", "2",
                         "--lines", "80", "--transport", "thread"]) == 0
            assert "verified=True" in capsys.readouterr().out

    def test_pool_needs_datampi_common_mode(self, capsys):
        assert main(["workload", "hadoop", "wordcount", "--pool", "2"]) == 2
        assert "--pool needs the datampi engine" in capsys.readouterr().err
        assert main(["workload", "datampi", "wordcount", "--pool", "2",
                     "--mode", "streaming"]) == 2
        assert "common mode" in capsys.readouterr().err

    def test_pool_rejects_unsupported_workload_and_zero_jobs(self, capsys):
        assert main(["workload", "datampi", "kmeans", "--pool", "2"]) == 2
        assert "--pool supports" in capsys.readouterr().err
        assert main(["workload", "datampi", "wordcount", "--pool", "0"]) == 2
        assert "at least one submission" in capsys.readouterr().err


class TestWorkloadModes:
    def test_kmeans_iteration_mode(self, capsys):
        assert main(["workload", "datampi", "kmeans", "--mode", "iteration",
                     "--vectors", "60", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "cache served" in out

    def test_kmeans_common_mode_any_engine(self, capsys):
        assert main(["workload", "hadoop", "kmeans",
                     "--vectors", "60", "--k", "3"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_wordcount_streaming_mode(self, capsys):
        assert main(["workload", "datampi", "wordcount", "--mode", "streaming",
                     "--lines", "240"]) == 0
        out = capsys.readouterr().out
        assert "windows flushed" in out
        assert "verified=True" in out

    def test_grep_streaming_mode(self, capsys):
        assert main(["workload", "datampi", "grep", "--mode", "streaming",
                     "--lines", "240"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_mode_needs_datampi_engine(self, capsys):
        assert main(["workload", "spark", "wordcount",
                     "--mode", "iteration"]) == 2
        assert "datampi" in capsys.readouterr().err

    def test_sort_rejects_streaming(self, capsys):
        assert main(["workload", "datampi", "sort", "--mode", "streaming"]) == 2
        assert "common" in capsys.readouterr().err

    def test_wordcount_and_grep_reject_iteration(self, capsys):
        for name in ("wordcount", "grep"):
            assert main(["workload", "datampi", name,
                         "--mode", "iteration"]) == 2
            assert "common and streaming" in capsys.readouterr().err

    def test_kmeans_rejects_streaming(self, capsys):
        assert main(["workload", "datampi", "kmeans",
                     "--mode", "streaming"]) == 2
        assert "kmeans" in capsys.readouterr().err

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["workload", "datampi", "wordcount", "--mode", "turbo"]
            )


class TestExperimentCommand:
    def test_list_names_every_quick_cell(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans.iteration.datampi.tiny.inline" in out
        assert "wordcount.common.hadoop-model.small" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_rejects_unknown_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "run", "--spec", "nightly"])

    def test_spec_and_quick_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "run", "--spec", "full", "--quick"]
            )

    def test_report_without_matrix_fails_cleanly(self, capsys, tmp_path):
        assert main(["experiment", "report", "--out", str(tmp_path / "x")]) == 2
        assert "cannot load matrix" in capsys.readouterr().err

    def test_run_then_resume_then_report(self, capsys, tmp_path):
        out = str(tmp_path / "matrix")
        reports = str(tmp_path / "reports")
        assert main(["experiment", "run", "--quick", "--out", out]) == 0
        first = capsys.readouterr().out
        assert "32 cells" in first and "32 executed" in first
        assert "cross-engine outputs agree on 12/12" in first

        assert main(["experiment", "run", "--quick", "--out", out]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 32 resumed" in second

        assert main(["experiment", "report", "--out", out,
                     "--reports", reports]) == 0
        listed = capsys.readouterr().out
        for artifact in ("execution_time.json", "speedup.md",
                         "bytes_per_iteration.json", "timings.json",
                         "index.md"):
            assert artifact in listed

    def test_interrupt_exits_130_and_resumes(self, capsys, tmp_path,
                                             monkeypatch):
        """Ctrl-C mid-run: one-line message, exit 130, finished cells
        checkpointed so a re-run resumes instead of starting over."""
        from repro.experiments.matrix import MatrixRunner

        out = str(tmp_path / "matrix")
        original = MatrixRunner.execute_cell
        survived: list = []

        def dying(self, cell):
            if len(survived) >= 3:
                raise KeyboardInterrupt
            survived.append(cell.cell_id)
            return original(self, cell)

        monkeypatch.setattr(MatrixRunner, "execute_cell", dying)
        assert main(["experiment", "run", "--quick", "--out", out]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "resume" in captured.err
        assert "Traceback" not in captured.err

        monkeypatch.setattr(MatrixRunner, "execute_cell", original)
        assert main(["experiment", "run", "--quick", "--out", out]) == 0
        assert "3 resumed" in capsys.readouterr().out

    def test_negative_parallel_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "run", "--quick", "--parallel", "-2"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_run_parallel_resumes_serial_checkpoints(self, capsys, tmp_path):
        out = str(tmp_path / "matrix")
        assert main(["experiment", "run", "--quick", "--out", out,
                     "--parallel", "2"]) == 0
        first = capsys.readouterr().out
        assert "on 2 workers" in first and "32 executed" in first

        assert main(["experiment", "run", "--quick", "--out", out]) == 0
        second = capsys.readouterr().out
        assert "serially" in second and "0 executed, 32 resumed" in second

    def test_list_shows_checkpoint_status(self, capsys, tmp_path):
        out = str(tmp_path / "matrix")
        assert main(["experiment", "list", "--out", out]) == 0
        before = capsys.readouterr().out
        assert "pending" in before and "32 pending" in before

        assert main(["experiment", "run", "--quick", "--out", out,
                     "--parallel", "2"]) == 0
        capsys.readouterr()
        assert main(["experiment", "list", "--out", out]) == 0
        after = capsys.readouterr().out
        assert "32 done" in after and "pending" not in after.split("\n")[-2]


class TestDistributedExperimentCommands:
    def test_non_integer_parallel_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "run", "--quick", "--parallel", "many"])
        assert "expected an integer worker count" in capsys.readouterr().err

    def test_serve_and_parallel_conflict_is_one_line(self, capsys, tmp_path):
        assert main(["experiment", "run", "--quick",
                     "--out", str(tmp_path / "m"),
                     "--parallel", "4", "--serve", "127.0.0.1:0"]) == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "Traceback" not in err

    def test_worker_requires_join(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "worker"])

    def test_worker_without_parent_is_one_line_error(self, capsys):
        assert main(["experiment", "worker", "--join", "127.0.0.1:9",
                     "--connect-timeout", "0.3"]) == 2
        err = capsys.readouterr().err
        assert "no matrix parent serving" in err
        assert "Traceback" not in err

    def test_serve_run_completes_without_workers(self, capsys, tmp_path):
        out = str(tmp_path / "matrix")
        assert main(["experiment", "run", "--quick", "--out", out,
                     "--serve", "127.0.0.1:0"]) == 0
        output = capsys.readouterr().out
        assert "serving workers on 127.0.0.1:" in output
        assert "32 executed" in output


class TestWorkloadTransportOptions:
    def test_tcp_transport_runs_a_workload(self, capsys):
        assert main(["workload", "datampi", "wordcount", "--lines", "120",
                     "--transport", "tcp"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_hosts_spec_feeds_the_tcp_transport(self, capsys):
        assert main(["workload", "datampi", "wordcount", "--lines", "120",
                     "--transport", "tcp", "--hosts", "127.0.0.1"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_hosts_without_tcp_is_rejected(self, capsys):
        assert main(["workload", "datampi", "wordcount",
                     "--hosts", "127.0.0.1"]) == 2
        assert "--hosts/--port need --transport tcp" in capsys.readouterr().err

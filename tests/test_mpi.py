"""Tests for the in-process MPI substrate."""

import pytest

from repro.common import MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, Comm, World, mpi_run

# Named test tags (RPL003: no literal ints at send/recv call sites).
TAG_WRONG = 5
TAG_RIGHT = 9


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "hello")
                return None
            message = comm.recv(source=0)
            return message.payload

        results = mpi_run(2, main)
        assert results == [None, "hello"]

    def test_fifo_per_pair(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(1, i)
                return None
            return [comm.recv(source=0).payload for _ in range(10)]

        results = mpi_run(2, main)
        assert results[1] == list(range(10))

    def test_tag_matching_skips_other_tags(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "wrong", tag=TAG_WRONG)
                comm.send(1, "right", tag=TAG_RIGHT)
                return None
            first = comm.recv(source=0, tag=TAG_RIGHT).payload
            second = comm.recv(source=0, tag=TAG_WRONG).payload
            return (first, second)

        results = mpi_run(2, main)
        assert results[1] == ("right", "wrong")

    def test_any_source(self):
        def main(comm):
            if comm.rank in (0, 1):
                comm.send(2, comm.rank)
                return None
            sources = {comm.recv(source=ANY_SOURCE).source for _ in range(2)}
            return sources

        results = mpi_run(3, main)
        assert results[2] == {0, 1}

    def test_send_to_invalid_rank(self):
        def main(comm):
            comm.send(99, "x")

        with pytest.raises(MPIError):
            mpi_run(1, main)

    def test_recv_timeout_raises(self):
        def main(comm):
            comm.recv(source=0, timeout=0.05)

        with pytest.raises(MPIError):
            mpi_run(1, main)

    def test_negative_tag_rejected(self):
        def main(comm):
            comm.send(0, "x", tag=-3)

        with pytest.raises(MPIError):
            mpi_run(1, main)


class TestCollectives:
    def test_barrier_synchronizes(self):
        import threading
        counter = {"before": 0}
        lock = threading.Lock()

        def main(comm):
            with lock:
                counter["before"] += 1
            comm.barrier()
            # After the barrier every rank must observe all increments.
            with lock:
                return counter["before"]

        results = mpi_run(4, main)
        assert all(value == 4 for value in results)

    def test_bcast(self):
        def main(comm):
            value = "root-data" if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        assert mpi_run(3, main) == ["root-data"] * 3

    def test_gather(self):
        def main(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = mpi_run(4, main)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_allgather(self):
        def main(comm):
            return comm.allgather(comm.rank)

        assert mpi_run(3, main) == [[0, 1, 2]] * 3

    def test_alltoall(self):
        def main(comm):
            chunks = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
            return comm.alltoall(chunks)

        results = mpi_run(3, main)
        for dest in range(3):
            assert results[dest] == [f"{src}->{dest}" for src in range(3)]

    def test_alltoall_wrong_length(self):
        def main(comm):
            comm.alltoall(["only-one"])

        with pytest.raises(MPIError):
            mpi_run(2, main)

    def test_allreduce_sum(self):
        def main(comm):
            return comm.allreduce(comm.rank + 1)

        assert mpi_run(4, main) == [10] * 4

    def test_allreduce_custom_op(self):
        def main(comm):
            return comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)

        assert mpi_run(4, main) == [24] * 4


class TestLauncher:
    def test_results_by_rank(self):
        assert mpi_run(5, lambda comm: comm.rank ** 2) == [0, 1, 4, 9, 16]

    def test_extra_args(self):
        assert mpi_run(2, lambda comm, base: base + comm.rank, args=(100,)) == [100, 101]

    def test_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(MPIError, match="rank 1"):
            mpi_run(2, main)

    def test_failed_rank_breaks_barrier_for_peers(self):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("dead rank")
            comm.barrier()

        with pytest.raises(MPIError):
            mpi_run(2, main)

    def test_world_size_validation(self):
        with pytest.raises(MPIError):
            World(0)

    def test_rank_bounds(self):
        with pytest.raises(MPIError):
            Comm(World(2), 2)

"""Tests for the DFSIO benchmark model (Figure 2a substrate)."""

import pytest

from repro.common import ConfigError
from repro.common.units import GB, MB
from repro.hdfs.dfsio import (
    best_block_size,
    block_size_sweep,
    run_dfsio,
    writeback_efficiency,
)


class TestWritebackEfficiency:
    def test_small_blocks_full_efficiency(self):
        assert writeback_efficiency(64 * MB) == 1.0
        assert writeback_efficiency(256 * MB) == 1.0

    def test_large_blocks_throttled(self):
        assert writeback_efficiency(512 * MB) == pytest.approx(0.80)

    def test_monotone_nonincreasing(self):
        sizes = [64 * MB, 128 * MB, 256 * MB, 384 * MB, 512 * MB, 1024 * MB]
        values = [writeback_efficiency(s) for s in sizes]
        assert values == sorted(values, reverse=True)
        assert min(values) >= 0.72


class TestRunDFSIO:
    def test_write_produces_sane_throughput(self):
        result = run_dfsio(256 * MB, 5 * GB, mode="write")
        # Paper's Figure 2(a) peaks just under 30 MB/s.
        assert 15.0 < result.throughput_mbps < 35.0
        assert result.makespan_sec > 0
        assert result.total_bytes <= 5 * GB

    def test_read_faster_than_write(self):
        write = run_dfsio(256 * MB, 5 * GB, mode="write")
        read = run_dfsio(256 * MB, 5 * GB, mode="read")
        assert read.throughput_mbps > write.throughput_mbps

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            run_dfsio(256 * MB, 1 * GB, mode="append")

    def test_bad_num_files_rejected(self):
        with pytest.raises(ConfigError):
            run_dfsio(256 * MB, 1 * GB, num_files=0)

    def test_deterministic_given_seed(self):
        a = run_dfsio(128 * MB, 5 * GB, seed=7)
        b = run_dfsio(128 * MB, 5 * GB, seed=7)
        assert a.throughput_mbps == b.throughput_mbps


class TestFigure2aShape:
    def test_256mb_is_best_block_size(self):
        """The headline claim of Section 4.2: 256 MB wins."""
        results = block_size_sweep(
            [64 * MB, 128 * MB, 256 * MB, 512 * MB],
            [5 * GB, 10 * GB],
        )
        assert best_block_size(results) == 256 * MB

    def test_throughput_rises_from_64_to_256(self):
        results = block_size_sweep([64 * MB, 128 * MB, 256 * MB], [5 * GB])
        series = results[5 * GB]
        assert (
            series[64 * MB].throughput_mbps
            < series[128 * MB].throughput_mbps
            < series[256 * MB].throughput_mbps
        )

    def test_throughput_drops_at_512(self):
        results = block_size_sweep([256 * MB, 512 * MB], [10 * GB])
        series = results[10 * GB]
        assert series[512 * MB].throughput_mbps < series[256 * MB].throughput_mbps

    def test_input_size_has_minor_effect(self):
        """Figure 2(a)'s four lines are close to each other."""
        results = block_size_sweep([256 * MB], [5 * GB, 20 * GB])
        small = results[5 * GB][256 * MB].throughput_mbps
        large = results[20 * GB][256 * MB].throughput_mbps
        assert abs(small - large) / small < 0.25

"""Unit tests for repro.common.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import GB, KB, MB, TB, format_size, mb_per_sec, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("123") == 123

    def test_megabytes(self):
        assert parse_size("256MB") == 256 * MB

    def test_gigabytes_short_unit(self):
        assert parse_size("8G") == 8 * GB

    def test_terabytes(self):
        assert parse_size("2TB") == 2 * TB

    def test_fractional(self):
        assert parse_size("1.5KB") == 1536

    def test_whitespace_and_case(self):
        assert parse_size("  64 mb ") == 64 * MB

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_passthrough(self):
        assert parse_size(10.9) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("eight gigabytes")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_size("3XB")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512B"

    def test_megabytes(self):
        assert format_size(256 * MB) == "256.0MB"

    def test_gigabytes(self):
        assert format_size(8 * GB) == "8.0GB"

    def test_kilobytes(self):
        assert format_size(2 * KB) == "2.0KB"

    @given(st.integers(min_value=1, max_value=10 * TB))
    def test_roundtrip_within_rounding(self, n):
        # format/parse round trip is exact to within the printed precision.
        text = format_size(n)
        parsed = parse_size(text)
        assert abs(parsed - n) <= max(0.06 * n, 1)


def test_mb_per_sec():
    assert mb_per_sec(50 * MB) == pytest.approx(50.0)

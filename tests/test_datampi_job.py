"""Integration tests for the DataMPI job driver: end-to-end O/A jobs."""

import pytest

from repro.common import ConfigError
from repro.common.errors import CheckpointError, MPIError
from repro.datampi import DataMPIConf, DataMPIJob, RangePartitioner


def wordcount_o(ctx, split):
    for line in split:
        for word in line.split():
            ctx.send(word, 1)


def wordcount_a(ctx):
    return [(key, sum(values)) for key, values in ctx.grouped()]


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
    "a fox and a dog",
]


class TestWordCountJob:
    def run_job(self, **conf_kwargs):
        conf = DataMPIConf(num_o=2, num_a=2, **conf_kwargs)
        job = DataMPIJob(wordcount_o, wordcount_a, conf)
        # two splits of two lines each
        return job.run([LINES[:2], LINES[2:]])

    def expected(self):
        counts = {}
        for line in LINES:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        return counts

    def test_counts_correct(self):
        result = self.run_job()
        counted = dict(result.merged_outputs())
        assert counted == self.expected()

    def test_with_combiner(self):
        result = self.run_job(combiner=lambda key, values: sum(values))
        assert dict(result.merged_outputs()) == self.expected()

    def test_counters_populated(self):
        result = self.run_job()
        total_words = sum(self.expected().values())
        assert result.counters["o.records_emitted"] == total_words
        assert result.counters["a.records_received"] == total_words
        assert result.counters["o.bytes_sent"] > 0

    def test_combiner_reduces_traffic(self):
        plain = self.run_job()
        combined = self.run_job(combiner=lambda key, values: sum(values))
        assert (
            combined.counters["a.records_received"]
            <= plain.counters["a.records_received"]
        )

    def test_outputs_partitioned_disjointly(self):
        result = self.run_job()
        seen = set()
        for output in result.outputs:
            keys = {key for key, _ in output}
            assert not keys & seen
            seen |= keys


class TestSortJob:
    def test_range_partitioned_total_order(self):
        values = [93, 5, 77, 12, 64, 3, 41, 88, 19, 50, 2, 71]

        def o_task(ctx, split):
            for item in split:
                ctx.send(item, None)

        def a_task(ctx):
            return [kv.key for kv in ctx]

        conf = DataMPIConf(
            num_o=2, num_a=3, partitioner=RangePartitioner(values, 3)
        )
        job = DataMPIJob(o_task, a_task, conf)
        result = job.run([values[:6], values[6:]])
        concatenated = [key for output in result.outputs for key in output]
        assert concatenated == sorted(values)

    def test_each_a_rank_sorted_even_with_hash_partitioner(self):
        values = list(range(40, 0, -1))

        def o_task(ctx, split):
            for item in split:
                ctx.send(item, None)

        def a_task(ctx):
            return [kv.key for kv in ctx]

        job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=2, num_a=2))
        result = job.run([values[:20], values[20:]])
        for output in result.outputs:
            assert output == sorted(output)
        assert sorted(v for out in result.outputs for v in out) == sorted(values)


class TestRecvAPI:
    def test_recv_returns_none_at_end(self):
        def o_task(ctx, split):
            ctx.send("only", 1)

        def a_task(ctx):
            records = []
            while (record := ctx.recv()) is not None:
                records.append(record)
            return records

        job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=1, num_a=1))
        result = job.run([None])
        assert [(kv.key, kv.value) for kv in result.outputs[0]] == [("only", 1)]


class TestSpillingJob:
    def test_large_job_spills_and_stays_correct(self):
        n = 3000

        def o_task(ctx, split):
            for i in split:
                ctx.send(f"key{i:06d}", i)

        def a_task(ctx):
            return [(kv.key, kv.value) for kv in ctx]

        conf = DataMPIConf(num_o=2, num_a=2, send_buffer_bytes=512, spill_bytes=2048)
        job = DataMPIJob(o_task, a_task, conf)
        result = job.run([range(0, n, 2), range(1, n, 2)])
        assert result.counters["a.spills"] > 0
        all_records = [kv for output in result.outputs for kv in output]
        assert len(all_records) == n
        assert sorted(value for _, value in all_records) == list(range(n))


class TestCheckpointRestart:
    def make_job(self, tmp_path):
        conf = DataMPIConf(
            num_o=2, num_a=2, checkpoint_dir=str(tmp_path / "ckpt"),
            combiner=lambda key, values: sum(values),
        )
        return DataMPIJob(wordcount_o, wordcount_a, conf)

    def test_restart_reproduces_outputs(self, tmp_path):
        job = self.make_job(tmp_path)
        original = job.run([LINES[:2], LINES[2:]])
        restarted = job.restart()
        assert sorted(original.merged_outputs()) == sorted(restarted.merged_outputs())

    def test_restart_without_checkpoint_dir_fails(self):
        job = DataMPIJob(wordcount_o, wordcount_a, DataMPIConf(num_o=1, num_a=1))
        with pytest.raises(ConfigError):
            job.restart()

    def test_restart_from_missing_dir_fails(self, tmp_path):
        job = DataMPIJob(wordcount_o, wordcount_a,
                         DataMPIConf(num_o=1, num_a=1))
        with pytest.raises(CheckpointError):
            job.restart(str(tmp_path / "nope"))

    def test_restart_wrong_width_fails(self, tmp_path):
        job = self.make_job(tmp_path)
        job.run([LINES[:2], LINES[2:]])
        narrow = DataMPIJob(
            wordcount_o, wordcount_a,
            DataMPIConf(num_o=2, num_a=3, checkpoint_dir=str(tmp_path / "ckpt")),
        )
        with pytest.raises(ConfigError):
            narrow.restart()


class TestFailurePropagation:
    def test_o_task_failure_surfaces(self):
        def bad_o(ctx, split):
            raise RuntimeError("o task crashed")

        job = DataMPIJob(bad_o, wordcount_a, DataMPIConf(num_o=1, num_a=1))
        with pytest.raises(MPIError, match="crashed"):
            job.run([None])

    def test_a_task_failure_surfaces(self):
        def bad_a(ctx):
            raise RuntimeError("a task crashed")

        job = DataMPIJob(wordcount_o, bad_a, DataMPIConf(num_o=1, num_a=1))
        with pytest.raises(MPIError, match="crashed"):
            job.run([LINES])


class TestConfValidation:
    def test_zero_sides_rejected(self):
        with pytest.raises(ConfigError):
            DataMPIConf(num_o=0)
        with pytest.raises(ConfigError):
            DataMPIConf(num_a=0)

    def test_bad_buffers_rejected(self):
        with pytest.raises(ConfigError):
            DataMPIConf(send_buffer_bytes=0)
        with pytest.raises(ConfigError):
            DataMPIConf(spill_bytes=0)

    def test_more_o_ranks_than_splits(self):
        job = DataMPIJob(wordcount_o, wordcount_a, DataMPIConf(num_o=4, num_a=2))
        result = job.run([LINES])  # one split, four O tasks
        counts = dict(result.merged_outputs())
        assert counts["the"] == 3

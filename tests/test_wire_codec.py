"""Property and adversarial tests for the typed binary wire codec.

The codec (:mod:`repro.mpi.transport.codec`) is the data-plane contract
shared by the tcp and shm transports: struct-packed headers, FMT_RAW
bytes that never touch pickle, pickle-5 out-of-band control payloads,
and batched small chunks.  These tests pin the format down two ways:

* **round-trip properties** (hypothesis): encode/decode is the identity
  for arbitrary payload objects, raw byte strings, and batches;
* **adversarial framing**: truncated headers, corrupt lengths, EOF and
  timeouts landing mid-frame must raise :class:`MPIError` (a torn
  stream), while clean EOF / clean timeout at a frame boundary keep
  their ordinary meanings.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MPIError
from repro.mpi.transport.codec import (
    FMT_PICKLE,
    FMT_RAW,
    WIRE_HEADER,
    decode_batch,
    decode_payload,
    encode_batch,
    encode_payload,
    recv_exact,
    recv_frame,
    send_frame,
)

TAG = st.integers(min_value=-(2**63), max_value=2**63 - 1)
PAYLOAD_OBJECTS = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.text(max_size=20)
    | st.binary(max_size=64),
    lambda inner: st.lists(inner, max_size=4)
    | st.tuples(inner, inner)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=10,
)


def _decode_parts(fmt: int, parts: list) -> object:
    return decode_payload(fmt, b"".join(bytes(p) for p in parts))


class TestPayloadRoundTrip:
    @given(payload=st.binary(max_size=4096))
    def test_bytes_go_raw_and_round_trip(self, payload: bytes):
        fmt, parts, total = encode_payload(payload)
        assert fmt == FMT_RAW
        assert total == len(payload)
        # The single part is the caller's buffer itself (zero-copy) and
        # is delivered verbatim — pickle never sees it.
        assert _decode_parts(fmt, parts) == payload

    @given(payload=PAYLOAD_OBJECTS)
    def test_objects_round_trip_through_pickle5(self, payload):
        fmt, parts, total = encode_payload(payload)
        assert fmt in (FMT_RAW, FMT_PICKLE)
        assert total == sum(memoryview(bytes(p)).nbytes for p in parts)
        assert _decode_parts(fmt, parts) == payload

    def test_buffer_bearing_object_uses_out_of_band_trailer(self):
        bulk = bytearray(b"x" * 4096)
        fmt, parts, _ = encode_payload(("meta", pickle.PickleBuffer(bulk)))
        assert fmt == FMT_PICKLE
        # The 4 KiB of bulk must ride a raw trailer, not the pickle body.
        body_len = struct.unpack_from(">Q", bytes(parts[1]))[0]
        assert body_len < 1024

    def test_memoryview_and_bytearray_are_raw(self):
        for payload in (bytearray(b"abc"), memoryview(b"abc")):
            fmt, parts, total = encode_payload(payload)
            assert fmt == FMT_RAW and total == 3
            assert _decode_parts(fmt, parts) == b"abc"

    def test_decoded_raw_is_inert_bytes(self):
        # A payload that *is* a valid pickle stream still comes back as
        # the literal bytes — FMT_RAW is never unpickled.
        evil = pickle.dumps({"boom": True})
        fmt, parts, _ = encode_payload(evil)
        out = _decode_parts(fmt, parts)
        assert out == evil and isinstance(out, bytes)


class TestPayloadCorruption:
    def test_unknown_format_rejected(self):
        with pytest.raises(MPIError, match="unknown payload format"):
            decode_payload(7, b"whatever")

    def test_truncated_header_rejected(self):
        with pytest.raises(MPIError, match="truncated control payload"):
            decode_payload(FMT_PICKLE, b"\x00\x00")

    def test_truncated_body_rejected(self):
        fmt, parts, _ = encode_payload({"k": 1})
        wire = b"".join(bytes(p) for p in parts)
        with pytest.raises(MPIError, match="cut short|truncated"):
            decode_payload(fmt, wire[:-1])

    def test_trailing_garbage_rejected(self):
        fmt, parts, _ = encode_payload({"k": 1})
        wire = b"".join(bytes(p) for p in parts)
        with pytest.raises(MPIError, match="trailing"):
            decode_payload(fmt, wire + b"\x00")

    def test_truncated_buffer_table_rejected(self):
        fmt, parts, _ = encode_payload(pickle.PickleBuffer(b"z" * 256))
        wire = b"".join(bytes(p) for p in parts)
        with pytest.raises(MPIError, match="out-of-band buffer|cut short"):
            decode_payload(fmt, wire[:-200])


class TestBatchRoundTrip:
    @given(items=st.lists(st.tuples(TAG, st.binary(max_size=256)), max_size=16))
    def test_batch_round_trips_tags_and_payloads(self, items):
        decoded = decode_batch(encode_batch(items))
        assert [(t, bytes(v)) for t, v in decoded] == items

    @given(items=st.lists(st.tuples(TAG, st.binary(max_size=64)), max_size=8))
    def test_batch_views_are_readonly_zero_copy(self, items):
        for _, view in decode_batch(encode_batch(items)):
            assert isinstance(view, memoryview) and view.readonly

    def test_truncated_item_header_rejected(self):
        wire = encode_batch([(1, b"abc")])
        with pytest.raises(MPIError, match="truncated batch item header"):
            decode_batch(bytes(wire)[: struct.calcsize(">qI") - 2])

    def test_corrupt_length_rejected(self):
        wire = bytearray(encode_batch([(1, b"abc")]))
        # Inflate the u32 length field past the actual payload.
        struct.pack_into(">I", wire, 8, 9999)
        with pytest.raises(MPIError, match="corrupt batch"):
            decode_batch(wire)

    def test_empty_batch_decodes_empty(self):
        assert decode_batch(encode_batch([])) == []


class _FrameSocket:
    """A socketpair where the test scripts the peer's raw bytes."""

    def __enter__(self):
        self.reader, self.writer = socket.socketpair()
        self.reader.settimeout(5.0)
        return self

    def __exit__(self, *exc):
        for sock in (self.reader, self.writer):
            sock.close()
        return False


class TestSocketFraming:
    def test_frame_round_trip_over_socketpair(self):
        with _FrameSocket() as pair:
            send_frame(pair.writer, 3, tag=7, obj={"step": 1}, source=2)
            send_frame(pair.writer, 4, tag=9, payload=b"raw-chunk")
            assert recv_frame(pair.reader) == (3, 7, {"step": 1})
            kind, tag, body = recv_frame(pair.reader)
            assert (kind, tag) == (4, 9)
            assert body == b"raw-chunk" and isinstance(body, bytes)

    def test_clean_eof_returns_none(self):
        with _FrameSocket() as pair:
            pair.writer.close()
            assert recv_frame(pair.reader) is None

    def test_eof_inside_header_is_torn_stream(self):
        with _FrameSocket() as pair:
            pair.writer.sendall(b"\x01\x00\x00")  # 3 of WIRE_HEADER.size bytes
            pair.writer.close()
            with pytest.raises(MPIError, match="closed mid-frame"):
                recv_frame(pair.reader)

    def test_eof_between_header_and_payload_is_torn_stream(self):
        with _FrameSocket() as pair:
            pair.writer.sendall(WIRE_HEADER.pack(1, FMT_RAW, 0, 0, 100))
            pair.writer.close()
            with pytest.raises(MPIError, match="missing payload"):
                recv_frame(pair.reader)

    def test_timeout_at_frame_boundary_stays_a_timeout(self):
        # Zero bytes consumed: the stream is still aligned, so a bounded
        # read gives up with the ordinary socket.timeout.
        with _FrameSocket() as pair:
            pair.reader.settimeout(0.05)
            with pytest.raises(socket.timeout):
                recv_frame(pair.reader)

    def test_timeout_mid_header_is_torn_stream(self):
        with _FrameSocket() as pair:
            pair.reader.settimeout(0.2)
            pair.writer.sendall(b"\x01\x00")  # partial header, then silence
            with pytest.raises(MPIError, match="stream misaligned"):
                recv_frame(pair.reader)

    def test_timeout_between_header_and_payload_is_torn_stream(self):
        with _FrameSocket() as pair:
            pair.reader.settimeout(0.2)
            pair.writer.sendall(WIRE_HEADER.pack(1, FMT_RAW, 0, 0, 64))
            with pytest.raises(MPIError, match="header and its payload"):
                recv_frame(pair.reader)

    def test_recv_exact_partial_then_timeout_is_torn_stream(self):
        with _FrameSocket() as pair:
            pair.reader.settimeout(0.2)
            pair.writer.sendall(b"1234")
            with pytest.raises(MPIError, match="timed out after 4 of 10"):
                recv_exact(pair.reader, 10)

    def test_oversized_length_field_rejected_by_reader(self):
        with _FrameSocket() as pair:
            pair.writer.sendall(WIRE_HEADER.pack(1, FMT_RAW, 0, 0, 1 << 40))
            with pytest.raises(MPIError, match="exceeds the .*cap"):
                recv_frame(pair.reader)

    def test_oversized_frame_rejected_locally_at_send(self):
        with _FrameSocket() as pair:
            with pytest.raises(MPIError, match="refusing to send"):
                send_frame(pair.writer, 1, payload=b"x" * 64, max_bytes=16)
            # Nothing was written: the peer sees only what comes next.
            send_frame(pair.writer, 2, payload=b"ok", max_bytes=1024)
            assert recv_frame(pair.reader) == (2, 0, b"ok")

    def test_crafted_pickle_bytes_stay_inert(self, tmp_path):
        flag = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (flag.write_text, ("boom",))

        wire = pickle.dumps(Evil())
        with _FrameSocket() as pair:
            # An FMT_RAW frame whose body is a working pickle bomb.
            pair.writer.sendall(
                WIRE_HEADER.pack(1, FMT_RAW, 0, 0, len(wire)) + wire
            )
            kind, _, body = recv_frame(pair.reader)
            assert kind == 1 and body == wire
        assert not flag.exists(), "FMT_RAW payload was unpickled"

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=1 << 16))
    def test_large_raw_frames_survive_vectored_writes(self, payload: bytes):
        with _FrameSocket() as pair:
            error: list[BaseException] = []

            def pump():
                try:
                    send_frame(pair.writer, 1, tag=5, payload=payload)
                except BaseException as exc:  # noqa: BLE001
                    error.append(exc)

            writer = threading.Thread(target=pump)
            writer.start()
            frame = recv_frame(pair.reader)
            writer.join(5.0)
            assert not error
            assert frame == (1, 5, payload)

"""Structural tests for the framework timeline models."""

import pytest

from repro.common import ConfigError, OutOfMemoryError, WorkloadError
from repro.common.units import GB, MB
from repro.perfmodels import (
    DataMPIModel,
    HadoopModel,
    SparkModel,
    disk_efficiency,
    get_calibration,
    get_profile,
    simulate,
    simulate_once,
)


class TestCalibrationTables:
    def test_all_frameworks_cover_all_workloads(self):
        workloads = ["text_sort", "normal_sort", "wordcount", "grep",
                     "kmeans", "naive_bayes"]
        for framework in ("hadoop", "spark", "datampi"):
            cal = get_calibration(framework)
            for workload in workloads:
                assert cal.map_cost(workload).cpu_per_mb > 0

    def test_unknown_framework_rejected(self):
        with pytest.raises(ConfigError):
            get_calibration("flink")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            get_calibration("hadoop").map_cost("terasort")

    def test_profiles_resolve(self):
        assert get_profile("text_sort").shuffle_ratio == 1.0
        assert get_profile("normal_sort").decompress_ratio > 3.0
        with pytest.raises(ConfigError):
            get_profile("unknown")

    def test_datampi_has_lowest_startup(self):
        setups = {fw: get_calibration(fw).job_setup_sec
                  for fw in ("hadoop", "spark", "datampi")}
        assert setups["datampi"] < setups["spark"] < setups["hadoop"]

    def test_disk_efficiency_monotone(self):
        values = [disk_efficiency(n) for n in range(1, 9)]
        assert values == sorted(values, reverse=True)
        assert disk_efficiency(4) == pytest.approx(0.86)

    def test_disk_efficiency_validation(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            disk_efficiency(0)


class TestSimulateOnce:
    def test_returns_phases(self):
        outcome = simulate_once("hadoop", "text_sort", 4 * GB)
        assert set(outcome.result.phases) == {"map", "reduce"}
        assert outcome.result.elapsed_sec > 0

    def test_datampi_phases(self):
        outcome = simulate_once("datampi", "text_sort", 4 * GB)
        assert set(outcome.result.phases) == {"o", "a"}

    def test_spark_phases(self):
        outcome = simulate_once("spark", "wordcount", 4 * GB)
        assert set(outcome.result.phases) == {"stage0", "stage1"}

    def test_deterministic_for_same_seed(self):
        a = simulate_once("datampi", "grep", 8 * GB, seed=5)
        b = simulate_once("datampi", "grep", 8 * GB, seed=5)
        assert a.result.elapsed_sec == b.result.elapsed_sec

    def test_jitter_varies_with_seed(self):
        a = simulate_once("datampi", "grep", 8 * GB, seed=1)
        b = simulate_once("datampi", "grep", 8 * GB, seed=2)
        assert a.result.elapsed_sec != b.result.elapsed_sec

    def test_unknown_framework(self):
        with pytest.raises(WorkloadError):
            simulate_once("flink", "grep", 1 * GB)

    def test_spark_naive_bayes_unsupported(self):
        with pytest.raises(WorkloadError):
            simulate_once("spark", "naive_bayes", 1 * GB)

    def test_naive_bayes_runs_pipeline_of_jobs(self):
        outcome = simulate_once("hadoop", "naive_bayes", 8 * GB)
        map_phases = [name for name in outcome.result.phases if name.startswith("map")]
        assert len(map_phases) == 5  # five chained MapReduce jobs

    def test_models_scale_with_input(self):
        for framework in ("hadoop", "spark", "datampi"):
            small = simulate_once(framework, "grep", 8 * GB)
            large = simulate_once(framework, "grep", 32 * GB)
            assert large.result.elapsed_sec > small.result.elapsed_sec

    def test_invalid_slots(self):
        with pytest.raises(ConfigError):
            HadoopModel(slots=0)


class TestSparkOOMGates:
    """Section 4.3's failure matrix, exactly."""

    @pytest.mark.parametrize("size_gb", [4, 8, 16, 32])
    def test_normal_sort_always_oom(self, size_gb):
        outcome = simulate_once("spark", "normal_sort", size_gb * GB)
        assert outcome.result.failed
        assert "OutOfMemory" in outcome.result.failure

    def test_text_sort_8gb_succeeds(self):
        outcome = simulate_once("spark", "text_sort", 8 * GB)
        assert outcome.result.succeeded

    @pytest.mark.parametrize("size_gb", [16, 32, 64])
    def test_text_sort_above_8gb_oom(self, size_gb):
        outcome = simulate_once("spark", "text_sort", size_gb * GB)
        assert outcome.result.failed

    def test_wordcount_never_oom(self):
        outcome = simulate_once("spark", "wordcount", 64 * GB)
        assert outcome.result.succeeded

    def test_kmeans_never_oom(self):
        """Cached RDDs are evictable, so K-means runs at every size."""
        outcome = simulate_once("spark", "kmeans", 64 * GB)
        assert outcome.result.succeeded


class TestAveragedRuns:
    def test_three_executions_averaged(self):
        run = simulate("datampi", "grep", 8 * GB, executions=3)
        singles = [simulate_once("datampi", "grep", 8 * GB, seed=i).result.elapsed_sec
                   for i in range(3)]
        assert run.elapsed_sec == pytest.approx(sum(singles) / 3)

    def test_invalid_executions(self):
        with pytest.raises(WorkloadError):
            simulate("datampi", "grep", 1 * GB, executions=0)

    def test_failed_flag_propagates(self):
        run = simulate("spark", "normal_sort", 8 * GB, executions=2)
        assert run.failed
        assert run.failure is not None


class TestResourceAccounting:
    def test_sort_moves_expected_disk_volume(self):
        """Input read once per node + output written with 3 replicas."""
        outcome = simulate_once("datampi", "text_sort", 8 * GB)
        cluster = outcome.cluster
        total_read = sum(n.disk_read.total_served for n in cluster.nodes)
        total_write = sum(n.disk_write.total_served for n in cluster.nodes)
        assert total_read == pytest.approx(8 * GB, rel=0.01)
        assert total_write == pytest.approx(3 * 8 * GB, rel=0.01)

    def test_hadoop_writes_more_than_datampi(self):
        """The spill/merge passes the paper blames for Hadoop's slowness."""
        hadoop = simulate_once("hadoop", "text_sort", 8 * GB)
        datampi = simulate_once("datampi", "text_sort", 8 * GB)
        hadoop_writes = sum(n.disk_write.total_served for n in hadoop.cluster.nodes)
        datampi_writes = sum(n.disk_write.total_served for n in datampi.cluster.nodes)
        assert hadoop_writes > datampi_writes * 1.3

    def test_datampi_shuffles_during_o_phase(self):
        """Pipelining: most network traffic lands inside the O phase."""
        outcome = simulate_once("datampi", "text_sort", 8 * GB)
        cluster = outcome.cluster
        t0, t1 = outcome.phases["o"]
        in_phase_mb = cluster.network_mbps(t0, t1) * (t1 - t0)
        # Expected shuffle volume: 7/8 of the data leaves its node, counted
        # in both NIC directions (the remainder of the job's traffic is
        # output replication, which happens in the A phase).
        expected_shuffle_mb = 2 * (7 / 8) * 8 * 1024 / 8
        assert in_phase_mb > 0.9 * expected_shuffle_mb

    def test_memory_returns_to_baseline(self):
        outcome = simulate_once("hadoop", "grep", 8 * GB)
        for node in outcome.cluster.nodes:
            assert node.memory_used == get_calibration("hadoop").base_memory

    def test_wordcount_network_negligible(self):
        """Section 4.4: D/H WordCount have 'few network overhead'."""
        for framework in ("hadoop", "datampi"):
            outcome = simulate_once(framework, "wordcount", 32 * GB)
            assert outcome.cluster.network_mbps(0, outcome.result.elapsed_sec) < 6.0

    def test_spark_wordcount_has_network_traffic(self):
        """...while Spark shows ~25 MB/s from locality misses."""
        outcome = simulate_once("spark", "wordcount", 32 * GB)
        assert outcome.cluster.network_mbps(0, outcome.result.elapsed_sec) > 10.0

"""Tests for the ASCII figure renderers."""

import pytest

from repro.common.config import RunResult
from repro.experiments import ascii_radar, ascii_series, ascii_sweep
from repro.perfmodels.runner import AveragedRun


def make_run(framework, seconds, failed=False):
    return AveragedRun(
        framework=framework, workload="w", input_bytes=1 << 30,
        elapsed_sec=seconds, failed=failed,
        failure="OOM" if failed else None,
    )


class TestAsciiSeries:
    def test_renders_peak_row(self):
        series = [(float(t), float(t % 5)) for t in range(1, 61)]
        chart = ascii_series(series, title="demo")
        assert chart.startswith("demo")
        assert "#" in chart
        assert "60s" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_series([], title="x")

    def test_flat_zero_series_does_not_crash(self):
        chart = ascii_series([(1.0, 0.0), (2.0, 0.0)])
        assert "+" in chart


class TestAsciiSweep:
    def test_renders_bars_and_oom(self):
        series = {
            "hadoop": {1 << 30: make_run("hadoop", 100.0)},
            "spark": {1 << 30: make_run("spark", 0.0, failed=True)},
            "datampi": {1 << 30: make_run("datampi", 60.0)},
        }
        chart = ascii_sweep(series, title="sweep")
        assert "H #" in chart
        assert "S OOM" in chart
        assert "D #" in chart
        assert "100s" in chart

    def test_bar_lengths_ordered(self):
        series = {
            "hadoop": {1 << 30: make_run("hadoop", 100.0)},
            "datampi": {1 << 30: make_run("datampi", 50.0)},
        }
        chart = ascii_sweep(series)
        hadoop_bar = next(l for l in chart.splitlines() if l.strip().startswith("H"))
        datampi_bar = next(l for l in chart.splitlines() if l.strip().startswith("D"))
        assert hadoop_bar.count("#") > datampi_bar.count("#")


class TestAsciiRadar:
    def test_renders_all_axes(self):
        scores = {
            "axis1": {"hadoop": 0.5, "spark": 0.8, "datampi": 1.0},
            "axis2": {"hadoop": 1.0, "spark": 0.9, "datampi": 0.95},
        }
        chart = ascii_radar(scores, ["axis1", "axis2"])
        assert "axis1" in chart and "axis2" in chart
        assert chart.count("H ") == 2
        assert "1.00" in chart

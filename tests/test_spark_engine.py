"""Tests for the functional Spark engine: RDDs, lineage, memory, stages."""

import pytest

from repro.common import OutOfMemoryError, ReproError
from repro.spark import (
    MemoryManager,
    ShuffledRDD,
    SparkContext,
    build_stages,
    estimate_bytes,
    num_stages,
)


def make_ctx(**kwargs):
    kwargs.setdefault("default_parallelism", 3)
    return SparkContext(**kwargs)


class TestNarrowTransformations:
    def test_map_collect(self):
        rdd = make_ctx().parallelize(range(10)).map(lambda x: x * 2)
        assert sorted(rdd.collect()) == [x * 2 for x in range(10)]

    def test_flat_map(self):
        rdd = make_ctx().parallelize(["a b", "c"]).flat_map(str.split)
        assert sorted(rdd.collect()) == ["a", "b", "c"]

    def test_filter(self):
        rdd = make_ctx().parallelize(range(20)).filter(lambda x: x % 5 == 0)
        assert sorted(rdd.collect()) == [0, 5, 10, 15]

    def test_map_values_and_keys(self):
        pairs = make_ctx().parallelize([("a", 1), ("b", 2)], 2)
        assert sorted(pairs.map_values(lambda v: v * 10).collect()) == [("a", 10), ("b", 20)]
        assert sorted(pairs.keys().collect()) == ["a", "b"]
        assert sorted(pairs.values().collect()) == [1, 2]

    def test_union(self):
        ctx = make_ctx()
        left = ctx.parallelize([1, 2], 2)
        right = ctx.parallelize([3], 1)
        union = left.union(right)
        assert union.num_partitions == 3
        assert sorted(union.collect()) == [1, 2, 3]

    def test_sample_deterministic(self):
        rdd = make_ctx().parallelize(range(1000), 4)
        a = rdd.sample(0.1, seed=42).collect()
        b = rdd.sample(0.1, seed=42).collect()
        assert a == b
        assert 40 < len(a) < 200

    def test_sample_fraction_validated(self):
        with pytest.raises(ReproError):
            make_ctx().parallelize([1]).sample(1.5)

    def test_lazy_until_action(self):
        calls = []

        def probe(x):
            calls.append(x)
            return x

        rdd = make_ctx().parallelize(range(5)).map(probe)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert sorted(calls) == list(range(5))


class TestActions:
    def test_count(self):
        assert make_ctx().parallelize(range(17)).count() == 17

    def test_take(self):
        assert len(make_ctx().parallelize(range(100), 4).take(7)) == 7

    def test_reduce(self):
        assert make_ctx().parallelize(range(1, 5)).reduce(lambda a, b: a * b) == 24

    def test_reduce_empty_raises(self):
        with pytest.raises(ReproError):
            make_ctx().parallelize([]).reduce(lambda a, b: a + b)

    def test_count_by_key(self):
        rdd = make_ctx().parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        assert rdd.count_by_key() == {"a": 2, "b": 1}


class TestWideTransformations:
    def test_reduce_by_key(self):
        rdd = make_ctx().parallelize(
            [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("a", 5)], 3
        ).reduce_by_key(lambda a, b: a + b)
        assert dict(rdd.collect()) == {"a": 9, "b": 6}

    def test_group_by_key(self):
        rdd = make_ctx().parallelize([("a", 1), ("a", 2), ("b", 3)], 2).group_by_key(2)
        grouped = {key: sorted(values) for key, values in rdd.collect()}
        assert grouped == {"a": [1, 2], "b": [3]}

    def test_sort_by_key_total_order(self):
        import random
        rng = random.Random(5)
        data = [(rng.randint(0, 10_000), i) for i in range(500)]
        rdd = make_ctx().parallelize(data, 4).sort_by_key(4)
        collected = rdd.collect()
        assert [k for k, _ in collected] == sorted(k for k, _ in data)

    def test_distinct(self):
        rdd = make_ctx().parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
        assert sorted(rdd.collect()) == [1, 2, 3]

    def test_wordcount_pipeline(self):
        lines = ["spark is fast", "spark is in memory", "hadoop is disk"]
        counts = (
            make_ctx().text_file(lines, 2)
            .flat_map(str.split)
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        assert dict(counts.collect())["is"] == 3


class TestCachingAndLineage:
    def test_cache_avoids_recompute(self):
        calls = []

        def probe(x):
            calls.append(x)
            return x

        rdd = make_ctx().parallelize(range(6), 2).map(probe).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first  # served from cache

    def test_lineage_recomputes_dropped_block(self):
        ctx = make_ctx()
        calls = []

        def probe(x):
            calls.append(x)
            return x * 2

        rdd = ctx.parallelize(range(6), 2).map(probe).cache()
        before = sorted(rdd.collect())
        # Simulate losing one executor's cached block.
        dropped = ctx.memory.drop_block(rdd._block_id(0))
        assert dropped
        calls.clear()
        after = sorted(rdd.collect())
        assert after == before
        assert calls  # partition 0 was recomputed through lineage

    def test_unpersist_frees_memory(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(1000), 2).cache()
        rdd.collect()
        assert ctx.memory.cached_bytes > 0
        rdd.unpersist()
        assert ctx.memory.cached_bytes == 0

    def test_lineage_names(self):
        rdd = make_ctx().parallelize([1]).map(lambda x: x).filter(bool)
        names = rdd.lineage()
        assert names[0].endswith(".filter")
        assert names[-1] == "parallelize"


class TestMemoryManager:
    def test_estimate_scales_with_expansion(self):
        records = [("key", 1)] * 10
        assert estimate_bytes(records, 4.0) == 4 * estimate_bytes(records, 1.0)

    def test_store_and_get(self):
        memory = MemoryManager(10_000)
        assert memory.store_block("b1", [("a", 1)])
        assert memory.get_block("b1") == [("a", 1)]
        assert memory.get_block("nope") is None

    def test_lru_eviction(self):
        records = [("k", i) for i in range(10)]
        block_bytes = estimate_bytes(records)
        memory = MemoryManager(int(block_bytes * 2.5))
        memory.store_block("a", records)
        memory.store_block("b", records)
        memory.get_block("a")  # touch a so b is LRU
        memory.store_block("c", records)
        assert memory.get_block("b") is None
        assert memory.get_block("a") is not None
        assert memory.evictions == 1

    def test_oversized_block_is_dropped_not_fatal(self):
        memory = MemoryManager(100)
        assert not memory.store_block("big", [("x" * 100, i) for i in range(100)])

    def test_transient_charge_oom(self):
        memory = MemoryManager(1000)
        memory.charge(800)
        with pytest.raises(OutOfMemoryError) as info:
            memory.charge(300)
        assert info.value.required == 300

    def test_charge_evicts_cached_blocks_first(self):
        records = [("k", i) for i in range(10)]
        memory = MemoryManager(estimate_bytes(records) + 100)
        memory.store_block("a", records)
        memory.charge(estimate_bytes(records) + 50)  # must evict "a"
        assert memory.get_block("a") is None

    def test_release_validation(self):
        memory = MemoryManager(100)
        with pytest.raises(ReproError):
            memory.release(1)


class TestSparkOOMScenarios:
    """The paper's Section 4.3 failure mode, at functional scale."""

    def test_sort_oom_on_small_heap(self):
        ctx = SparkContext(default_parallelism=4, memory_capacity=2_000)
        data = [(i, "x" * 20) for i in range(2000)]
        rdd = ctx.parallelize(data, 4).sort_by_key(4)
        with pytest.raises(OutOfMemoryError):
            rdd.collect()

    def test_sort_succeeds_with_enough_heap(self):
        ctx = SparkContext(default_parallelism=4, memory_capacity=50 * 1024 * 1024)
        data = [(i * 7919 % 1000, i) for i in range(1000)]
        rdd = ctx.parallelize(data, 4).sort_by_key(4)
        keys = [k for k, _ in rdd.collect()]
        assert keys == sorted(k for k, _ in data)

    def test_free_shuffle_releases_memory(self):
        ctx = SparkContext(default_parallelism=2, memory_capacity=50 * 1024 * 1024)
        rdd = ctx.parallelize([("a", 1)] * 100, 2).reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        assert ctx.memory.transient_bytes > 0
        assert isinstance(rdd, ShuffledRDD)
        rdd.free_shuffle()
        assert ctx.memory.transient_bytes == 0


class TestStages:
    def test_narrow_job_is_one_stage(self):
        rdd = make_ctx().parallelize(range(4)).map(lambda x: x).filter(bool)
        assert num_stages(rdd) == 1

    def test_shuffle_adds_stage(self):
        rdd = (
            make_ctx().parallelize(["a b"]).flat_map(str.split)
            .map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b)
        )
        stages = build_stages(rdd)
        assert len(stages) == 2
        assert stages[0].stage_id == 0
        # Stage 0 is the load/map stage; the shuffle stage depends on it.
        assert stages[1].parent_stage_ids == [0]

    def test_two_shuffles_three_stages(self):
        rdd = (
            make_ctx().parallelize([("a", 1)], 2)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .sort_by_key(2)
        )
        assert num_stages(rdd) == 3

    def test_stage0_contains_leaf(self):
        rdd = make_ctx().parallelize([("a", 1)], 2).group_by_key(2)
        stages = build_stages(rdd)
        assert "parallelize" in stages[0].rdd_names


class TestShuffleCounters:
    """Exact byte counters (the experiment matrix's spark-model bytes)."""

    def test_fresh_context_starts_at_zero(self):
        ctx = make_ctx()
        assert ctx.counters == {"shuffle_bytes": 0, "shuffles": 0}

    def test_reduce_by_key_counts_post_combine_records(self):
        from repro.common.kv import record_size

        ctx = make_ctx()
        pairs = [("a", 1), ("a", 1), ("b", 1)]
        rdd = ctx.parallelize(pairs, 2).reduce_by_key(lambda x, y: x + y, 2)
        combined = dict(rdd.collect())
        assert combined == {"a": 2, "b": 1}
        assert ctx.counters["shuffles"] == 1
        # map-side combine merged the two 'a' records before the shuffle
        assert ctx.counters["shuffle_bytes"] == sum(
            record_size(key, value) for key, value in combined.items()
        )

    def test_counters_accumulate_across_shuffles(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([("b", 1), ("a", 2)], 2)
        rdd.reduce_by_key(lambda x, y: x + y, 2).collect()
        after_first = ctx.counters["shuffle_bytes"]
        rdd.sort_by_key(2).collect()
        assert ctx.counters["shuffles"] == 2
        assert ctx.counters["shuffle_bytes"] > after_first

    def test_same_record_sizing_as_hadoop(self):
        """Both engines charge :func:`record_size` per shuffled record,
        so cross-engine bytes ratios compare like with like.  The totals
        differ only where the semantics do: this engine's all-at-once
        shuffle combines across *all* partitions, Hadoop's combiner only
        within each map task, so Spark's total is never larger."""
        from repro.workloads import wordcount_hadoop_result, wordcount_spark

        lines = ["b a a", "c b a"]
        ctx = make_ctx(default_parallelism=2)
        wordcount_spark(lines, parallelism=2, ctx=ctx)
        hadoop = wordcount_hadoop_result(lines, parallelism=2)
        assert 0 < ctx.counters["shuffle_bytes"] <= \
            hadoop.counters["shuffle_bytes"]

"""Tests for framework configuration and run results."""

import pytest

from repro.common import ConfigError, FrameworkConf, RunResult
from repro.common.units import MB


class TestFrameworkConf:
    def test_paper_defaults(self):
        conf = FrameworkConf.paper_defaults()
        assert conf.block_size == 256 * MB
        assert conf.replication == 3
        assert conf.slots_per_node == 4
        assert conf.executions == 3

    def test_with_block_size_parses_strings(self):
        conf = FrameworkConf().with_block_size("64MB")
        assert conf.block_size == 64 * MB

    def test_with_slots(self):
        conf = FrameworkConf().with_slots(6)
        assert conf.slots_per_node == 6
        # original untouched (frozen dataclass)
        assert FrameworkConf().slots_per_node == 4

    def test_invalid_block_size(self):
        with pytest.raises(ConfigError):
            FrameworkConf(block_size=0)

    def test_invalid_replication(self):
        with pytest.raises(ConfigError):
            FrameworkConf(replication=0)

    def test_invalid_slots(self):
        with pytest.raises(ConfigError):
            FrameworkConf(slots_per_node=0)

    def test_invalid_executions(self):
        with pytest.raises(ConfigError):
            FrameworkConf(executions=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FrameworkConf().block_size = 1  # type: ignore[misc]


class TestRunResult:
    def test_success_flag(self):
        result = RunResult("datampi", "sort", 1024, 9.5)
        assert result.succeeded
        assert not result.failed

    def test_failure(self):
        result = RunResult("spark", "normal_sort", 1024, 0.0, failed=True,
                           failure="OutOfMemoryError")
        assert not result.succeeded
        assert result.failure == "OutOfMemoryError"

    def test_phases_default_empty(self):
        assert RunResult("hadoop", "grep", 1, 1.0).phases == {}

"""Failure injection: the library must fail loudly and recover cleanly."""

import os

import pytest

from repro.common import CheckpointError, MPIError, OutOfMemoryError
from repro.common.kv import encode_stream
from repro.datampi import (
    ChunkStore,
    DataMPIConf,
    DataMPIJob,
    load_checkpoint,
    read_manifest,
    write_checkpoint,
    write_manifest,
)
from repro.spark import SparkContext


def counting_job(**conf_kwargs):
    def o_task(ctx, split):
        for item in split:
            ctx.send(item, 1)

    def a_task(ctx):
        return [(key, sum(values)) for key, values in ctx.grouped()]

    return DataMPIJob(o_task, a_task, DataMPIConf(num_o=2, num_a=2, **conf_kwargs))


class TestDataMPIFailures:
    def test_failing_o_task_does_not_hang_a_side(self):
        """EOFs must flow even when an O task dies, so A ranks unblock
        instead of waiting out the receive timeout."""
        calls = {"count": 0}

        def flaky_o(ctx, split):
            calls["count"] += 1
            ctx.send("pre-crash", 1)
            raise RuntimeError("injected O failure")

        def a_task(ctx):
            return list(ctx)

        job = DataMPIJob(flaky_o, a_task, DataMPIConf(num_o=2, num_a=2))
        with pytest.raises(MPIError, match="injected O failure"):
            job.run([[1], [2]])
        assert calls["count"] >= 1

    def test_partitioner_out_of_range_fails_fast(self):
        from repro.common.errors import DataMPIError

        def o_task(ctx, split):
            ctx.send("key", 1)

        job = DataMPIJob(
            o_task, lambda ctx: list(ctx),
            DataMPIConf(num_o=1, num_a=2, partitioner=lambda key, n: n + 5),
        )
        with pytest.raises(MPIError):
            job.run([[1]])

    def test_spill_files_removed_after_job(self, tmp_path):
        store = ChunkStore(spill_threshold=64, spill_dir=str(tmp_path))
        for i in range(10):
            store.add(encode_stream([(f"key{i}", i)]))
        assert store.spills > 0
        assert os.listdir(tmp_path)
        store.cleanup()
        assert not os.listdir(tmp_path)


class TestCheckpointCorruption:
    def make_checkpoint(self, tmp_path):
        store = ChunkStore()
        store.add(encode_stream([("a", 1), ("b", 2)]))
        write_checkpoint(str(tmp_path), 0, store)
        write_manifest(str(tmp_path), 1, True, "job")
        return tmp_path

    def test_roundtrip(self, tmp_path):
        self.make_checkpoint(tmp_path)
        assert read_manifest(str(tmp_path))["num_a"] == 1
        store = load_checkpoint(str(tmp_path), 0, spill_threshold=1 << 20)
        keys = [kv.key for kv in store.merged()]
        assert keys == ["a", "b"]

    def test_bad_magic_rejected(self, tmp_path):
        self.make_checkpoint(tmp_path)
        path = tmp_path / "a00000.ckpt"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 16)
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(str(tmp_path), 0, spill_threshold=1 << 20)

    def test_truncated_chunk_rejected(self, tmp_path):
        self.make_checkpoint(tmp_path)
        path = tmp_path / "a00000.ckpt"
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(str(tmp_path), 0, spill_threshold=1 << 20)

    def test_incomplete_manifest_rejected(self, tmp_path):
        import json
        (tmp_path / "manifest.json").write_text(json.dumps({"complete": False}))
        with pytest.raises(CheckpointError, match="incomplete"):
            read_manifest(str(tmp_path))

    def test_missing_rank_file_rejected(self, tmp_path):
        self.make_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(str(tmp_path), 3, spill_threshold=1 << 20)


class TestSparkFailures:
    def test_oom_mid_collect_leaves_consistent_memory(self):
        ctx = SparkContext(default_parallelism=4, memory_capacity=3_000)
        rdd = ctx.parallelize([(i, "x" * 30) for i in range(2000)], 4).sort_by_key(4)
        with pytest.raises(OutOfMemoryError):
            rdd.collect()
        # Transient memory is still charged (the JVM died holding it) but
        # accounting never goes negative or exceeds capacity tracking.
        assert 0 <= ctx.memory.transient_bytes
        assert ctx.memory.cached_bytes >= 0

    def test_losing_every_cached_block_still_recomputes(self):
        ctx = SparkContext(default_parallelism=2)
        rdd = ctx.parallelize(range(100), 2).map(lambda x: x * 3).cache()
        first = rdd.collect()
        for block_id in list(ctx.memory.block_ids):
            ctx.memory.drop_block(block_id)
        assert rdd.collect() == first

    def test_mid_iteration_eviction_is_safe(self):
        """Evicting a block while other partitions compute must not corrupt
        results (lineage recomputes on the next access)."""
        ctx = SparkContext(default_parallelism=4, memory_capacity=100_000)
        rdd = ctx.parallelize(range(400), 4).map(lambda x: (x % 7, x)).cache()
        baseline = sorted(rdd.collect())
        ctx.memory.drop_block(rdd._block_id(2))
        assert sorted(rdd.collect()) == baseline

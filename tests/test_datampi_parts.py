"""Unit tests for DataMPI building blocks: partitioners, buffers, store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import DataMPIError
from repro.common.kv import KeyValue, decode_stream
from repro.datampi import (
    ChunkStore,
    PartitionedSendBuffer,
    RangePartitioner,
    hash_partitioner,
    validate_partition,
)


class TestHashPartitioner:
    def test_in_range(self):
        for key in ["a", "b", 42, 3.14, b"bytes", None]:
            assert 0 <= hash_partitioner(key, 7) < 7

    def test_deterministic(self):
        assert hash_partitioner("word", 16) == hash_partitioner("word", 16)

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=64))
    def test_property_in_range(self, key, n):
        assert 0 <= hash_partitioner(key, n) < n

    def test_spreads_keys(self):
        partitions = {hash_partitioner(f"key{i}", 8) for i in range(100)}
        assert len(partitions) == 8  # all partitions hit with 100 keys


class TestRangePartitioner:
    def test_orders_partitions(self):
        part = RangePartitioner(sample_keys=list(range(100)), num_partitions=4)
        assigned = [part(key, 4) for key in range(100)]
        assert assigned == sorted(assigned)
        assert set(assigned) == {0, 1, 2, 3}

    def test_balance_on_uniform_sample(self):
        part = RangePartitioner(sample_keys=list(range(1000)), num_partitions=4)
        counts = [0, 0, 0, 0]
        for key in range(1000):
            counts[part(key, 4)] += 1
        assert all(200 <= c <= 300 for c in counts)

    def test_empty_sample_rejected(self):
        with pytest.raises(DataMPIError):
            RangePartitioner([], 4)

    def test_partition_count_mismatch_rejected(self):
        part = RangePartitioner([1, 2, 3], 2)
        with pytest.raises(DataMPIError):
            part(1, 3)

    @given(st.lists(st.integers(), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_monotone_property(self, sample, n):
        part = RangePartitioner(sample, n)
        keys = sorted(sample)
        assigned = [part(key, n) for key in keys]
        assert assigned == sorted(assigned)
        assert all(0 <= p < n for p in assigned)

    def test_validate_partition(self):
        assert validate_partition(0, 4) == 0
        with pytest.raises(DataMPIError):
            validate_partition(4, 4)
        with pytest.raises(DataMPIError):
            validate_partition(-1, 4)


class RecordingSink:
    def __init__(self):
        self.chunks: list[tuple[int, bytes]] = []

    def __call__(self, destination: int, payload: bytes) -> None:
        self.chunks.append((destination, payload))

    def records(self, destination=None):
        out = []
        for dest, payload in self.chunks:
            if destination is None or dest == destination:
                out.extend(decode_stream(payload))
        return out


class TestPartitionedSendBuffer:
    def test_flush_all_sends_everything(self):
        sink = RecordingSink()
        buffer = PartitionedSendBuffer(2, sink)
        buffer.add(0, "b", 1)
        buffer.add(0, "a", 2)
        buffer.add(1, "c", 3)
        buffer.flush_all()
        assert sink.records(0) == [KeyValue("a", 2), KeyValue("b", 1)]  # sorted
        assert sink.records(1) == [KeyValue("c", 3)]

    def test_threshold_triggers_pipelined_send(self):
        sink = RecordingSink()
        buffer = PartitionedSendBuffer(1, sink, threshold_bytes=64)
        for i in range(100):
            buffer.add(0, f"key{i:03d}", i)
        # Sends happened long before flush_all: that's the pipelining.
        assert buffer.chunks_sent > 1
        pre_flush_chunks = buffer.chunks_sent
        buffer.flush_all()
        assert buffer.chunks_sent >= pre_flush_chunks
        assert len(sink.records()) == 100

    def test_sort_disabled_preserves_order(self):
        sink = RecordingSink()
        buffer = PartitionedSendBuffer(1, sink, sort=False)
        buffer.add(0, "z", 1)
        buffer.add(0, "a", 2)
        buffer.flush_all()
        assert [kv.key for kv in sink.records()] == ["z", "a"]

    def test_combiner_reduces_records(self):
        sink = RecordingSink()
        buffer = PartitionedSendBuffer(
            1, sink, combiner=lambda key, values: sum(values)
        )
        for _ in range(10):
            buffer.add(0, "word", 1)
        buffer.flush_all()
        assert sink.records() == [KeyValue("word", 10)]
        assert buffer.records_combined_away == 9

    def test_empty_flush_sends_nothing(self):
        sink = RecordingSink()
        PartitionedSendBuffer(3, sink).flush_all()
        assert sink.chunks == []

    def test_invalid_construction(self):
        with pytest.raises(DataMPIError):
            PartitionedSendBuffer(0, lambda d, p: None)
        with pytest.raises(DataMPIError):
            PartitionedSendBuffer(1, lambda d, p: None, threshold_bytes=0)

    @given(st.lists(st.tuples(st.text(max_size=8), st.integers()), max_size=60),
           st.integers(min_value=1, max_value=4))
    def test_no_record_lost_property(self, records, num_dest):
        sink = RecordingSink()
        buffer = PartitionedSendBuffer(num_dest, sink, threshold_bytes=50)
        for key, value in records:
            buffer.add(hash(key) % num_dest, key, value)
        buffer.flush_all()
        assert sorted((kv.key, kv.value) for kv in sink.records()) == sorted(records)


class TestChunkStore:
    @staticmethod
    def encode(pairs):
        from repro.common.kv import encode_stream
        return encode_stream(pairs)

    def test_merged_sorted_across_chunks(self):
        store = ChunkStore()
        store.add(self.encode([("a", 1), ("m", 2)]))
        store.add(self.encode([("b", 3), ("z", 4)]))
        merged = [kv.key for kv in store.merged(sort=True)]
        assert merged == ["a", "b", "m", "z"]

    def test_unsorted_concatenates(self):
        store = ChunkStore()
        store.add(self.encode([("z", 1)]))
        store.add(self.encode([("a", 2)]))
        assert [kv.key for kv in store.merged(sort=False)] == ["z", "a"]

    def test_spill_roundtrip(self, tmp_path):
        store = ChunkStore(spill_threshold=100, spill_dir=str(tmp_path))
        expected = []
        for i in range(20):
            pairs = [(f"k{i:02d}{j}", j) for j in range(5)]
            expected.extend(pairs)
            store.add(self.encode(pairs))
        assert store.spills > 0
        merged = [(kv.key, kv.value) for kv in store.merged(sort=True)]
        assert merged == sorted(expected)
        store.cleanup()

    def test_spill_preserves_raw_chunks(self, tmp_path):
        store = ChunkStore(spill_threshold=50, spill_dir=str(tmp_path))
        chunks = [self.encode([(f"key{i}", i)]) for i in range(10)]
        for chunk in chunks:
            store.add(chunk)
        assert sorted(store.raw_chunks()) == sorted(chunks)
        store.cleanup()

    def test_cleanup_removes_spill_files(self):
        store = ChunkStore(spill_threshold=10)
        store.add(self.encode([("a", 1), ("b", 2)]))
        assert store.spills == 1
        store.cleanup()
        assert store.raw_chunks() == []

    def test_invalid_threshold(self):
        with pytest.raises(DataMPIError):
            ChunkStore(spill_threshold=0)

"""Parallel MatrixRunner: pool execution, determinism, resume-after-kill.

The worker-pool strategy must be behaviourally indistinguishable from
serial execution everywhere except wall clock: identical deterministic
cell records, identical checkpoint files (modulo the measured timings
inside them), byte-identical rendered reports, and the same
resume-after-kill contract — which this suite exercises with a real
``SIGKILL`` of a mid-flight parallel run.
"""

import importlib.util
import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.common.errors import ConfigError
from repro.experiments import matrix as matrix_module
from repro.experiments.matrix import MatrixRunner, load_matrix
from repro.experiments.reportbuilder import ReportBuilder, VOLATILE_ARTIFACTS
from repro.experiments.spec import CellSpec, ExperimentSpec, quick_spec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "diff_reports", REPO_ROOT / "scripts" / "diff_reports.py"
)
diff_reports = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(diff_reports)


def tiny_spec(**kwargs) -> ExperimentSpec:
    kwargs.setdefault("max_iterations", 3)
    return ExperimentSpec("tiny-parallel", (
        CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
        CellSpec("wordcount", "common", "hadoop-model", "tiny"),
        CellSpec("wordcount", "common", "spark-model", "tiny"),
        CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
        CellSpec("kmeans", "iteration", "hadoop-model", "tiny"),
        CellSpec("naive_bayes", "iteration", "datampi", "tiny", "inline"),
    ), **kwargs)


def deterministic_record(result):
    return {
        r.spec.cell_id: (r.status, r.bytes_moved, r.output_checksum,
                         r.iterations, r.per_iteration_bytes, r.counters)
        for r in result.results
    }


class TestWorkersKnob:
    def test_default_is_serial(self, tmp_path):
        assert MatrixRunner(tiny_spec(), str(tmp_path)).workers == 1

    def test_zero_means_cpu_count(self, tmp_path):
        runner = MatrixRunner(tiny_spec(), str(tmp_path), workers=0)
        assert runner.workers == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            MatrixRunner(tiny_spec(), str(tmp_path), workers=-2)

    def test_workers_is_not_part_of_the_spec_hash(self, tmp_path):
        """Parallelism is a runner property: it must never invalidate
        checkpoints or change the spec hash the reports carry."""
        spec = tiny_spec()
        serial = MatrixRunner(spec, str(tmp_path))
        parallel = MatrixRunner(spec, str(tmp_path), workers=3)
        assert serial.spec.spec_hash == parallel.spec.spec_hash


class TestParallelExecution:
    def test_parallel_matches_serial_record(self, tmp_path):
        spec = tiny_spec()
        serial = MatrixRunner(spec, str(tmp_path / "s")).run()
        parallel = MatrixRunner(spec, str(tmp_path / "p"), workers=3).run()
        assert not parallel.failed_cells()
        assert parallel.executed == len(spec.cells)
        assert deterministic_record(serial) == deterministic_record(parallel)

    def test_results_are_ordered_by_spec_not_completion(self, tmp_path):
        spec = tiny_spec()
        parallel = MatrixRunner(spec, str(tmp_path), workers=3).run()
        assert [r.spec.cell_id for r in parallel.results] == \
            [c.cell_id for c in spec.cells]

    def test_parallel_checkpoints_resume_into_serial_runs(self, tmp_path):
        """Checkpoints are strategy-agnostic: a serial rerun resumes a
        parallel run's cells (and vice versa)."""
        spec = tiny_spec()
        MatrixRunner(spec, str(tmp_path), workers=3).run()
        serial_again = MatrixRunner(spec, str(tmp_path)).run()
        assert serial_again.resumed == len(spec.cells)
        assert serial_again.executed == 0
        parallel_again = MatrixRunner(spec, str(tmp_path), workers=3).run()
        assert parallel_again.resumed == len(spec.cells)

    def test_parallel_profiles_inside_workers(self, tmp_path):
        """Every cell's trace is serialized back from its worker."""
        result = MatrixRunner(tiny_spec(), str(tmp_path), workers=2).run()
        for cell_result in result.results:
            assert cell_result.resource["wall_sec"] > 0
            assert cell_result.resource["num_samples"] >= 1
            assert cell_result.elapsed_sec > 0

    def test_single_pending_cell_runs_serially(self, tmp_path):
        """No pool spin-up to execute one leftover cell."""
        spec = tiny_spec()
        serial_first = MatrixRunner(spec, str(tmp_path))
        original = serial_first.execute_cell
        survived: list = []

        def die_before_last(cell):
            if len(survived) >= len(spec.cells) - 1:
                raise KeyboardInterrupt
            survived.append(cell.cell_id)
            return original(cell)

        # A killed serial run leaves exactly one pending cell behind.
        serial_first.execute_cell = die_before_last
        with pytest.raises(KeyboardInterrupt):
            serial_first.run()
        executed: list = []
        resumer = MatrixRunner(spec, str(tmp_path), workers=3)
        resumer.execute_cell = \
            lambda cell: executed.append(cell.cell_id) or original(cell)
        result = resumer.run()
        # the monkeypatched method ran => the serial path was taken
        assert executed == [spec.cells[-1].cell_id]
        assert result.resumed == len(spec.cells) - 1


class TestParallelFailureHandling:
    def test_failed_cell_is_recorded_not_raised(self, tmp_path, monkeypatch):
        """A crashing workload inside a worker becomes a ``failed`` cell.

        Relies on the fork start method (Linux): pool workers inherit
        the monkeypatched executor at pool creation.
        """
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("failure injection requires the fork start method")
        spec = tiny_spec()
        victim = spec.cells[2].cell_id
        original = matrix_module.execute_cell

        def flaky(cell, run_spec):
            if cell.cell_id == victim:
                raise RuntimeError("simulated workload failure")
            return original(cell, run_spec)

        monkeypatch.setattr(matrix_module, "execute_cell", flaky)
        result = MatrixRunner(spec, str(tmp_path), workers=2).run()
        assert [c.spec.cell_id for c in result.failed_cells()] == [victim]
        assert "simulated workload failure" in result.failed_cells()[0].error

        monkeypatch.undo()
        retry = MatrixRunner(spec, str(tmp_path), workers=2).run()
        assert not retry.failed_cells()
        assert retry.executed == 1
        assert retry.resumed == len(spec.cells) - 1


def _run_matrix_child(spec_dict: dict, out_dir: str) -> None:
    """Child-process entry point for the kill test (module-level).

    Detaches into its own process group so the parent can SIGKILL the
    whole tree — otherwise the pool workers outlive the killed parent as
    orphans, blocked on the dead call queue and pinning pytest's stdout
    pipe open.
    """
    os.setpgrp()
    spec = ExperimentSpec.from_dict(spec_dict)
    MatrixRunner(spec, out_dir, workers=2).run(resume=False)


class TestResumeAfterKill:
    def test_sigkilled_parallel_run_resumes_from_surviving_cells(
            self, tmp_path, wait_until):
        """SIGKILL a live 2-worker matrix mid-flight; the rerun must
        execute exactly the cells whose checkpoints did not survive."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("kill test needs a forked child process")
        spec = quick_spec()
        out = tmp_path / "matrix"
        child = multiprocessing.get_context("fork").Process(
            target=_run_matrix_child, args=(spec.to_dict(), str(out)))
        child.start()
        cells_dir = out / "cells"
        # Kill once at least two cell checkpoints exist (or the child
        # finished early — the skip below handles that race).
        wait_until(
            lambda: not child.is_alive()
            or (cells_dir.exists()
                and len(list(cells_dir.glob("*.json"))) >= 2),
            timeout=120, interval=0.002,
            message="matrix child produced no cell checkpoints",
        )
        try:
            os.killpg(child.pid, signal.SIGKILL)  # child + its pool workers
        except ProcessLookupError:  # finished (and reaped) before the kill
            pass
        child.join()
        if (out / "manifest.json").exists():
            pytest.skip("matrix finished before the kill landed")

        survivors = {path.stem for path in cells_dir.glob("*.json")}
        assert survivors, "kill landed before any checkpoint was written"
        assert len(survivors) < len(spec.cells)

        executed: list = []
        rerun = MatrixRunner(
            spec, str(out), workers=2,
            progress=lambda r: None if r.resumed else executed.append(
                r.spec.cell_id))
        result = rerun.run()
        assert not result.failed_cells()
        assert result.resumed == len(survivors)
        assert result.executed == len(spec.cells) - len(survivors)
        assert sorted(executed) == sorted(
            {c.cell_id for c in spec.cells} - survivors)
        assert (out / "manifest.json").exists()
        assert load_matrix(str(out)).complete is True


class TestReportDeterminism:
    def test_parallel_and_serial_reports_are_byte_identical(self, tmp_path):
        """The acceptance bar: same spec, serial vs 4 workers, identical
        rendered reports except the explicitly volatile timings."""
        spec = quick_spec()
        serial = MatrixRunner(spec, str(tmp_path / "ms")).run()
        parallel = MatrixRunner(spec, str(tmp_path / "mp"), workers=4).run()
        ReportBuilder(serial, str(tmp_path / "rs")).build()
        ReportBuilder(parallel, str(tmp_path / "rp")).build()
        problems = diff_reports.compare_reports(
            tmp_path / "rs", tmp_path / "rp")
        assert problems == []

    def test_volatile_artifacts_exist_and_are_marked(self, tmp_path):
        spec = tiny_spec()
        result = MatrixRunner(spec, str(tmp_path / "m"), workers=2).run()
        ReportBuilder(result, str(tmp_path / "r")).build()
        names = {p.name for p in (tmp_path / "r").iterdir()}
        assert VOLATILE_ARTIFACTS <= names
        import json
        doc = json.loads((tmp_path / "r" / "timings.json").read_text())
        assert doc["volatile"] is True
        exec_doc = json.loads(
            (tmp_path / "r" / "execution_time.json").read_text())
        assert exec_doc["volatile"] is False

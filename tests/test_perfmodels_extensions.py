"""Tests for the ablation and iterative-K-means extensions."""

import pytest

from repro.common import ConfigError
from repro.common.units import GB
from repro.perfmodels import (
    MECHANISMS,
    ablated_datampi,
    iterative_kmeans,
)
from repro.perfmodels.ablation import AblatedDataMPIModel


class TestAblation:
    @pytest.fixture(scope="class")
    def sort_ablation(self):
        return ablated_datampi("text_sort", 8 * GB)

    def test_all_mechanisms_covered(self, sort_ablation):
        assert set(sort_ablation.without) == set(MECHANISMS)

    def test_removals_never_speed_things_up(self, sort_ablation):
        for mechanism in MECHANISMS:
            assert sort_ablation.without[mechanism] >= sort_ablation.full_sec * 0.98

    def test_ranked_is_sorted(self, sort_ablation):
        slowdowns = [value for _name, value in sort_ablation.ranked()]
        assert slowdowns == sorted(slowdowns, reverse=True)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigError):
            AblatedDataMPIModel("magic")

    def test_no_pipelining_still_correct_volumes(self):
        outcome = AblatedDataMPIModel("pipelining").run("text_sort", 8 * GB)
        total_read = sum(n.disk_read.total_served for n in outcome.cluster.nodes)
        assert total_read == pytest.approx(8 * GB, rel=0.01)

    def test_no_buffering_forces_full_spill(self):
        outcome = AblatedDataMPIModel("memory_buffering").run("text_sort", 8 * GB)
        writes = sum(n.disk_write.total_served for n in outcome.cluster.nodes)
        # Output replicas (3x input) plus the forced intermediate spill (1x).
        assert writes == pytest.approx(4 * 8 * GB, rel=0.02)


class TestIterativeKMeans:
    @pytest.fixture(scope="class")
    def result(self):
        return iterative_kmeans(32 * GB, iterations=8)

    def test_cumulative_monotone(self, result):
        for series in result.cumulative.values():
            assert all(b > a for a, b in zip(series, series[1:]))

    def test_first_iteration_matches_fig6a_ordering(self, result):
        first = {fw: series[0] for fw, series in result.cumulative.items()}
        assert first["datampi"] < first["spark"] < first["hadoop"]

    def test_spark_marginal_cost_smallest(self, result):
        marginal = {
            fw: series[-1] - series[-2] for fw, series in result.cumulative.items()
        }
        assert marginal["spark"] < marginal["datampi"]
        assert marginal["spark"] < marginal["hadoop"] / 3

    def test_crossover_exists(self, result):
        crossover = result.crossover_iteration("datampi", "spark")
        assert crossover is not None
        assert 2 <= crossover <= result.iterations

    def test_crossover_none_when_never(self, result):
        assert result.crossover_iteration("spark", "hadoop") is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            iterative_kmeans(1 * GB, iterations=0)

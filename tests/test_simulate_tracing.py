"""Tests for the time-series tracer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulate import Tracer


def make_step_tracer():
    tracer = Tracer()
    tracer.record_rate("disk", 0.0, 10.0)
    tracer.record_rate("disk", 5.0, 50.0)
    tracer.record_rate("disk", 10.0, 0.0)
    return tracer


class TestValueAt:
    def test_before_first_point(self):
        assert Tracer().value_at("missing", 3.0) == 0.0

    def test_at_change_points(self):
        tracer = make_step_tracer()
        assert tracer.value_at("disk", 0.0) == 10.0
        assert tracer.value_at("disk", 4.9) == 10.0
        assert tracer.value_at("disk", 5.0) == 50.0
        assert tracer.value_at("disk", 12.0) == 0.0


class TestAverage:
    def test_simple_average(self):
        tracer = make_step_tracer()
        # [0,5) at 10, [5,10) at 50 -> mean over [0,10] is 30.
        assert tracer.average("disk", 0.0, 10.0) == pytest.approx(30.0)

    def test_partial_window(self):
        tracer = make_step_tracer()
        assert tracer.average("disk", 4.0, 6.0) == pytest.approx(30.0)

    def test_window_beyond_last_point(self):
        tracer = make_step_tracer()
        assert tracer.average("disk", 10.0, 20.0) == pytest.approx(0.0)

    def test_degenerate_window(self):
        tracer = make_step_tracer()
        assert tracer.average("disk", 5.0, 5.0) == 50.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    def test_average_bounded_by_extremes(self, values):
        tracer = Tracer()
        for i, value in enumerate(values):
            tracer.record_rate("s", float(i), value)
        avg = tracer.average("s", 0.0, float(len(values)))
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9


class TestSample:
    def test_per_second_samples(self):
        tracer = make_step_tracer()
        samples = tracer.sample("disk", t_end=10.0, dt=1.0)
        assert len(samples) == 10
        assert samples[0] == (1.0, pytest.approx(10.0))
        assert samples[-1] == (10.0, pytest.approx(50.0))

    def test_sample_integral_matches_average(self):
        tracer = make_step_tracer()
        samples = tracer.sample("disk", t_end=10.0, dt=1.0)
        assert sum(v for _, v in samples) / 10 == pytest.approx(
            tracer.average("disk", 0.0, 10.0)
        )

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            make_step_tracer().sample("disk", 10.0, dt=0.0)


class TestGauges:
    def test_adjust_accumulates(self):
        tracer = Tracer()
        assert tracer.adjust_gauge("mem", 0.0, 4.0) == 4.0
        assert tracer.adjust_gauge("mem", 1.0, 3.0) == 7.0
        assert tracer.adjust_gauge("mem", 2.0, -5.0) == 2.0
        assert tracer.value_at("mem", 1.5) == 7.0

    def test_set_gauge_overrides(self):
        tracer = Tracer()
        tracer.adjust_gauge("mem", 0.0, 10.0)
        tracer.set_gauge("mem", 1.0, 3.0)
        assert tracer.adjust_gauge("mem", 2.0, 1.0) == 4.0


class TestMiscReaders:
    def test_names_sorted(self):
        tracer = Tracer()
        tracer.record_rate("b", 0.0, 1.0)
        tracer.record_rate("a", 0.0, 1.0)
        assert tracer.names() == ["a", "b"]

    def test_maximum(self):
        tracer = make_step_tracer()
        assert tracer.maximum("disk", 0.0, 10.0) == 50.0
        assert tracer.maximum("disk", 0.0, 4.0) == 10.0

    def test_integral(self):
        tracer = make_step_tracer()
        assert tracer.integral("disk", 0.0, 10.0) == pytest.approx(300.0)

    def test_same_time_update_replaces(self):
        tracer = Tracer()
        tracer.record_rate("s", 1.0, 5.0)
        tracer.record_rate("s", 1.0, 7.0)
        assert tracer.changes("s") == [(1.0, 7.0)]

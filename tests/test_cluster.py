"""Tests for the simulated testbed (hardware, nodes, switch, aggregation)."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec, SimCluster
from repro.common import ConfigError
from repro.common.units import GB, MB


class TestNodeSpec:
    def test_paper_thread_counts(self):
        spec = NodeSpec()
        assert spec.physical_cores == 8
        assert spec.hardware_threads == 16

    def test_table2_rows(self):
        rows = dict(NodeSpec().as_table())
        assert rows["CPU type"] == "Intel Xeon E5620"
        assert rows["# sockets"] == "2"
        assert rows["Memory"] == "16 GB"
        assert rows["Disk"] == "150GB free SATA disk"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            NodeSpec(sockets=0)
        with pytest.raises(ConfigError):
            NodeSpec(memory=0)
        with pytest.raises(ConfigError):
            NodeSpec(nic_bw=0.0)


class TestClusterSpec:
    def test_paper_testbed(self):
        spec = ClusterSpec.paper_testbed()
        assert spec.nodes == 8
        assert spec.total_memory == 8 * 16 * GB
        assert spec.total_hardware_threads == 128

    def test_invalid_node_count(self):
        with pytest.raises(ConfigError):
            ClusterSpec(nodes=0)


class TestSimNode:
    def test_compute_respects_thread_cap(self):
        cluster = SimCluster()
        node = cluster.node(0)
        done = []

        def proc(engine):
            yield node.compute(4.0, threads=1.0)
            done.append(engine.now)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert done == [pytest.approx(4.0)]

    def test_disk_read_rate(self):
        cluster = SimCluster()
        node = cluster.node(0)
        done = []

        def proc(engine):
            yield node.read(node.spec.disk_read_bw * 2)  # 2 seconds of reading
            done.append(engine.now)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert done == [pytest.approx(2.0)]

    def test_memory_accounting(self):
        cluster = SimCluster()
        node = cluster.node(0)
        node.allocate(4 * GB)
        assert node.memory_used == 4 * GB
        assert node.memory_available == 12 * GB
        node.free(1 * GB)
        assert node.memory_used == 3 * GB

    def test_overfree_raises(self):
        from repro.common.errors import SimulationError
        node = SimCluster().node(0)
        node.allocate(10)
        with pytest.raises(SimulationError):
            node.free(11)

    def test_iowait_gauge_tracks_blocked_tasks(self):
        cluster = SimCluster()
        node = cluster.node(0)

        def proc(engine):
            yield node.read(node.spec.disk_read_bw)  # one second

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        series = cluster.tracer.changes("node0.iowait")
        assert (0.0, 1.0) in series  # blocked during the read
        assert series[-1][1] == 0.0


class TestSwitch:
    def test_local_transfer_is_free(self):
        cluster = SimCluster()
        done = []

        def proc(engine):
            yield cluster.switch.transfer(cluster.node(0), cluster.node(0), 10 * GB)
            done.append(engine.now)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert done == [0.0]

    def test_remote_transfer_charges_both_nics(self):
        cluster = SimCluster()
        nbytes = cluster.spec.node.nic_bw * 3  # 3 seconds at line rate
        done = []

        def proc(engine):
            yield cluster.switch.transfer(cluster.node(0), cluster.node(1), nbytes)
            done.append(engine.now)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert done == [pytest.approx(3.0)]
        assert cluster.node(0).nic_out.total_served == pytest.approx(nbytes)
        assert cluster.node(1).nic_in.total_served == pytest.approx(nbytes)

    def test_incast_shares_receiver_nic(self):
        cluster = SimCluster()
        nbytes = cluster.spec.node.nic_bw  # 1 second alone
        finish = []

        def proc(engine, src):
            yield cluster.switch.transfer(cluster.node(src), cluster.node(0), nbytes)
            finish.append(engine.now)

        for src in (1, 2):
            cluster.engine.process(proc(cluster.engine, src))
        cluster.run()
        # Two senders into one NIC: each gets half rate, both finish at ~2 s.
        assert all(t == pytest.approx(2.0) for t in finish)

    def test_broadcast_reaches_all_other_nodes(self):
        cluster = SimCluster()
        done = []

        def proc(engine):
            yield cluster.switch.broadcast(cluster.node(0), 117 * MB)
            done.append(engine.now)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        # 7 flows of 1 NIC-second each through one nic_out => ~7 s.
        assert done == [pytest.approx(7.0, rel=0.01)]
        assert cluster.node(3).nic_in.total_served == pytest.approx(117 * MB)

    def test_negative_size_rejected(self):
        cluster = SimCluster()
        with pytest.raises(ValueError):
            cluster.switch.transfer(cluster.node(0), cluster.node(1), -5)


class TestAggregation:
    def test_cluster_cpu_utilization(self):
        cluster = SimCluster()

        def proc(engine, node_id):
            yield cluster.node(node_id).compute(8.0, threads=8.0)

        # 8 threads busy on every node for 1 second = 50 % of 16 threads.
        for node_id in range(8):
            cluster.engine.process(proc(cluster.engine, node_id))
        end = cluster.run()
        assert end == pytest.approx(1.0)
        assert cluster.cpu_utilization_pct(0.0, 1.0) == pytest.approx(50.0)

    def test_memory_gb_average(self):
        cluster = SimCluster()
        for node in cluster.nodes:
            node.allocate(5 * GB)
        cluster.engine.timeout(10.0)
        cluster.run()
        assert cluster.memory_gb(0.0, 10.0) == pytest.approx(5.0)

    def test_disk_mbps_averages_over_nodes(self):
        cluster = SimCluster()

        def proc(engine):
            yield cluster.node(0).read(100 * MB)

        cluster.engine.process(proc(cluster.engine))
        end = cluster.run()
        # 100 MB on one of 8 nodes over the window.
        expected = 100.0 / end / 8
        assert cluster.disk_read_mbps(0.0, end) == pytest.approx(expected, rel=0.01)

    def test_sample_over_nodes_length(self):
        cluster = SimCluster()

        def proc(engine):
            yield cluster.node(0).read(100 * MB)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        samples = cluster.sample_over_nodes("disk.read", t_end=3.0, dt=1.0)
        assert len(samples) == 3

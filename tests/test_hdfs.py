"""Tests for HDFS metadata, placement invariants, and the data path."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import SimCluster
from repro.common import FrameworkConf, HDFSError
from repro.common.units import GB, MB
from repro.hdfs import HDFS, NameNode, split_into_blocks


class TestSplitIntoBlocks:
    def test_exact_multiple(self):
        assert split_into_blocks(512 * MB, 256 * MB) == [256 * MB, 256 * MB]

    def test_tail_block(self):
        assert split_into_blocks(300 * MB, 256 * MB) == [256 * MB, 44 * MB]

    def test_empty_file(self):
        assert split_into_blocks(0, 256 * MB) == []

    def test_bad_block_size(self):
        with pytest.raises(HDFSError):
            split_into_blocks(10, 0)

    @given(
        st.integers(min_value=0, max_value=10**10),
        st.integers(min_value=2**20, max_value=2**30),
    )
    def test_blocks_sum_to_size(self, size, block_size):
        sizes = split_into_blocks(size, block_size)
        assert sum(sizes) == size
        assert all(0 < s <= block_size for s in sizes)
        # only the last block may be short
        assert all(s == block_size for s in sizes[:-1])


class TestNameNode:
    def make(self, replication=3):
        return NameNode(num_nodes=8, replication=replication, seed=1)

    def test_create_and_locate(self):
        nn = self.make()
        meta = nn.create_file("/data/a", 1 * GB, 256 * MB)
        assert nn.locate("/data/a") is meta
        assert meta.num_blocks == 4

    def test_duplicate_create_rejected(self):
        nn = self.make()
        nn.create_file("/a", 1, 256 * MB)
        with pytest.raises(HDFSError):
            nn.create_file("/a", 1, 256 * MB)

    def test_replicas_distinct_and_correct_count(self):
        nn = self.make()
        meta = nn.create_file("/a", 4 * GB, 256 * MB)
        for block in meta.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3
            assert all(0 <= r < 8 for r in block.replicas)

    def test_writer_node_holds_first_replica(self):
        nn = self.make()
        meta = nn.create_file("/a", 1 * GB, 256 * MB, writer_node=5)
        assert all(block.replicas[0] == 5 for block in meta.blocks)

    def test_round_robin_primaries_balanced(self):
        nn = self.make()
        meta = nn.create_file("/a", 8 * GB, 256 * MB)  # 32 blocks over 8 nodes
        primaries = [block.replicas[0] for block in meta.blocks]
        for node in range(8):
            assert primaries.count(node) == 4

    def test_replication_capped_at_cluster_size(self):
        nn = NameNode(num_nodes=2, replication=3, seed=0)
        meta = nn.create_file("/a", 10 * MB, 256 * MB)
        assert len(meta.blocks[0].replicas) == 2

    def test_delete(self):
        nn = self.make()
        nn.create_file("/a", 1, 256 * MB)
        nn.delete("/a")
        assert not nn.exists("/a")
        with pytest.raises(HDFSError):
            nn.delete("/a")

    def test_missing_file(self):
        with pytest.raises(HDFSError):
            self.make().locate("/nope")

    def test_byte_accounting(self):
        nn = self.make()
        nn.create_file("/a", 1 * GB, 256 * MB)
        assert nn.total_logical_bytes == 1 * GB
        assert nn.total_physical_bytes == 3 * GB
        per_node = [nn.bytes_on_node(n) for n in range(8)]
        assert sum(per_node) == 3 * GB

    def test_placement_roughly_balanced(self):
        nn = self.make()
        nn.create_file("/big", 32 * GB, 256 * MB)  # 128 blocks, 384 replicas
        per_node = [nn.bytes_on_node(n) for n in range(8)]
        mean = sum(per_node) / 8
        assert all(0.5 * mean < b < 1.7 * mean for b in per_node)


class TestHDFSDataPath:
    def make(self):
        cluster = SimCluster()
        return cluster, HDFS(cluster, FrameworkConf.paper_defaults(), seed=2)

    def test_splits_match_blocks(self):
        cluster, hdfs = self.make()
        hdfs.ingest_file("/in", 2 * GB)
        splits = hdfs.splits("/in")
        assert len(splits) == 8
        assert all(split.size == 256 * MB for split in splits)

    def test_local_read_uses_no_network(self):
        cluster, hdfs = self.make()
        hdfs.ingest_file("/in", 256 * MB)
        split = hdfs.splits("/in")[0]
        reader = cluster.node(split.preferred_nodes[0])

        def proc(engine):
            yield hdfs.read_split(reader, split)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert reader.disk_read.total_served == pytest.approx(256 * MB)
        assert all(node.nic_in.total_served == 0 for node in cluster.nodes)

    def test_remote_read_uses_network(self):
        cluster, hdfs = self.make()
        hdfs.ingest_file("/in", 256 * MB)
        split = hdfs.splits("/in")[0]
        non_replica = next(
            node for node in cluster.nodes if node.node_id not in split.preferred_nodes
        )

        def proc(engine):
            yield hdfs.read_split(non_replica, split)

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        assert non_replica.nic_in.total_served == pytest.approx(256 * MB)

    def test_write_file_charges_replication_pipeline(self):
        cluster, hdfs = self.make()
        writer = cluster.node(0)

        def proc(engine):
            meta = yield from hdfs.write_file("/out", 512 * MB, writer)
            assert meta.size == 512 * MB

        cluster.engine.process(proc(cluster.engine))
        cluster.run()
        total_disk_write = sum(node.disk_write.total_served for node in cluster.nodes)
        assert total_disk_write == pytest.approx(3 * 512 * MB)
        total_net = sum(node.nic_in.total_served for node in cluster.nodes)
        assert total_net == pytest.approx(2 * 512 * MB)

    def test_locality_fraction(self):
        cluster, hdfs = self.make()
        meta = hdfs.ingest_file("/in", 1 * GB)
        all_local = {block.block_id: block.replicas[0] for block in meta.blocks}
        assert hdfs.locality_fraction("/in", all_local) == 1.0
        none_assigned: dict[int, int] = {}
        assert hdfs.locality_fraction("/in", none_assigned) == 0.0

"""Tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.simulate import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_timeout_advances_clock(self):
        engine = Engine()
        engine.timeout(5.0)
        assert engine.run() == 5.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_fifo_order(self):
        engine = Engine()
        fired = []
        for tag in "abcd":
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == list("abcd")

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(1))
        assert engine.run(until=5.0) == 5.0
        assert fired == []
        engine.run()
        assert fired == [1]


class TestProcesses:
    def test_process_sequencing(self):
        engine = Engine()
        trace = []

        def proc(engine):
            trace.append(("start", engine.now))
            yield engine.timeout(2.0)
            trace.append(("mid", engine.now))
            yield engine.timeout(3.0)
            trace.append(("end", engine.now))

        engine.process(proc(engine))
        engine.run()
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_process_return_value_via_join(self):
        engine = Engine()
        results = []

        def child(engine):
            yield engine.timeout(1.0)
            return 42

        def parent(engine):
            value = yield engine.process(child(engine))
            results.append(value)

        engine.process(parent(engine))
        engine.run()
        assert results == [42]

    def test_yielding_non_event_raises(self):
        engine = Engine()

        def bad(engine):
            yield "not an event"

        engine.process(bad(engine))
        with pytest.raises(SimulationError):
            engine.run()

    def test_two_processes_interleave(self):
        engine = Engine()
        trace = []

        def ticker(engine, name, period):
            for _ in range(3):
                yield engine.timeout(period)
                trace.append((name, engine.now))

        engine.process(ticker(engine, "fast", 1.0))
        engine.process(ticker(engine, "slow", 2.0))
        engine.run()
        assert trace == [
            ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
            ("fast", 3.0), ("slow", 4.0), ("slow", 6.0),
        ]


class TestEvents:
    def test_manual_event_wakes_waiter(self):
        engine = Engine()
        gate = engine.event()
        woken = []

        def waiter(engine):
            value = yield gate
            woken.append((engine.now, value))

        engine.process(waiter(engine))
        engine.schedule(4.0, lambda: gate.succeed("go"))
        engine.run()
        assert woken == [(4.0, "go")]

    def test_event_triggered_twice_raises(self):
        engine = Engine()
        gate = engine.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_callback_after_trigger_still_runs(self):
        engine = Engine()
        gate = engine.event()
        gate.succeed(7)
        seen = []
        gate.add_callback(lambda event: seen.append(event.value))
        engine.run()
        assert seen == [7]

    def test_all_of_waits_for_every_event(self):
        engine = Engine()
        done = []

        def proc(engine):
            values = yield engine.all_of([engine.timeout(1.0, "a"), engine.timeout(5.0, "b")])
            done.append((engine.now, values))

        engine.process(proc(engine))
        engine.run()
        assert done == [(5.0, ["a", "b"])]

    def test_all_of_empty_list_triggers_immediately(self):
        engine = Engine()
        done = []

        def proc(engine):
            values = yield engine.all_of([])
            done.append((engine.now, values))

        engine.process(proc(engine))
        engine.run()
        assert done == [(0.0, [])]

"""Smoke tests for the runnable examples: each example's ``main()`` runs
and its printed results are asserted, so the examples cannot drift from
the library API (they previously re-launched one job per k-means
iteration long after Iteration mode existed — exactly the rot these
tests prevent).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.fixture
def run_example(capsys):
    def runner(name: str) -> str:
        load_example(name).main()
        return capsys.readouterr().out

    return runner


class TestQuickstart:
    def test_all_engines_agree_and_streaming_matches(self, run_example):
        out = run_example("quickstart")
        for engine in ("hadoop", "spark", "datampi"):
            assert f"{engine:<8} -> 3539 words, result OK" in out
        assert "MISMATCH" not in out
        assert "streaming mode: 2 windows flushed, totals OK" in out
        # The simulated testbed table still reproduces Figure 3(c).
        assert "32GB WordCount" in out


class TestKMeansClustering:
    def test_iteration_mode_identical_and_cheaper(self, run_example):
        out = run_example("kmeans_clustering")
        assert "iteration-mode centroids byte-identical to common mode: True" in out
        assert "cross-iteration cache saved" in out
        for engine in ("hadoop", "spark", "datampi"):
            assert f"{engine:<8} iterations=" in out
        assert "cluster purity vs true categories:" in out


class TestStreamingGrep:
    def test_stream_totals_match_batch(self, run_example):
        out = run_example("streaming_grep")
        assert "matches batch grep: True" in out
        assert "windows flushed: 5" in out

"""Tests for fair-share resources: water-filling, flows, slot pools."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.simulate import Engine, FairShareResource, SlotPool, Tracer, waterfill


class TestWaterfill:
    def test_equal_split(self):
        assert waterfill(10.0, [(1.0, float("inf"))] * 2) == [5.0, 5.0]

    def test_cap_respected_surplus_redistributed(self):
        assert waterfill(10.0, [(1.0, float("inf")), (1.0, 2.0)]) == [8.0, 2.0]

    def test_weighted_split(self):
        rates = waterfill(9.0, [(2.0, float("inf")), (1.0, float("inf"))])
        assert rates == [6.0, 3.0]

    def test_all_capped_leaves_capacity_unused(self):
        rates = waterfill(100.0, [(1.0, 3.0), (1.0, 4.0)])
        assert rates == [3.0, 4.0]

    def test_empty(self):
        assert waterfill(5.0, []) == []

    @given(
        st.floats(min_value=0.1, max_value=1e6),
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100.0),
                st.one_of(st.just(float("inf")), st.floats(min_value=0.01, max_value=1e6)),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_conservation_and_caps(self, capacity, demands):
        rates = waterfill(capacity, demands)
        assert len(rates) == len(demands)
        # Never exceeds capacity and never exceeds any cap.
        assert sum(rates) <= capacity * (1 + 1e-9) + 1e-9
        for rate, (_, cap) in zip(rates, demands):
            assert rate <= cap + 1e-9
            assert rate >= 0.0
        # Work-conserving: either capacity is (nearly) fully used or every
        # flow is at its cap.
        if sum(rates) < capacity * (1 - 1e-6):
            assert all(abs(r - c) <= 1e-6 * max(1.0, c) for r, (_, c) in zip(rates, demands) if c != float("inf"))
            assert all(c != float("inf") for _, c in demands)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=8)
    )
    def test_uncapped_equal_weights_get_equal_rates(self, weights):
        demands = [(1.0, float("inf"))] * len(weights)
        rates = waterfill(7.0, demands)
        assert all(abs(r - rates[0]) < 1e-9 for r in rates)


class TestFairShareResource:
    def test_single_flow_runs_at_capacity(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=100.0, name="disk")
        done = []

        def proc(engine):
            yield disk.transfer(500.0)
            done.append(engine.now)

        engine.process(proc(engine))
        engine.run()
        assert done == [pytest.approx(5.0)]

    def test_flow_cap_limits_rate(self):
        engine = Engine()
        cpu = FairShareResource(engine, capacity=16.0, name="cpu")
        done = []

        def proc(engine):
            yield cpu.transfer(10.0, cap=1.0)  # single-threaded task
            done.append(engine.now)

        engine.process(proc(engine))
        engine.run()
        assert done == [pytest.approx(10.0)]

    def test_two_flows_share_fairly(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=100.0, name="disk")
        finish = {}

        def proc(engine, name, amount):
            yield disk.transfer(amount)
            finish[name] = engine.now

        engine.process(proc(engine, "a", 100.0))
        engine.process(proc(engine, "b", 100.0))
        engine.run()
        # Both get 50 units/s, so both finish at t=2.
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(2.0)

    def test_late_joiner_slows_first_flow(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=100.0, name="disk")
        finish = {}

        def first(engine):
            yield disk.transfer(150.0)
            finish["first"] = engine.now

        def second(engine):
            yield engine.timeout(1.0)
            yield disk.transfer(50.0)
            finish["second"] = engine.now

        engine.process(first(engine))
        engine.process(second(engine))
        engine.run()
        # First runs alone for 1s (100 served), then shares: 50 remaining at
        # 50/s -> done at t=2.  Second transfers 50 at 50/s -> done at t=2.
        assert finish["first"] == pytest.approx(2.0)
        assert finish["second"] == pytest.approx(2.0)

    def test_zero_amount_completes_immediately(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=10.0)
        done = []

        def proc(engine):
            yield disk.transfer(0.0)
            done.append(engine.now)

        engine.process(proc(engine))
        engine.run()
        assert done == [0.0]

    def test_negative_amount_rejected(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=10.0)
        with pytest.raises(SimulationError):
            disk.transfer(-1.0)

    def test_total_served_accounts_all_work(self):
        engine = Engine()
        disk = FairShareResource(engine, capacity=40.0)

        def proc(engine, amount):
            yield disk.transfer(amount)

        engine.process(proc(engine, 100.0))
        engine.process(proc(engine, 60.0))
        engine.run()
        assert disk.total_served == pytest.approx(160.0)

    def test_rate_trace_records_step_function(self):
        engine = Engine()
        tracer = Tracer()
        disk = FairShareResource(engine, 100.0, name="disk", tracer=tracer, series="disk")

        def proc(engine):
            yield disk.transfer(100.0, cap=60.0)

        engine.process(proc(engine))
        engine.run()
        changes = tracer.changes("disk")
        assert changes[0] == (0.0, 60.0)
        assert changes[-1][1] == 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            FairShareResource(Engine(), 0.0)

    def test_many_flows_conserve_capacity(self):
        engine = Engine()
        nic = FairShareResource(engine, capacity=117.0, name="nic")
        finished = []

        def proc(engine, amount):
            yield nic.transfer(amount)
            finished.append(engine.now)

        for amount in [10.0, 20.0, 30.0, 40.0]:
            engine.process(proc(engine, amount))
        engine.run()
        # Total 100 units through a 117/s pipe shared fairly; completion of
        # the whole batch is bounded below by total/capacity.
        assert max(finished) >= 100.0 / 117.0 - 1e-9


class TestSlotPool:
    def test_acquire_under_capacity_is_immediate(self):
        engine = Engine()
        pool = SlotPool(engine, 2)
        times = []

        def proc(engine):
            yield pool.acquire()
            times.append(engine.now)

        engine.process(proc(engine))
        engine.run()
        assert times == [0.0]
        assert pool.in_use == 1

    def test_waiters_run_fifo_as_slots_free(self):
        engine = Engine()
        pool = SlotPool(engine, 1)
        order = []

        def proc(engine, name, hold):
            yield pool.acquire()
            order.append((name, engine.now))
            yield engine.timeout(hold)
            pool.release()

        engine.process(proc(engine, "a", 2.0))
        engine.process(proc(engine, "b", 1.0))
        engine.process(proc(engine, "c", 1.0))
        engine.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_release_without_acquire_raises(self):
        engine = Engine()
        pool = SlotPool(engine, 1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_zero_slots_rejected(self):
        with pytest.raises(SimulationError):
            SlotPool(Engine(), 0)

"""Distributed MatrixRunner: claim files, cooperating workers, determinism.

The distributed strategy (``serve=`` + :func:`run_matrix_worker`) must be
behaviourally indistinguishable from a serial run: the parent stays the
only checkpoint writer, claim files arbitrate cell ownership exactly
once, a dead worker's claims are reclaimed, and the rendered reports are
byte-identical to a serial run of the same spec.
"""

import importlib.util
import json
import os
import pathlib
import threading

import pytest

from repro.common.errors import ConfigError, JobError
from repro.experiments.matrix import (
    MatrixRunner,
    claim_owner,
    claim_path,
    release_claim,
    run_matrix_worker,
    try_claim_cell,
)
from repro.experiments.reportbuilder import ReportBuilder
from repro.experiments.spec import CellSpec, ExperimentSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "diff_reports", REPO_ROOT / "scripts" / "diff_reports.py"
)
diff_reports = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(diff_reports)

SERVE = "127.0.0.1:0"  # ephemeral port; the bound address is on the runner


def small_spec(**kwargs) -> ExperimentSpec:
    kwargs.setdefault("max_iterations", 3)
    return ExperimentSpec("small-distributed", (
        CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
        CellSpec("wordcount", "common", "hadoop-model", "tiny"),
        CellSpec("wordcount", "common", "spark-model", "tiny"),
        CellSpec("grep", "common", "datampi", "tiny", "inline"),
        CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
        CellSpec("naive_bayes", "iteration", "datampi", "tiny", "inline"),
    ), **kwargs)


def deterministic_record(result):
    return {
        r.spec.cell_id: (r.status, r.bytes_moved, r.output_checksum,
                         r.iterations, r.per_iteration_bytes, r.counters)
        for r in result.results
    }


def run_with_workers(runner: MatrixRunner, num_workers: int):
    """Drive a serving runner plus ``num_workers`` in-process workers
    (threads running the exact CLI worker entry point)."""
    executed: dict[int, int] = {}

    def worker(slot: int) -> None:
        executed[slot] = run_matrix_worker(runner.serve, connect_timeout=15.0)

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(num_workers)]
    for thread in threads:
        thread.start()
    result = runner.run()
    for thread in threads:
        thread.join(30.0)
    return result, executed


class TestClaimFiles:
    def test_first_claim_wins(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1") is True
        assert try_claim_cell(out, "cell-a", "hash", "worker-2") is False
        assert claim_owner(out, "cell-a") == "worker-1"

    def test_release_makes_cell_claimable_again(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1")
        release_claim(out, "cell-a")
        assert claim_owner(out, "cell-a") is None
        assert try_claim_cell(out, "cell-a", "hash", "worker-2")

    def test_release_of_unclaimed_cell_is_a_noop(self, tmp_path):
        release_claim(str(tmp_path), "never-claimed")

    def test_claim_records_owner_and_spec_hash(self, tmp_path):
        out = str(tmp_path)
        try_claim_cell(out, "cell-b", "deadbeef", "worker-3")
        with open(claim_path(out, "cell-b"), encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["owner"] == "worker-3"
        assert record["spec_hash"] == "deadbeef"

    def test_concurrent_claims_yield_exactly_one_winner(self, tmp_path):
        out = str(tmp_path)
        wins: list[str] = []
        barrier = threading.Barrier(8)

        def contender(name: str) -> None:
            barrier.wait()
            if try_claim_cell(out, "contested", "hash", name):
                wins.append(name)

        threads = [threading.Thread(target=contender, args=(f"w{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(wins) == 1
        assert claim_owner(out, "contested") == wins[0]


class TestDistributedExecution:
    def test_parent_and_worker_split_the_matrix(self, tmp_path):
        spec = small_spec()
        serial = MatrixRunner(spec, str(tmp_path / "serial")).run()
        runner = MatrixRunner(spec, str(tmp_path / "dist"), serve=SERVE)
        result, executed = run_with_workers(runner, num_workers=1)
        assert not result.failed_cells()
        assert result.executed == len(spec.cells)
        # Work genuinely split: the worker claimed at least one cell.
        assert executed[0] >= 1
        assert executed[0] < len(spec.cells)
        assert deterministic_record(result) == deterministic_record(serial)

    def test_reports_byte_identical_to_serial(self, tmp_path):
        spec = small_spec()
        MatrixRunner(spec, str(tmp_path / "serial")).run()
        runner = MatrixRunner(spec, str(tmp_path / "dist"), serve=SERVE)
        run_with_workers(runner, num_workers=2)
        from repro.experiments.matrix import load_matrix

        ReportBuilder(load_matrix(str(tmp_path / "serial")),
                      str(tmp_path / "rep-serial")).build()
        ReportBuilder(load_matrix(str(tmp_path / "dist")),
                      str(tmp_path / "rep-dist")).build()
        assert diff_reports.compare_reports(
            tmp_path / "rep-serial", tmp_path / "rep-dist") == []

    def test_no_claim_files_left_behind(self, tmp_path):
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        run_with_workers(runner, num_workers=1)
        leftovers = [name for name in os.listdir(tmp_path / "cells")
                     if name.endswith(".claim")]
        assert leftovers == []

    def test_parent_alone_completes_a_served_run(self, tmp_path):
        """Serving with no worker ever joining must still finish."""
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        result = runner.run()
        assert not result.failed_cells()
        assert result.executed == len(small_spec().cells)

    def test_stale_claims_from_a_dead_run_are_swept(self, tmp_path):
        """Claims left by a previous (crashed) run must not block cells."""
        spec = small_spec()
        out = str(tmp_path)
        for cell in spec.cells:
            assert try_claim_cell(out, cell.cell_id, spec.spec_hash,
                                  "worker-from-last-tuesday")
        result = MatrixRunner(spec, out, serve=SERVE).run()
        assert not result.failed_cells()
        assert result.executed == len(spec.cells)

    def test_distributed_resumes_serial_checkpoints(self, tmp_path):
        """Strategy is not part of the spec hash: a distributed run picks
        up a serial run's finished cells."""
        spec = small_spec()
        out = str(tmp_path)
        MatrixRunner(spec, out).run()
        runner = MatrixRunner(spec, out, serve=SERVE)
        result = runner.run()
        assert result.executed == 0
        assert result.resumed == len(spec.cells)

    def test_worker_skips_checkpointed_cells(self, tmp_path):
        spec = small_spec()
        out = str(tmp_path)
        MatrixRunner(spec, out).run()
        runner = MatrixRunner(spec, out, serve=SERVE)
        result, executed = run_with_workers(runner, num_workers=1)
        assert executed[0] == 0
        assert result.resumed == len(spec.cells)

    def test_mid_claim_worker_death_is_reclaimed(self, tmp_path, monkeypatch):
        """A claim whose owner was admitted but died before streaming its
        result must be released and re-executed by the parent."""
        spec = small_spec()
        out = str(tmp_path)
        victim = spec.cells[0].cell_id

        import repro.experiments.matrix as matrix_module

        original = matrix_module._run_cell_worker

        def dying_worker(address: str) -> None:
            # A worker that claims its first cell and then vanishes
            # without sending the result (its socket closes with it).
            def die(payload):
                raise SystemExit(0)

            monkeypatch.setattr(matrix_module, "_run_cell_worker", die)
            try:
                run_matrix_worker(address, connect_timeout=15.0)
            except BaseException:
                pass
            finally:
                monkeypatch.setattr(matrix_module, "_run_cell_worker",
                                    original)

        runner = MatrixRunner(spec, out, serve=SERVE, worker_timeout=60.0)
        thread = threading.Thread(target=dying_worker, args=(runner.serve,))
        thread.start()
        result = runner.run()
        thread.join(30.0)
        assert not result.failed_cells()
        assert {r.spec.cell_id for r in result.results} == \
            {cell.cell_id for cell in spec.cells}
        assert victim in {r.spec.cell_id for r in result.results}


class TestWorkersValidation:
    """`--parallel 0` is documented (CPU count); everything else bogus
    must be a one-line ConfigError, never a pool traceback."""

    def test_negative_workers_one_line_error(self, tmp_path):
        with pytest.raises(ConfigError, match="must be >= 0"):
            MatrixRunner(small_spec(), str(tmp_path), workers=-3)

    def test_non_integer_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="must be an integer"):
            MatrixRunner(small_spec(), str(tmp_path), workers=2.5)

    def test_bool_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="must be an integer"):
            MatrixRunner(small_spec(), str(tmp_path), workers=True)

    def test_serve_and_pool_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            MatrixRunner(small_spec(), str(tmp_path), workers=4, serve=SERVE)


class TestWorkerEntryPoint:
    def test_worker_without_parent_fails_cleanly(self):
        with pytest.raises(JobError, match="no matrix parent serving"):
            run_matrix_worker("127.0.0.1:9", connect_timeout=0.5)

    def test_worker_against_mute_listener_errors_instead_of_hanging(self):
        """Joining a wrong-but-listening port (some other service) must
        surface a JobError once the handshake times out, not hang."""
        import socket as socket_module

        mute = socket_module.socket()
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)
        host, port = mute.getsockname()[:2]
        try:
            with pytest.raises(JobError, match="never answered"):
                run_matrix_worker(f"{host}:{port}", connect_timeout=1.0)
        finally:
            mute.close()

    def test_silent_stray_connection_does_not_block_admission(
        self, tmp_path, monkeypatch
    ):
        """One connection that never sends a hello must not wedge the
        acceptor: a real worker arriving later still gets admitted."""
        import socket as socket_module
        import time

        import repro.experiments.matrix as matrix_module

        monkeypatch.setattr(matrix_module, "_WK_HELLO_TIMEOUT", 0.3)
        spec = small_spec()
        runner = MatrixRunner(spec, str(tmp_path), serve=SERVE)
        # Slow the parent down so the matrix outlives the stray's timeout
        # window and the admitted worker demonstrably claims cells.
        original = MatrixRunner.execute_cell

        def slowed(self, cell):
            time.sleep(0.7)
            return original(self, cell)

        monkeypatch.setattr(MatrixRunner, "execute_cell", slowed)
        host, port = runner.serve.rsplit(":", 1)
        stray = socket_module.create_connection((host, int(port)))
        try:
            result, executed = run_with_workers(runner, num_workers=1)
        finally:
            stray.close()
        assert not result.failed_cells()
        assert executed[0] >= 1  # the real worker was admitted and worked

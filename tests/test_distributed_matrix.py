"""Distributed MatrixRunner: claim files, cooperating workers, determinism.

The distributed strategy (``serve=`` + :func:`run_matrix_worker`) must be
behaviourally indistinguishable from a serial run: the parent stays the
only checkpoint writer, claim files arbitrate cell ownership exactly
once, a dead worker's claims are reclaimed, and the rendered reports are
byte-identical to a serial run of the same spec.
"""

import importlib.util
import json
import os
import pathlib
import pickle
import socket
import threading

import pytest

from repro.common.errors import ConfigError, JobError, MPIError
from repro.experiments.matrix import (
    MATRIX_AUTHKEY_ENV_VAR,
    MatrixRunner,
    _MatrixServer,
    _WK_HELLO,
    _WK_WELCOME,
    _WORKER_PROTO,
    claim_is_stale,
    claim_owner,
    claim_path,
    claim_record,
    refresh_claim,
    release_claim,
    run_matrix_worker,
    try_claim_cell,
)
from repro.mpi.transport import (
    answer_challenge,
    parse_address,
    parse_authkey,
)
from repro.mpi.transport.tcp import FRAME_HEADER, recv_frame, send_frame
from repro.experiments.reportbuilder import ReportBuilder
from repro.experiments.spec import CellSpec, ExperimentSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "diff_reports", REPO_ROOT / "scripts" / "diff_reports.py"
)
diff_reports = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(diff_reports)

SERVE = "127.0.0.1:0"  # ephemeral port; the bound address is on the runner


@pytest.fixture(autouse=True)
def _no_ambient_authkeys(monkeypatch):
    """An operator's exported authkeys must not leak into the key
    generation / token-embedding assertions."""
    monkeypatch.delenv("REPRO_TCP_AUTHKEY", raising=False)
    monkeypatch.delenv("REPRO_MATRIX_AUTHKEY", raising=False)


def small_spec(**kwargs) -> ExperimentSpec:
    kwargs.setdefault("max_iterations", 3)
    return ExperimentSpec("small-distributed", (
        CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
        CellSpec("wordcount", "common", "hadoop-model", "tiny"),
        CellSpec("wordcount", "common", "spark-model", "tiny"),
        CellSpec("grep", "common", "datampi", "tiny", "inline"),
        CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
        CellSpec("naive_bayes", "iteration", "datampi", "tiny", "inline"),
    ), **kwargs)


def deterministic_record(result):
    return {
        r.spec.cell_id: (r.status, r.bytes_moved, r.output_checksum,
                         r.iterations, r.per_iteration_bytes, r.counters)
        for r in result.results
    }


def run_with_workers(runner: MatrixRunner, num_workers: int,
                     resume: bool = True):
    """Drive a serving runner plus ``num_workers`` in-process workers
    (threads running the exact CLI worker entry point)."""
    executed: dict[int, int] = {}

    def worker(slot: int) -> None:
        executed[slot] = run_matrix_worker(runner.serve, connect_timeout=15.0)

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(num_workers)]
    for thread in threads:
        thread.start()
    result = runner.run(resume=resume)
    for thread in threads:
        thread.join(30.0)
    return result, executed


class TestClaimFiles:
    def test_first_claim_wins(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1") is True
        assert try_claim_cell(out, "cell-a", "hash", "worker-2") is False
        assert claim_owner(out, "cell-a") == "worker-1"

    def test_release_makes_cell_claimable_again(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1")
        release_claim(out, "cell-a")
        assert claim_owner(out, "cell-a") is None
        assert try_claim_cell(out, "cell-a", "hash", "worker-2")

    def test_release_of_unclaimed_cell_is_a_noop(self, tmp_path):
        release_claim(str(tmp_path), "never-claimed")

    def test_claim_records_owner_and_spec_hash(self, tmp_path):
        out = str(tmp_path)
        try_claim_cell(out, "cell-b", "deadbeef", "worker-3")
        with open(claim_path(out, "cell-b"), encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["owner"] == "worker-3"
        assert record["spec_hash"] == "deadbeef"

    def test_concurrent_claims_yield_exactly_one_winner(self, tmp_path):
        out = str(tmp_path)
        wins: list[str] = []
        barrier = threading.Barrier(8)

        def contender(name: str) -> None:
            barrier.wait()
            if try_claim_cell(out, "contested", "hash", name):
                wins.append(name)

        threads = [threading.Thread(target=contender, args=(f"w{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(wins) == 1
        assert claim_owner(out, "contested") == wins[0]

    def test_refresh_claim_keeps_cell_claimed_under_new_owner(self, tmp_path):
        """Re-stamping (a reconnected worker's new identity) must never
        open a window where the cell looks unclaimed."""
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1")
        refresh_claim(out, "cell-a", "hash", "worker-2")
        assert claim_owner(out, "cell-a") == "worker-2"
        assert not try_claim_cell(out, "cell-a", "hash", "worker-3")

    def test_claim_staleness_rules(self):
        local = socket.gethostname()
        assert claim_is_stale(None)
        assert claim_is_stale({})  # pre-liveness record: no pid at all
        # This very process's pid marks a *previous incarnation* of the
        # parent (a restarted parent reuses nothing else), so it is stale.
        assert claim_is_stale({"pid": os.getpid(), "host": local})
        assert claim_is_stale({"pid": "not-a-pid", "host": local})
        # pid 1 is alive on any Linux box, and not provably ours to kill.
        assert not claim_is_stale({"pid": 1, "host": local})
        # A remote host's claim is not provably dead from here.
        assert not claim_is_stale({"pid": 12345, "host": "elsewhere"})

    def test_claims_record_pid_and_host_for_liveness(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "worker-1")
        record = claim_record(out, "cell-a")
        assert record["pid"] == os.getpid()
        assert record["host"] == socket.gethostname()


class TestDistributedExecution:
    def test_parent_and_worker_split_the_matrix(self, tmp_path):
        spec = small_spec()
        serial = MatrixRunner(spec, str(tmp_path / "serial")).run()
        runner = MatrixRunner(spec, str(tmp_path / "dist"), serve=SERVE)
        result, executed = run_with_workers(runner, num_workers=1)
        assert not result.failed_cells()
        assert result.executed == len(spec.cells)
        # Work genuinely split: the worker claimed at least one cell.
        assert executed[0] >= 1
        assert executed[0] < len(spec.cells)
        assert deterministic_record(result) == deterministic_record(serial)

    def test_reports_byte_identical_to_serial(self, tmp_path):
        spec = small_spec()
        MatrixRunner(spec, str(tmp_path / "serial")).run()
        runner = MatrixRunner(spec, str(tmp_path / "dist"), serve=SERVE)
        run_with_workers(runner, num_workers=2)
        from repro.experiments.matrix import load_matrix

        ReportBuilder(load_matrix(str(tmp_path / "serial")),
                      str(tmp_path / "rep-serial")).build()
        ReportBuilder(load_matrix(str(tmp_path / "dist")),
                      str(tmp_path / "rep-dist")).build()
        assert diff_reports.compare_reports(
            tmp_path / "rep-serial", tmp_path / "rep-dist") == []

    def test_no_claim_files_left_behind(self, tmp_path):
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        run_with_workers(runner, num_workers=1)
        leftovers = [name for name in os.listdir(tmp_path / "cells")
                     if name.endswith(".claim")]
        assert leftovers == []

    def test_interrupt_releases_parent_claims(self, tmp_path, monkeypatch):
        """A Ctrl-C mid-served-run must not leave the parent's claim
        files behind — a leftover claim looks like a live owner and
        blocks the cell until the next run's debris sweep."""
        spec = small_spec()
        out = str(tmp_path)
        runner = MatrixRunner(spec, out, serve=SERVE)

        def claim_then_die(self, server, remaining, record):
            for cell in list(remaining.values())[:3]:
                assert try_claim_cell(out, cell.cell_id, spec.spec_hash,
                                      "parent")
            raise KeyboardInterrupt

        monkeypatch.setattr(MatrixRunner, "_serve_cells", claim_then_die)
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        leftovers = [name for name in os.listdir(tmp_path / "cells")
                     if name.endswith(".claim")]
        assert leftovers == []
        # The interrupted run resumes: a fresh runner finishes the spec.
        result = MatrixRunner(spec, out).run()
        assert not result.failed_cells()

    def test_parent_alone_completes_a_served_run(self, tmp_path):
        """Serving with no worker ever joining must still finish."""
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        result = runner.run()
        assert not result.failed_cells()
        assert result.executed == len(small_spec().cells)

    def test_stale_claims_from_a_dead_run_are_swept(self, tmp_path):
        """Claims left by a previous (crashed) run must not block cells."""
        spec = small_spec()
        out = str(tmp_path)
        for cell in spec.cells:
            assert try_claim_cell(out, cell.cell_id, spec.spec_hash,
                                  "worker-from-last-tuesday")
        result = MatrixRunner(spec, out, serve=SERVE).run()
        assert not result.failed_cells()
        assert result.executed == len(spec.cells)

    def test_worker_reconnects_after_dropped_result_send(self, tmp_path,
                                                         monkeypatch):
        """A worker whose socket dies with a result in hand must reconnect
        to the still-serving parent, re-stamp its claim with the identity
        the parent hands back, and resend — losing neither the cell nor
        the run."""
        import repro.experiments.matrix as matrix_module

        spec = small_spec()
        out = str(tmp_path)
        real_claim = matrix_module.try_claim_cell

        def workers_only(out_dir, cell_id, spec_hash, owner):
            # Keep the parent from racing the worker to the cells: every
            # result in this test must travel the worker's socket.
            if owner == "parent":
                return False
            return real_claim(out_dir, cell_id, spec_hash, owner)

        real_send = matrix_module.send_frame
        dropped: list[int] = []

        def flaky_send(sock, kind, *args, **kwargs):
            if (kind == matrix_module._WK_RESULT and not dropped
                    and threading.current_thread().name == "flaky-worker"):
                dropped.append(kind)
                sock.close()
                raise OSError("injected: connection reset mid-result")
            return real_send(sock, kind, *args, **kwargs)

        monkeypatch.setattr(matrix_module, "try_claim_cell", workers_only)
        monkeypatch.setattr(matrix_module, "send_frame", flaky_send)

        runner = MatrixRunner(spec, out, serve=SERVE, worker_timeout=60.0)
        executed: dict[str, int] = {}

        def worker() -> None:
            executed["n"] = run_matrix_worker(runner.serve,
                                              connect_timeout=15.0)

        thread = threading.Thread(target=worker, name="flaky-worker")
        thread.start()
        result = runner.run()
        thread.join(30.0)
        assert dropped, "the injected socket drop never fired"
        assert executed["n"] == len(spec.cells)
        assert not result.failed_cells()
        assert {r.spec.cell_id for r in result.results} == \
            {cell.cell_id for cell in spec.cells}

    def test_serve_on_explicit_port(self, tmp_path, bind_retry):
        """An operator-chosen rendezvous port works end to end (probed
        via the shared free_port fixture, retried if stolen)."""
        spec = small_spec()

        def attempt(port: int) -> MatrixRunner:
            return MatrixRunner(spec, str(tmp_path),
                                serve=f"127.0.0.1:{port}",
                                worker_timeout=60.0)

        runner = bind_retry(attempt)
        result, _executed = run_with_workers(runner, num_workers=1)
        assert not result.failed_cells()
        assert result.executed == len(spec.cells)

    def test_distributed_resumes_serial_checkpoints(self, tmp_path):
        """Strategy is not part of the spec hash: a distributed run picks
        up a serial run's finished cells."""
        spec = small_spec()
        out = str(tmp_path)
        MatrixRunner(spec, out).run()
        runner = MatrixRunner(spec, out, serve=SERVE)
        result = runner.run()
        assert result.executed == 0
        assert result.resumed == len(spec.cells)

    def test_no_resume_keeps_workers_in_the_game(self, tmp_path):
        """resume=False deletes the stale checkpoints, so joined workers
        (which decide from the files on disk) re-execute cells instead of
        silently degrading the run to parent-only."""
        spec = small_spec()
        out = str(tmp_path)
        MatrixRunner(spec, out).run()
        runner = MatrixRunner(spec, out, serve=SERVE)
        result, executed = run_with_workers(runner, num_workers=1,
                                            resume=False)
        assert result.resumed == 0
        assert result.executed == len(spec.cells)
        assert executed[0] >= 1  # the worker genuinely participated

    def test_worker_skips_checkpointed_cells(self, tmp_path):
        spec = small_spec()
        out = str(tmp_path)
        MatrixRunner(spec, out).run()
        runner = MatrixRunner(spec, out, serve=SERVE)
        result, executed = run_with_workers(runner, num_workers=1)
        assert executed[0] == 0
        assert result.resumed == len(spec.cells)

    def test_mid_claim_worker_death_is_reclaimed(self, tmp_path, monkeypatch):
        """A claim whose owner was admitted but died before streaming its
        result must be released and re-executed by the parent."""
        spec = small_spec()
        out = str(tmp_path)
        victim = spec.cells[0].cell_id

        import repro.experiments.matrix as matrix_module

        original = matrix_module._run_cell_worker

        def dying_worker(address: str) -> None:
            # A worker that claims its first cell and then vanishes
            # without sending the result (its socket closes with it).
            def die(payload):
                raise SystemExit(0)

            monkeypatch.setattr(matrix_module, "_run_cell_worker", die)
            try:
                run_matrix_worker(address, connect_timeout=15.0)
            except BaseException:
                pass
            finally:
                monkeypatch.setattr(matrix_module, "_run_cell_worker",
                                    original)

        runner = MatrixRunner(spec, out, serve=SERVE, worker_timeout=60.0)
        thread = threading.Thread(target=dying_worker, args=(runner.serve,))
        thread.start()
        result = runner.run()
        thread.join(30.0)
        assert not result.failed_cells()
        assert {r.spec.cell_id for r in result.results} == \
            {cell.cell_id for cell in spec.cells}
        assert victim in {r.spec.cell_id for r in result.results}


class _EvilPayload:
    """Pickle whose deserialisation has a visible side effect — if the
    flag directory ever appears, unauthenticated bytes were unpickled."""

    def __init__(self, path: str):
        self.path = path

    def __reduce__(self):
        return (os.mkdir, (self.path,))


class TestWorkerAuthentication:
    """The worker protocol unpickles frames, so every connection must
    clear the HMAC challenge first; the key rides the join token or the
    environment, never the wire."""

    def _server(self, tmp_path) -> _MatrixServer:
        return _MatrixServer(small_spec(), str(tmp_path), "127.0.0.1:0", 0.02)

    def test_join_token_embeds_a_generated_key(self, tmp_path):
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        assert parse_authkey(runner.serve) is not None
        runner.run()  # parent alone finishes; also tears the server down

    def test_keyless_worker_gets_a_clear_error(self, tmp_path):
        with self._server(tmp_path) as server:
            bare = "{}:{}".format(*parse_address(server.address))
            with pytest.raises(JobError, match="requires an authkey"):
                run_matrix_worker(bare, connect_timeout=5.0)

    def test_wrong_key_worker_is_rejected(self, tmp_path):
        with self._server(tmp_path) as server:
            host, port = parse_address(server.address)
            with pytest.raises(MPIError, match="rejected|mismatch"):
                run_matrix_worker(f"{host}:{port}/wrong-key",
                                  connect_timeout=5.0)

    def test_env_key_round_trip(self, tmp_path, monkeypatch):
        """The CI shape: both sides share the key via the environment and
        the printed address stays a plain HOST:PORT."""
        monkeypatch.setenv(MATRIX_AUTHKEY_ENV_VAR, "ci-style-shared-key")
        runner = MatrixRunner(small_spec(), str(tmp_path), serve=SERVE)
        assert parse_authkey(runner.serve) is None
        result, executed = run_with_workers(runner, num_workers=1)
        assert not result.failed_cells()
        assert executed[0] >= 1

    def test_malformed_hello_does_not_kill_the_acceptor(self, tmp_path):
        """A hello whose payload is not a dict must drop that connection
        only — the single acceptor thread has to keep admitting."""
        with self._server(tmp_path) as server:
            key = parse_authkey(server.address).encode("utf-8")
            host_port = parse_address(server.address)
            bad = socket.create_connection(host_port)
            try:
                bad.settimeout(5.0)
                assert answer_challenge(bad, key)
                send_frame(bad, _WK_HELLO, obj=["not", "a", "dict"])
                good = socket.create_connection(host_port)
                try:
                    good.settimeout(10.0)
                    assert answer_challenge(good, key)
                    send_frame(good, _WK_HELLO, obj={"proto": _WORKER_PROTO})
                    frame = recv_frame(good)
                    assert frame is not None and frame[0] == _WK_WELCOME
                finally:
                    good.close()
            finally:
                bad.close()

    def test_unauthenticated_pickle_is_never_loaded(self, tmp_path):
        """A crafted frame sent without answering the challenge must be
        dropped before deserialisation, and admission must survive it."""
        flag = str(tmp_path / "pwned")
        payload = pickle.dumps(_EvilPayload(flag))
        with self._server(tmp_path) as server:
            key = parse_authkey(server.address).encode("utf-8")
            host_port = parse_address(server.address)
            attacker = socket.create_connection(host_port)
            try:
                attacker.sendall(
                    FRAME_HEADER.pack(_WK_HELLO, 1, 0, 0, len(payload)) + payload
                )
                good = socket.create_connection(host_port)
                try:
                    good.settimeout(10.0)
                    assert answer_challenge(good, key)
                    send_frame(good, _WK_HELLO, obj={"proto": _WORKER_PROTO})
                    frame = recv_frame(good)
                    assert frame is not None and frame[0] == _WK_WELCOME
                finally:
                    good.close()
            finally:
                attacker.close()
        assert not os.path.exists(flag)


class TestClaimAtomicity:
    def test_claim_file_never_observable_without_owner(self, tmp_path):
        """A reader racing the claimant must never see a claim file
        without its owner record — the JSON is linked into place whole,
        so a mid-write window would let the coordinator mistake a live
        claim for a dead one and double-execute the cell."""
        out = str(tmp_path)
        stop = threading.Event()
        bad: list[str] = []

        def reader() -> None:
            path = claim_path(out, "contested")
            while not stop.is_set():
                try:
                    with open(path, encoding="utf-8") as handle:
                        content = handle.read()
                except FileNotFoundError:
                    continue
                try:
                    doc = json.loads(content)
                except ValueError:
                    bad.append(content)
                    continue
                if "owner" not in doc:
                    bad.append(content)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(300):
                assert try_claim_cell(out, "contested", "hash", "w")
                release_claim(out, "contested")
        finally:
            stop.set()
            thread.join(10.0)
        assert bad == []

    def test_no_temp_files_left_behind(self, tmp_path):
        out = str(tmp_path)
        assert try_claim_cell(out, "cell-a", "hash", "winner")
        assert not try_claim_cell(out, "cell-a", "hash", "loser")
        leftovers = [name for name in os.listdir(tmp_path / "cells")
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_orphaned_temp_files_are_swept(self, tmp_path):
        """A claimant killed mid-claim leaves its temp file behind; the
        distributed run's startup sweep must clear it."""
        from repro.experiments.matrix import sweep_claim_debris

        os.makedirs(tmp_path / "cells", exist_ok=True)
        orphan = tmp_path / "cells" / "cell-x.claim.deadhost.123.456.tmp"
        orphan.write_text("{}")
        sweep_claim_debris(str(tmp_path))
        assert not orphan.exists()


class TestWorkersValidation:
    """`--parallel 0` is documented (CPU count); everything else bogus
    must be a one-line ConfigError, never a pool traceback."""

    def test_negative_workers_one_line_error(self, tmp_path):
        with pytest.raises(ConfigError, match="must be >= 0"):
            MatrixRunner(small_spec(), str(tmp_path), workers=-3)

    def test_non_integer_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="must be an integer"):
            MatrixRunner(small_spec(), str(tmp_path), workers=2.5)

    def test_bool_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="must be an integer"):
            MatrixRunner(small_spec(), str(tmp_path), workers=True)

    def test_serve_and_pool_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            MatrixRunner(small_spec(), str(tmp_path), workers=4, serve=SERVE)


class TestWorkerEntryPoint:
    def test_worker_without_parent_fails_cleanly(self):
        with pytest.raises(JobError, match="no matrix parent serving"):
            run_matrix_worker("127.0.0.1:9", connect_timeout=0.5)

    def test_worker_against_mute_listener_errors_instead_of_hanging(self):
        """Joining a wrong-but-listening port (some other service) must
        surface a JobError once the handshake times out, not hang."""
        import socket as socket_module

        mute = socket_module.socket()
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)
        host, port = mute.getsockname()[:2]
        try:
            with pytest.raises(JobError, match="never answered"):
                run_matrix_worker(f"{host}:{port}", connect_timeout=1.0)
        finally:
            mute.close()

    def test_silent_stray_connection_does_not_block_admission(
        self, tmp_path, monkeypatch
    ):
        """One connection that never sends a hello must not wedge the
        acceptor: a real worker arriving later still gets admitted."""
        import socket as socket_module
        import time

        import repro.experiments.matrix as matrix_module

        monkeypatch.setattr(matrix_module, "_WK_HELLO_TIMEOUT", 0.3)
        spec = small_spec()
        runner = MatrixRunner(spec, str(tmp_path), serve=SERVE)
        # Slow the parent down so the matrix outlives the stray's timeout
        # window and the admitted worker demonstrably claims cells.
        original = MatrixRunner.execute_cell

        def slowed(self, cell):
            # Injected latency, not polling: the test needs the parent
            # to be demonstrably slower than the stray's timeout.
            time.sleep(0.7)  # repro: allow[RPL004]
            return original(self, cell)

        monkeypatch.setattr(MatrixRunner, "execute_cell", slowed)
        from repro.mpi.transport import parse_address

        stray = socket_module.create_connection(parse_address(runner.serve))
        try:
            result, executed = run_with_workers(runner, num_workers=1)
        finally:
            stray.close()
        assert not result.failed_cells()
        assert executed[0] >= 1  # the real worker was admitted and worked
